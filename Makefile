# Development targets. `make bench` records the perf trajectory across
# PRs: it writes the full benchmark event stream (go test -json) to
# BENCH_$(PR).json so successive PRs can be diffed.

PR ?= 10
BENCHCOUNT ?= 5

.PHONY: all build test test-race vet fmt lint chaos serve-sim warm-sim bench bench-smoke

all: build test

build:
	go build ./...

test:
	go test ./...

test-race:
	go test -race ./...

vet:
	go vet ./...

fmt:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

# Static analysis beyond vet. staticcheck is optional tooling: run it
# when the host has it, skip cleanly when it doesn't (CI images and dev
# boxes differ; the target must not fail on a missing binary).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# Fault-containment suite under the race detector: the injection fuzz
# corpus (every generated kernel sabotaged at entry and exit on both
# optimized backends, plus the silent-miscompile audit leg) and the
# deterministic quarantine lifecycle simulations, including the
# concurrent chaos-routing test the small backoff makes race-prone by
# design.
chaos:
	go test -race -count=1 ./internal/cminor/ -run 'TestChaosInjectedFaultsStayBitExact'
	go test -race -count=1 ./internal/cminor/autotune/ -run 'TestQuarantine|TestAllArmsQuarantined|TestAuditCatches|TestConcurrentChaos'

# Serving-layer suite under the race detector: the deterministic
# fake-clock scheduler simulations (admission order, quota exhaustion
# and refill, batch coalescing, both shed points, the golden status
# line), the 12-goroutine live stress test with per-call bit-exactness,
# and the InstancePool churn/leak test backing it.
serve-sim:
	go test -race -count=1 ./internal/cminor/serve/
	go test -race -count=1 ./internal/cminor/ -run 'TestInstancePoolStress'

# Warm-start suite under the race detector: the persist log's format,
# validation and compaction tests, the tuner-level save -> restart ->
# load simulations (zero re-exploration, byte-identical checkpoints,
# stale-winner dethroning, every bad-log class degrading to a cold
# start), and the server-lifecycle warm-start tests (Host loads, Close
# flushes, corrupt logs heal).
warm-sim:
	go test -race -count=1 ./internal/cminor/autotune/persist/
	go test -race -count=1 ./internal/cminor/autotune/ -run 'TestWarmStart'
	go test -race -count=1 ./internal/cminor/serve/ -run 'TestServerWarmStart|TestFlushTuneCache'
	go test -race -count=1 ./internal/cminor/ -run 'TestSourceHash'

# Full benchmark sweep, recorded as JSON for cross-PR tracking. The
# `-bench .` regex includes the *Parallel benchmarks (shared-Program
# Instances across GOMAXPROCS goroutines), the single-thread
# walker/compiled pairs, BenchmarkOptLevels — every kernel at every
# opt level O0–O3 plus the O4 bytecode backend, the static
# per-variant data the autotuner starts from — and BenchmarkAutotuned:
# the online tuner's steady state next
# to the best and worst static variant of every kernel.
bench:
	go test ./internal/cminor/... -run '^$$' -bench . -benchmem -count=$(BENCHCOUNT) -json > BENCH_$(PR).json
	@echo "wrote BENCH_$(PR).json"

# One-iteration smoke run for CI: proves every benchmark still executes.
bench-smoke:
	go test ./internal/cminor/... -run '^$$' -bench . -benchmem -benchtime 1x
