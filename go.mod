module socrates

go 1.24
