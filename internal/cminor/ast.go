package cminor

import "strings"

// Node is implemented by every AST node.
type Node interface {
	Pos() Pos
}

// NodeID identifies an annotatable AST node (Ident, DeclStmt, CallExpr)
// within its File. IDs are assigned densely by the parser so semantic
// passes can record their results in side tables indexed by ID instead
// of writing into the tree — the AST stays immutable after parse, which
// is what lets one *File be compiled (and one *Program be shared)
// concurrently. Clones preserve IDs; a full File.Clone therefore keeps
// them unique, but splicing cloned subtrees into another file does not.
type NodeID int32

// BasicKind enumerates scalar base types.
type BasicKind int

// Base type kinds.
const (
	Void BasicKind = iota
	Int
	Double
)

// String names the base kind using C spelling.
func (k BasicKind) String() string {
	switch k {
	case Void:
		return "void"
	case Int:
		return "int"
	case Double:
		return "double"
	}
	return "?"
}

// Type describes a (possibly array or pointer) C-minor type. Dims holds
// the array dimension expressions, outermost first; an empty Dims means a
// scalar. Ptr marks a single level of pointer indirection (used for
// output scalar parameters such as "double *out").
type Type struct {
	Kind BasicKind
	Dims []Expr
	Ptr  bool
}

// IsArray reports whether t has at least one array dimension.
func (t *Type) IsArray() bool { return t != nil && len(t.Dims) > 0 }

// IsScalar reports whether t is a plain scalar value type.
func (t *Type) IsScalar() bool { return t != nil && len(t.Dims) == 0 && !t.Ptr }

func (t *Type) clone() *Type {
	if t == nil {
		return nil
	}
	c := &Type{Kind: t.Kind, Ptr: t.Ptr}
	for _, d := range t.Dims {
		c.Dims = append(c.Dims, CloneExpr(d))
	}
	return c
}

// Pragma is a "#pragma ..." line (text excludes the "#pragma" prefix).
type Pragma struct {
	Text string
	P    Pos
}

// Pos returns the pragma position.
func (p *Pragma) Pos() Pos { return p.P }

// IsOMP reports whether this is an OpenMP pragma.
func (p *Pragma) IsOMP() bool { return strings.HasPrefix(p.Text, "omp") }

// IsGCCOptimize reports whether this is a "#pragma GCC optimize" line.
func (p *Pragma) IsGCCOptimize() bool {
	return strings.HasPrefix(p.Text, "GCC optimize")
}

// IsScop reports whether this is a Polybench scop marker.
func (p *Pragma) IsScop() bool { return p.Text == "scop" || p.Text == "endscop" }

// OMPClause extracts the parenthesised argument of an OpenMP clause, e.g.
// OMPClause("num_threads") on "omp parallel for num_threads(4)" returns
// "4", true. It returns "", false when the clause is absent.
func (p *Pragma) OMPClause(name string) (string, bool) {
	i := strings.Index(p.Text, name+"(")
	if i < 0 {
		return "", false
	}
	rest := p.Text[i+len(name)+1:]
	depth := 1
	for j := 0; j < len(rest); j++ {
		switch rest[j] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return rest[:j], true
			}
		}
	}
	return "", false
}

// HasOMPKeyword reports whether the pragma contains the given bare word
// (e.g. "parallel", "for", "simd").
func (p *Pragma) HasOMPKeyword(word string) bool {
	for _, f := range strings.FieldsFunc(p.Text, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '(' || r == ')' || r == ','
	}) {
		if f == word {
			return true
		}
	}
	return false
}

func clonePragmas(ps []*Pragma) []*Pragma {
	if ps == nil {
		return nil
	}
	out := make([]*Pragma, len(ps))
	for i, p := range ps {
		cp := *p
		out[i] = &cp
	}
	return out
}

// File is a parsed translation unit. NumIDs is the number of NodeIDs
// the parser assigned; side tables produced by the semantic passes are
// sized by it.
type File struct {
	Name    string
	Funcs   []*FuncDecl
	Globals []*DeclStmt
	P       Pos
	NumIDs  int
}

// Pos returns the file position.
func (f *File) Pos() Pos { return f.P }

// Func returns the function with the given name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// Clone deep-copies the file. NodeIDs are preserved, so the clone can
// be resolved and compiled independently of the original.
func (f *File) Clone() *File {
	c := &File{Name: f.Name, P: f.P, NumIDs: f.NumIDs}
	for _, g := range f.Globals {
		c.Globals = append(c.Globals, CloneStmt(g).(*DeclStmt))
	}
	for _, fn := range f.Funcs {
		c.Funcs = append(c.Funcs, fn.Clone())
	}
	return c
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
	P    Pos
}

// Pos returns the parameter position.
func (p *Param) Pos() Pos { return p.P }

// FuncDecl is a function definition. Pragmas holds #pragma lines
// immediately preceding the function (e.g. GCC optimize directives
// inserted by the weaver).
type FuncDecl struct {
	Name    string
	Params  []*Param
	Ret     *Type
	Body    *Block
	Pragmas []*Pragma
	P       Pos
}

// Pos returns the function position.
func (f *FuncDecl) Pos() Pos { return f.P }

// Clone deep-copies the function.
func (f *FuncDecl) Clone() *FuncDecl {
	c := &FuncDecl{Name: f.Name, Ret: f.Ret.clone(), P: f.P,
		Pragmas: clonePragmas(f.Pragmas)}
	for _, p := range f.Params {
		c.Params = append(c.Params, &Param{Name: p.Name, Type: p.Type.clone(), P: p.P})
	}
	if f.Body != nil {
		c.Body = CloneStmt(f.Body).(*Block)
	}
	return c
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	P     Pos
}

// DeclStmt declares a single variable (comma declarations are split by
// the parser). The resolver records the declared slot in the
// ResolvedFile's side table under ID.
type DeclStmt struct {
	Name string
	Type *Type
	Init Expr
	P    Pos
	ID   NodeID
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X Expr
	P Pos
}

// ForStmt is a C for loop. Pragmas holds the #pragma lines immediately
// preceding the loop (OpenMP directives attach here).
type ForStmt struct {
	Init    Stmt // nil, *DeclStmt or *ExprStmt
	Cond    Expr
	Post    Expr
	Body    *Block
	Pragmas []*Pragma
	P       Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	P    Pos
}

// IfStmt is an if/else statement.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt // nil, *Block or *IfStmt
	P    Pos
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X Expr // may be nil
	P Pos
}

// PragmaStmt is a standalone pragma in statement position (e.g. the
// Polybench "#pragma scop" markers).
type PragmaStmt struct {
	Pragma *Pragma
	P      Pos
}

// Pos implementations.
func (s *Block) Pos() Pos      { return s.P }
func (s *DeclStmt) Pos() Pos   { return s.P }
func (s *ExprStmt) Pos() Pos   { return s.P }
func (s *ForStmt) Pos() Pos    { return s.P }
func (s *WhileStmt) Pos() Pos  { return s.P }
func (s *IfStmt) Pos() Pos     { return s.P }
func (s *ReturnStmt) Pos() Pos { return s.P }
func (s *PragmaStmt) Pos() Pos { return s.P }

func (*Block) stmtNode()      {}
func (*DeclStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()   {}
func (*ForStmt) stmtNode()    {}
func (*WhileStmt) stmtNode()  {}
func (*IfStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode() {}
func (*PragmaStmt) stmtNode() {}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// VarKind classifies what a resolved identifier refers to and which slot
// space of the execution frame holds it.
type VarKind uint8

// Variable kinds assigned by the resolver.
const (
	VarUnresolved   VarKind = iota
	VarScalar               // by-value scalar in the frame's scalar slots
	VarCell                 // pointer scalar sharing a caller-owned cell
	VarArray                // array in the frame's array slots
	VarGlobalScalar         // scalar in the interpreter's global store
	VarGlobalArray          // array in the interpreter's global store
)

// String names the variable kind.
func (k VarKind) String() string {
	switch k {
	case VarScalar:
		return "scalar"
	case VarCell:
		return "pointer scalar"
	case VarArray:
		return "array"
	case VarGlobalScalar:
		return "global scalar"
	case VarGlobalArray:
		return "global array"
	}
	return "unresolved"
}

// VarRef is a resolved slot reference: the storage class of a variable
// plus its index within that class's slot space. The resolver records a
// VarRef for every Ident and DeclStmt in a side table keyed by NodeID
// (see ResolvedFile.RefOf) so the compiler can lower every access to an
// array-indexed frame read instead of a map lookup — without mutating
// the AST. Base is the declared scalar base kind (int/double), which
// seeds the typecheck pass that drives the unboxed evaluator
// specialization.
type VarRef struct {
	Kind VarKind
	Slot int
	Base BasicKind
}

// Ident is a variable reference; its resolved slot lives in the
// ResolvedFile's side table under ID.
type Ident struct {
	Name string
	P    Pos
	ID   NodeID
}

// IntLit is an integer literal.
type IntLit struct {
	V int64
	P Pos
}

// FloatLit is a floating-point literal. Text preserves the source
// spelling for round-trip printing.
type FloatLit struct {
	V    float64
	Text string
	P    Pos
}

// BinExpr is a binary operation; Op is one of + - * / % == != < > <= >=
// && ||.
type BinExpr struct {
	Op   TokenKind
	X, Y Expr
	P    Pos
}

// UnExpr is a unary operation; Op is one of - ! +.
type UnExpr struct {
	Op TokenKind
	X  Expr
	P  Pos
}

// AssignExpr assigns RHS to LHS; Op is ASSIGN or one of the compound
// assignment operators.
type AssignExpr struct {
	Op  TokenKind
	LHS Expr
	RHS Expr
	P   Pos
}

// IncDecExpr is i++ / i-- (postfix).
type IncDecExpr struct {
	Op TokenKind // INC or DEC
	X  Expr
	P  Pos
}

// IndexExpr is a single-dimension subscript; multi-dimensional accesses
// chain IndexExprs with the outermost dimension at the root's X.
type IndexExpr struct {
	X   Expr
	Idx Expr
	P   Pos
}

// CallExpr is a function call by name. Whether Fun names a math builtin
// rather than a user function is recorded by the resolver in a side
// table under ID.
type CallExpr struct {
	Fun  string
	Args []Expr
	P    Pos
	ID   NodeID
}

// CondExpr is the ternary operator c ? t : f.
type CondExpr struct {
	Cond, Then, Else Expr
	P                Pos
}

// ParenExpr preserves explicit parentheses.
type ParenExpr struct {
	X Expr
	P Pos
}

// CastExpr is a C cast such as (double)x.
type CastExpr struct {
	To *Type
	X  Expr
	P  Pos
}

// Pos implementations.
func (e *Ident) Pos() Pos      { return e.P }
func (e *IntLit) Pos() Pos     { return e.P }
func (e *FloatLit) Pos() Pos   { return e.P }
func (e *BinExpr) Pos() Pos    { return e.P }
func (e *UnExpr) Pos() Pos     { return e.P }
func (e *AssignExpr) Pos() Pos { return e.P }
func (e *IncDecExpr) Pos() Pos { return e.P }
func (e *IndexExpr) Pos() Pos  { return e.P }
func (e *CallExpr) Pos() Pos   { return e.P }
func (e *CondExpr) Pos() Pos   { return e.P }
func (e *ParenExpr) Pos() Pos  { return e.P }
func (e *CastExpr) Pos() Pos   { return e.P }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BinExpr) exprNode()    {}
func (*UnExpr) exprNode()     {}
func (*AssignExpr) exprNode() {}
func (*IncDecExpr) exprNode() {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*CondExpr) exprNode()   {}
func (*ParenExpr) exprNode()  {}
func (*CastExpr) exprNode()   {}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Ident:
		c := *e // the NodeID comes along; annotations live outside the AST
		return &c
	case *IntLit:
		c := *e
		return &c
	case *FloatLit:
		c := *e
		return &c
	case *BinExpr:
		return &BinExpr{Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y), P: e.P}
	case *UnExpr:
		return &UnExpr{Op: e.Op, X: CloneExpr(e.X), P: e.P}
	case *AssignExpr:
		return &AssignExpr{Op: e.Op, LHS: CloneExpr(e.LHS), RHS: CloneExpr(e.RHS), P: e.P}
	case *IncDecExpr:
		return &IncDecExpr{Op: e.Op, X: CloneExpr(e.X), P: e.P}
	case *IndexExpr:
		return &IndexExpr{X: CloneExpr(e.X), Idx: CloneExpr(e.Idx), P: e.P}
	case *CallExpr:
		c := &CallExpr{Fun: e.Fun, P: e.P, ID: e.ID}
		for _, a := range e.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *CondExpr:
		return &CondExpr{Cond: CloneExpr(e.Cond), Then: CloneExpr(e.Then),
			Else: CloneExpr(e.Else), P: e.P}
	case *ParenExpr:
		return &ParenExpr{X: CloneExpr(e.X), P: e.P}
	case *CastExpr:
		return &CastExpr{To: e.To.clone(), X: CloneExpr(e.X), P: e.P}
	}
	panic("cminor: CloneExpr: unknown expression type")
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *Block:
		c := &Block{P: s.P}
		for _, st := range s.Stmts {
			c.Stmts = append(c.Stmts, CloneStmt(st))
		}
		return c
	case *DeclStmt:
		return &DeclStmt{Name: s.Name, Type: s.Type.clone(), Init: CloneExpr(s.Init),
			P: s.P, ID: s.ID}
	case *ExprStmt:
		return &ExprStmt{X: CloneExpr(s.X), P: s.P}
	case *ForStmt:
		c := &ForStmt{Cond: CloneExpr(s.Cond), Post: CloneExpr(s.Post), P: s.P,
			Pragmas: clonePragmas(s.Pragmas)}
		c.Init = CloneStmt(s.Init)
		if s.Body != nil {
			c.Body = CloneStmt(s.Body).(*Block)
		}
		return c
	case *WhileStmt:
		c := &WhileStmt{Cond: CloneExpr(s.Cond), P: s.P}
		if s.Body != nil {
			c.Body = CloneStmt(s.Body).(*Block)
		}
		return c
	case *IfStmt:
		c := &IfStmt{Cond: CloneExpr(s.Cond), P: s.P}
		if s.Then != nil {
			c.Then = CloneStmt(s.Then).(*Block)
		}
		c.Else = CloneStmt(s.Else)
		return c
	case *ReturnStmt:
		return &ReturnStmt{X: CloneExpr(s.X), P: s.P}
	case *PragmaStmt:
		cp := *s.Pragma
		return &PragmaStmt{Pragma: &cp, P: s.P}
	}
	panic("cminor: CloneStmt: unknown statement type")
}

// Walk calls fn for every node in the subtree rooted at n, parents before
// children. If fn returns false for a node, its children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch n := n.(type) {
	case *File:
		for _, g := range n.Globals {
			Walk(g, fn)
		}
		for _, f := range n.Funcs {
			Walk(f, fn)
		}
	case *FuncDecl:
		for _, p := range n.Params {
			Walk(p, fn)
		}
		if n.Body != nil {
			Walk(n.Body, fn)
		}
	case *Param, *Pragma, *Ident, *IntLit, *FloatLit:
	case *Block:
		for _, s := range n.Stmts {
			Walk(s, fn)
		}
	case *DeclStmt:
		for _, d := range n.Type.Dims {
			Walk(d, fn)
		}
		if n.Init != nil {
			Walk(n.Init, fn)
		}
	case *ExprStmt:
		Walk(n.X, fn)
	case *ForStmt:
		for _, p := range n.Pragmas {
			Walk(p, fn)
		}
		if n.Init != nil {
			Walk(n.Init, fn)
		}
		if n.Cond != nil {
			Walk(n.Cond, fn)
		}
		if n.Post != nil {
			Walk(n.Post, fn)
		}
		if n.Body != nil {
			Walk(n.Body, fn)
		}
	case *WhileStmt:
		Walk(n.Cond, fn)
		if n.Body != nil {
			Walk(n.Body, fn)
		}
	case *IfStmt:
		Walk(n.Cond, fn)
		if n.Then != nil {
			Walk(n.Then, fn)
		}
		if n.Else != nil {
			Walk(n.Else, fn)
		}
	case *ReturnStmt:
		if n.X != nil {
			Walk(n.X, fn)
		}
	case *PragmaStmt:
		Walk(n.Pragma, fn)
	case *BinExpr:
		Walk(n.X, fn)
		Walk(n.Y, fn)
	case *UnExpr:
		Walk(n.X, fn)
	case *AssignExpr:
		Walk(n.LHS, fn)
		Walk(n.RHS, fn)
	case *IncDecExpr:
		Walk(n.X, fn)
	case *IndexExpr:
		Walk(n.X, fn)
		Walk(n.Idx, fn)
	case *CallExpr:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *CondExpr:
		Walk(n.Cond, fn)
		Walk(n.Then, fn)
		Walk(n.Else, fn)
	case *ParenExpr:
		Walk(n.X, fn)
	case *CastExpr:
		Walk(n.X, fn)
	}
}
