// Package autotune is the runtime layer of the SOCRATES reproduction:
// online selection among the compile-time variants of one program.
//
// The engine's design-time side compiles a kernel into an immutable
// grid of variants (backend × O0–O3, the O3 passes individually
// gate-able — see cminor.WithOptLevel / cminor.WithPasses) and `make
// bench` records their static costs. This package closes the loop the
// paper describes: an AutoTuner wraps one *cminor.Program, measures
// each variant in production, and converges on the best one per
// (function, input-size class) — re-opening exploration when the
// winner's observed cost drifts, so the choice adapts under load.
//
// The decision loop is built to be simulation-testable: cost
// measurements flow through an injected Sampler (default: wall time
// from an injected Clock), and exploration randomness comes from a
// seeded PRNG, so tests drive convergence, exploration budgets and
// drift reactions deterministically with a fake clock — no sleeping,
// no flaky timing.
//
//	prog, _ := cminor.Compile(file)
//	tn, _ := autotune.New(prog)
//	v, err := tn.Call("gemm", args...)   // routed to the current best guess
//
// AutoTuner is safe for concurrent use: selection state is mutex-
// guarded, variants materialize lazily exactly once, and every
// execution runs on a pooled per-call Instance (cminor.InstancePool),
// whose Put restores the step budget so no call inherits another's.
package autotune

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	cm "socrates/internal/cminor"
)

// config is the resolved option set of one AutoTuner.
type config struct {
	grid       []VariantSpec
	policy     Policy
	epsilon    float64 // exploit-phase exploration rate (EpsilonGreedy)
	alpha      float64 // EWMA weight of a new measurement
	minSamples int     // measure-phase pull quota per arm
	drift      float64 // winner-cost tolerance band before re-exploring
	ucbC       float64 // UCB1 confidence scale
	seed       uint64
	clock      Clock
	sampler    Sampler
	classify   func(args []any) int
	// Fault containment (quarantine.go).
	fallback    bool             // trusted-fallback re-execution on variants
	inject      cm.FaultInjector // deterministic fault-injection seam
	auditEvery  int64            // every nth site call runs CallAudited (0 = off)
	backoffBase time.Duration    // first quarantine window
	backoffMax  time.Duration    // backoff doubling cap
}

func defaultTunerConfig() config {
	return config{
		grid:        DefaultGrid(),
		policy:      EpsilonGreedy,
		epsilon:     0.05,
		alpha:       0.3,
		minSamples:  3,
		drift:       0.5,
		ucbC:        1.0,
		seed:        1,
		clock:       wallClock{},
		classify:    SizeClass,
		fallback:    true,
		backoffBase: 250 * time.Millisecond,
		backoffMax:  30 * time.Second,
	}
}

// Option configures New.
type Option func(*config)

// WithGrid replaces the variant grid the tuner selects over (default
// DefaultGrid: compiled O0–O3).
func WithGrid(specs ...VariantSpec) Option {
	return func(c *config) { c.grid = append([]VariantSpec{}, specs...) }
}

// WithPolicy selects the exploit-phase policy (default EpsilonGreedy).
func WithPolicy(p Policy) Option { return func(c *config) { c.policy = p } }

// WithEpsilon sets the EpsilonGreedy exploration rate in [0, 1]
// (default 0.05).
func WithEpsilon(eps float64) Option { return func(c *config) { c.epsilon = eps } }

// WithEWMAAlpha sets the weight a new measurement carries in the cost
// estimate, in (0, 1] (default 0.3).
func WithEWMAAlpha(a float64) Option { return func(c *config) { c.alpha = a } }

// WithMinSamples sets the measure-phase pull quota per arm (default 3).
// The exploration budget of a fresh site is exactly len(grid)*n calls.
func WithMinSamples(n int) Option { return func(c *config) { c.minSamples = n } }

// WithDriftFactor sets the winner-cost degradation tolerance:
// exploration reopens when the winner's EWMA rises past
// baseline*(1+f) (default 0.5). The winner improving is not drift —
// the baseline tightens to the improved cost instead.
func WithDriftFactor(f float64) Option { return func(c *config) { c.drift = f } }

// WithSeed seeds the tuner's deterministic exploration PRNG.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithClock injects the time source the default Sampler measures with.
func WithClock(clk Clock) Option { return func(c *config) { c.clock = clk } }

// WithSampler injects the measurement seam itself, bypassing the
// Clock-based default — simulation tests substitute a synthetic cost
// model here.
func WithSampler(s Sampler) Option { return func(c *config) { c.sampler = s } }

// WithClassifier replaces the input classifier (default SizeClass:
// log2 buckets of total array elements).
func WithClassifier(fn func(args []any) int) Option {
	return func(c *config) { c.classify = fn }
}

// siteKey identifies one tuning site.
type siteKey struct {
	fn    string
	class int
}

// variantSlot is one lazily-materialized grid point: the variant
// Program plus its Instance pool, built at most once.
type variantSlot struct {
	once sync.Once
	prog *cm.Program
	pool *cm.InstancePool
	err  error
}

// AutoTuner routes calls to one of several variants of a shared
// Program, learning per-(function, input-class) which variant is
// cheapest. Create with New; safe for concurrent use.
//
// The tuner targets stateless compute kernels — the paper's workload.
// Calls execute on pooled per-variant Instances, and an Instance's
// file-scope global variables persist per session: a kernel that
// accumulates state in globals would observe routing (different
// variants and checkouts see different global histories). Tune only
// kernels whose outputs are a function of their arguments; run
// stateful kernels on a dedicated Instance instead.
type AutoTuner struct {
	base    *cm.Program
	cfg     config
	sampler Sampler
	slots   []*variantSlot // parallel to cfg.grid

	mu    sync.Mutex
	rng   splitmix64
	sites map[siteKey]*siteState
	// counters indexes each site's atomic counter block for the
	// lock-free Counters() read path (counters.go): populated once at
	// site creation, read by scrapers without the tuner mutex.
	counters sync.Map // siteKey -> *siteCounters
}

// New wraps prog in an AutoTuner. The grid is validated eagerly (an
// unknown opt level or pass bit is an error here, not at first call)
// but variants are materialized lazily, on the first call routed to
// them — a tuner over a large grid costs nothing for arms never tried.
func New(prog *cm.Program, opts ...Option) (*AutoTuner, error) {
	cfg := defaultTunerConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.grid) == 0 {
		return nil, fmt.Errorf("autotune: empty variant grid")
	}
	if cfg.minSamples < 1 {
		return nil, fmt.Errorf("autotune: min samples must be >= 1, got %d", cfg.minSamples)
	}
	if cfg.epsilon < 0 || cfg.epsilon > 1 {
		return nil, fmt.Errorf("autotune: epsilon must be in [0, 1], got %g", cfg.epsilon)
	}
	if cfg.alpha <= 0 || cfg.alpha > 1 {
		return nil, fmt.Errorf("autotune: EWMA alpha must be in (0, 1], got %g", cfg.alpha)
	}
	if cfg.drift <= 0 {
		return nil, fmt.Errorf("autotune: drift factor must be > 0, got %g", cfg.drift)
	}
	if cfg.auditEvery < 0 {
		return nil, fmt.Errorf("autotune: audit cadence must be >= 0, got %d", cfg.auditEvery)
	}
	if cfg.backoffBase <= 0 || cfg.backoffMax < cfg.backoffBase {
		return nil, fmt.Errorf("autotune: quarantine backoff must satisfy 0 < base <= max, got %v, %v",
			cfg.backoffBase, cfg.backoffMax)
	}
	for _, spec := range cfg.grid {
		// Run the engine's own option validation now so a typo'd grid
		// fails fast — without lowering anything; variants still
		// materialize lazily, on first selection.
		if err := prog.CheckOptions(spec.options()...); err != nil {
			return nil, fmt.Errorf("autotune: grid point %v: %w", spec, err)
		}
	}
	t := &AutoTuner{
		base:    prog,
		cfg:     cfg,
		sampler: cfg.sampler,
		slots:   make([]*variantSlot, len(cfg.grid)),
		rng:     splitmix64(cfg.seed),
		sites:   map[siteKey]*siteState{},
	}
	if t.sampler == nil {
		t.sampler = clockSampler{clock: cfg.clock}
	}
	for i := range t.slots {
		t.slots[i] = &variantSlot{}
	}
	return t, nil
}

// Grid reports the tuner's variant grid.
func (t *AutoTuner) Grid() []VariantSpec {
	return append([]VariantSpec{}, t.cfg.grid...)
}

// variant materializes (once) and returns grid point idx. Every
// materialized variant carries the tuner's resilience options: trusted
// fallback (so a faulting arm degrades instead of erroring) and the
// fault injector, when one is armed.
func (t *AutoTuner) variant(idx int) (*variantSlot, error) {
	s := t.slots[idx]
	s.once.Do(func() {
		opts := t.cfg.grid[idx].options()
		opts = append(opts, cm.WithFallback(t.cfg.fallback))
		if t.cfg.inject != nil {
			opts = append(opts, cm.WithFaultInjector(t.cfg.inject))
		}
		s.prog, s.err = t.base.Variant(opts...)
		if s.err == nil {
			s.pool = s.prog.NewPool()
		}
	})
	return s, s.err
}

// site returns (creating if needed) the selection state for key.
// Caller holds t.mu.
func (t *AutoTuner) site(key siteKey) *siteState {
	st := t.sites[key]
	if st == nil {
		st = newSiteState(len(t.cfg.grid))
		t.sites[key] = st
		t.counters.Store(key, st.ctr)
	}
	return st
}

// Classify reports the input-size class the tuner's classifier assigns
// to an argument set — the second half of a site key. Serving layers
// use it to group requests that will share a tuning site (and therefore
// batch well) without duplicating the classifier.
func (t *AutoTuner) Classify(args []any) int { return t.cfg.classify(args) }

// Call routes one invocation of the named function through the
// explore/exploit policy: a variant is selected for the call's
// (function, input-size class) site, the call runs on a pooled
// Instance of that variant, and the measured cost feeds the site's
// estimates. Semantics are those of Instance.Call on whichever variant
// was picked — every variant is bit-exact with the walker, so routing
// is unobservable apart from speed.
func (t *AutoTuner) Call(fn string, args ...any) (cm.Value, error) {
	return t.call(nil, fn, args)
}

// CallContext is Call with cancellation, forwarded to
// Instance.CallContext. A cancelled call still counts its pull, but
// its (truncated) cost is not folded into the estimates.
func (t *AutoTuner) CallContext(ctx context.Context, fn string, args ...any) (cm.Value, error) {
	return t.call(ctx, fn, args)
}

func (t *AutoTuner) call(ctx context.Context, fn string, args []any) (cm.Value, error) {
	// Reject unknown functions before any selection state exists:
	// otherwise caller-supplied garbage names would grow the site map
	// without bound and charge pulls that can never be measured.
	if !t.base.HasFunc(fn) {
		return cm.Value{}, fmt.Errorf("autotune: no function %q", fn)
	}
	key := siteKey{fn: fn, class: t.cfg.classify(args)}

	t.mu.Lock()
	st := t.site(key)
	idx := st.choose(&t.cfg, &t.rng)
	// Audit cadence: every nth call at the site re-executes on the
	// trusted tier and compares outcomes bit-exactly, so a silently
	// wrong arm is caught even though it never panics.
	audit := t.cfg.auditEvery > 0 && st.pulls%t.cfg.auditEvery == 0
	t.mu.Unlock()

	slot, err := t.variant(idx)
	if err != nil {
		return cm.Value{}, err
	}
	inst := slot.pool.Get()
	var ret cm.Value
	var cost time.Duration
	var callErr error
	var diverged bool
	if cs, isClock := t.sampler.(clockSampler); isClock && !audit {
		// Closure-free fast path for the default sampler: on the small
		// kernels the routed call is tens of microseconds, so the tuner
		// itself must not allocate per call.
		t0 := cs.clock.Now()
		if ctx != nil {
			ret, callErr = inst.CallContext(ctx, fn, args...)
		} else {
			ret, callErr = inst.Call(fn, args...)
		}
		cost = cs.clock.Now().Sub(t0)
	} else {
		cost, callErr = t.sampler.Sample(fn, t.cfg.grid[idx], key.class, func() error {
			var e error
			switch {
			case audit:
				ret, diverged, e = inst.CallAudited(ctx, fn, args...)
			case ctx != nil:
				ret, e = inst.CallContext(ctx, fn, args...)
			default:
				ret, e = inst.Call(fn, args...)
			}
			return e
		})
	}
	// Read the containment taps before Put resets the session.
	out := callOutcome{
		ok:       callErr == nil && !audit,
		fault:    inst.LastCallFault() != nil,
		degraded: inst.LastCallDegraded(),
		diverged: diverged,
	}
	var ifault *cm.InternalFault
	if errors.As(callErr, &ifault) {
		out.fault = true
	}
	// Put restores the pooled session's budget — and rebuilds a
	// poisoned session's globals — so the next checkout starts fresh
	// regardless of what this call did.
	slot.pool.Put(inst)

	t.mu.Lock()
	t.site(key).observe(&t.cfg, idx, float64(cost), out)
	t.mu.Unlock()
	return ret, callErr
}

// Best reports the winning variant of a converged (function, class)
// site. ok is false while the site is unknown or still exploring.
func (t *AutoTuner) Best(fn string, class int) (spec VariantSpec, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.sites[siteKey{fn: fn, class: class}]
	if st == nil || st.phase != phaseExploit {
		return VariantSpec{}, false
	}
	return t.cfg.grid[st.best], true
}

// Snapshot returns the state of every tuning site, sorted by function
// then class — the introspection surface tests and monitoring read.
func (t *AutoTuner) Snapshot() []SiteReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	reports := make([]SiteReport, 0, len(t.sites))
	for key, st := range t.sites {
		r := SiteReport{
			Fn:              key.fn,
			Class:           key.class,
			Converged:       st.phase == phaseExploit,
			Best:            t.cfg.grid[st.best],
			Pulls:           st.pulls,
			ExplorePulls:    st.explore,
			Reopens:         st.reopens,
			QuarantinedArms: st.nquar,
			Arms:            make([]ArmReport, len(st.arms)),
		}
		for i := range st.arms {
			a := &st.arms[i]
			r.Arms[i] = ArmReport{
				Spec:        t.cfg.grid[i],
				Pulls:       a.pulls,
				EWMA:        durationOf(a.ewma),
				Sampled:     a.sampled,
				Faults:      a.faults,
				Degraded:    a.degraded,
				Diverged:    a.diverged,
				Quarantines: a.quarantines,
				Quarantined: a.quarantined,
			}
		}
		reports = append(reports, r)
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Fn != reports[j].Fn {
			return reports[i].Fn < reports[j].Fn
		}
		return reports[i].Class < reports[j].Class
	})
	return reports
}
