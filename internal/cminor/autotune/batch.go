package autotune

import (
	"context"
	"errors"
	"fmt"
	"time"

	cm "socrates/internal/cminor"
)

// Batched routing. A serving layer that coalesces same-(function,
// input-class) requests wants them to share one policy decision and one
// warm checked-out Instance: switching variants call-to-call is itself
// expensive (cold closure graph, predictor/icache thrash — the reason
// the measure phase samples in bursts), and a pool checkout per call
// adds a lock round-trip the batch can amortize. CallBatch is that
// hook: the whole batch rides a single arm selection on a single pooled
// session, while every call is still measured and observed
// individually, so the estimates see exactly the back-to-back sample
// shape they prefer.

// BatchCall is one invocation in an AutoTuner.CallBatch batch: the
// inputs (Ctx may be nil), and the per-call results CallBatch fills in.
type BatchCall struct {
	Ctx  context.Context
	Args []any

	// Results, written by CallBatch.
	Ret cm.Value
	Err error
	// Steps is the call's statement count (Instance.LastCallSteps) —
	// the deterministic cost a serving layer debits step budgets with.
	Steps int
	// Degraded reports the call was served by trusted-fallback
	// re-execution after a contained internal fault (resilience.go).
	Degraded bool
	// Fault is the contained internal fault of the call, nil when it
	// ran clean (set both when fallback degraded it away and when it
	// surfaced as Err).
	Fault *cm.InternalFault
}

// CallBatch routes a batch of invocations of fn through ONE
// explore/exploit decision: a single arm is selected for the batch's
// (function, input-class) site — the class of the first entry; callers
// group entries with Classify — and a single pooled Instance of that
// arm runs every call back-to-back. Each call is measured and observed
// individually, exactly as if routed through Call, so estimates,
// quarantine signals and audit cadence behave identically; the batch
// only amortizes the selection, the checkout, and the variant switch.
//
// Per-call outcomes (value, error, steps, degradation) are written into
// the batch entries; the returned error is reserved for batch-level
// failures (unknown function, variant materialization). A session
// poisoned mid-batch is recycled through the pool — which rebuilds its
// globals — before the next entry runs, so one entry's contained fault
// cannot leak half-written state into its batch-mates.
func (t *AutoTuner) CallBatch(fn string, batch []BatchCall) error {
	if len(batch) == 0 {
		return nil
	}
	if !t.base.HasFunc(fn) {
		return fmt.Errorf("autotune: no function %q", fn)
	}
	key := siteKey{fn: fn, class: t.cfg.classify(batch[0].Args)}

	t.mu.Lock()
	st := t.site(key)
	idx := st.choose(&t.cfg, &t.rng)
	audit := t.cfg.auditEvery > 0 && st.pulls%t.cfg.auditEvery == 0
	// The riders follow the leader's arm: charge their pulls the same
	// way choose would have, without re-running the policy.
	for range batch[1:] {
		st.pulls++
		st.ctr.pulls.Add(1)
		st.arms[idx].pulls++
		if st.phase == phaseExploit && idx != st.best {
			st.explore++
		}
	}
	t.mu.Unlock()

	slot, err := t.variant(idx)
	if err != nil {
		return err
	}
	costs := make([]float64, len(batch))
	outs := make([]callOutcome, len(batch))
	inst := slot.pool.Get()
	for i := range batch {
		b := &batch[i]
		// Audit cadence is a per-site decision; in a batch it lands on
		// the leader — one reference re-execution per audited batch.
		doAudit := audit && i == 0
		var diverged bool
		var cost time.Duration
		if cs, isClock := t.sampler.(clockSampler); isClock && !doAudit {
			t0 := cs.clock.Now()
			if b.Ctx != nil {
				b.Ret, b.Err = inst.CallContext(b.Ctx, fn, b.Args...)
			} else {
				b.Ret, b.Err = inst.Call(fn, b.Args...)
			}
			cost = cs.clock.Now().Sub(t0)
		} else {
			cost, b.Err = t.sampler.Sample(fn, t.cfg.grid[idx], key.class, func() error {
				var e error
				switch {
				case doAudit:
					b.Ret, diverged, e = inst.CallAudited(b.Ctx, fn, b.Args...)
				case b.Ctx != nil:
					b.Ret, e = inst.CallContext(b.Ctx, fn, b.Args...)
				default:
					b.Ret, e = inst.Call(fn, b.Args...)
				}
				return e
			})
		}
		b.Steps = inst.LastCallSteps()
		b.Degraded = inst.LastCallDegraded()
		b.Fault = inst.LastCallFault()
		out := callOutcome{
			ok:       b.Err == nil && !doAudit,
			fault:    b.Fault != nil,
			degraded: b.Degraded,
			diverged: diverged,
		}
		var ifault *cm.InternalFault
		if errors.As(b.Err, &ifault) {
			out.fault = true
		}
		costs[i], outs[i] = float64(cost), out
		if inst.Poisoned() {
			// Half-written globals must not serve the rest of the batch:
			// Put repairs poisoned sessions, so cycle through the pool.
			slot.pool.Put(inst)
			inst = slot.pool.Get()
		}
	}
	slot.pool.Put(inst)

	t.mu.Lock()
	st = t.site(key)
	for i := range outs {
		st.observe(&t.cfg, idx, costs[i], outs[i])
	}
	t.mu.Unlock()
	return nil
}
