package autotune

import (
	"errors"
	"testing"
	"time"

	cm "socrates/internal/cminor"
)

// specSampler records which variant every sampled call ran on, so batch
// tests can assert the whole batch shared one arm.
type specSampler struct {
	inner simSampler
	specs []VariantSpec
}

func (s *specSampler) Sample(fn string, spec VariantSpec, class int, call func() error) (time.Duration, error) {
	s.specs = append(s.specs, spec)
	return s.inner.Sample(fn, spec, class, call)
}

// TestCallBatchSharesOneDecision pins the batching contract: a k-entry
// batch charges k pulls to exactly one arm, runs every call on it, and
// produces the same values as individual calls.
func TestCallBatchSharesOneDecision(t *testing.T) {
	prog := simProgram(t)
	want, err := prog.NewInstance().Call("probe", simArgs(16)...)
	if err != nil {
		t.Fatal(err)
	}
	sampler := &specSampler{inner: simSampler{cost: flatCost(map[string]time.Duration{
		"O0": 100 * time.Microsecond, "O2": 30 * time.Microsecond})}}
	tn, err := New(prog,
		WithGrid(VariantSpec{Opt: cm.O0}, VariantSpec{Opt: cm.O2}),
		WithMinSamples(2),
		WithSampler(sampler),
	)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]BatchCall, 4)
	for i := range batch {
		batch[i].Args = simArgs(16)
	}
	if err := tn.CallBatch("probe", batch); err != nil {
		t.Fatal(err)
	}
	if len(sampler.specs) != 4 {
		t.Fatalf("sampled %d calls, want 4", len(sampler.specs))
	}
	for i, b := range batch {
		if b.Err != nil {
			t.Fatalf("entry %d: %v", i, b.Err)
		}
		if b.Ret != want {
			t.Fatalf("entry %d: got %v, want %v", i, b.Ret, want)
		}
		if b.Steps == 0 {
			t.Fatalf("entry %d: no step accounting", i)
		}
		if sampler.specs[i] != sampler.specs[0] {
			t.Fatalf("batch split across arms: %v vs %v", sampler.specs[i], sampler.specs[0])
		}
	}
	snaps := tn.Snapshot()
	if len(snaps) != 1 || snaps[0].Pulls != 4 {
		t.Fatalf("want one site with 4 pulls, got %+v", snaps)
	}
	var armPulls int64
	for _, a := range snaps[0].Arms {
		if a.Pulls != 0 && a.Pulls != 4 {
			t.Fatalf("pulls split across arms: %+v", snaps[0].Arms)
		}
		armPulls += a.Pulls
	}
	if armPulls != 4 {
		t.Fatalf("arm pulls total %d, want 4", armPulls)
	}

	// A second batch must complete the other arm's measure quota: the
	// measure phase is burst round-robin, so batches land arm-by-arm.
	batch2 := make([]BatchCall, 2)
	for i := range batch2 {
		batch2[i].Args = simArgs(16)
	}
	if err := tn.CallBatch("probe", batch2); err != nil {
		t.Fatal(err)
	}
	if sampler.specs[4] == sampler.specs[0] || sampler.specs[5] != sampler.specs[4] {
		t.Fatalf("second batch should burst the other arm: %v", sampler.specs)
	}
	if _, ok := tn.Best("probe", tn.Classify(simArgs(16))); !ok {
		t.Fatal("site should have converged after both quotas")
	}
}

// TestCallBatchPoisonedSessionRecycled pins mid-batch fault isolation:
// with fallback off, an exit-point injected panic poisons the session,
// and the NEXT batch entry must still compute the correct value — the
// batch runner cycles the poisoned session through the pool (which
// rebuilds it) instead of reusing half-written state.
func TestCallBatchPoisonedSessionRecycled(t *testing.T) {
	prog := simProgram(t)
	want, err := prog.NewInstance().Call("probe", simArgs(16)...)
	if err != nil {
		t.Fatal(err)
	}
	inj := cm.NewScriptedInjector(cm.FaultRule{
		Backend: cm.BackendCompiled, Opt: cm.O2, Fn: "probe",
		Call: 1, Kind: cm.FaultPanic, Point: cm.FaultAtExit,
	})
	tn, err := New(prog,
		WithGrid(VariantSpec{Opt: cm.O2}),
		WithMinSamples(1),
		WithSampler(&simSampler{cost: flatCost(map[string]time.Duration{"O2": 30 * time.Microsecond})}),
		WithFaultInjector(inj),
		WithFallback(false),
		WithQuarantineBackoff(time.Hour, time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]BatchCall, 3)
	for i := range batch {
		batch[i].Args = simArgs(16)
	}
	if err := tn.CallBatch("probe", batch); err != nil {
		t.Fatal(err)
	}
	var ifault *cm.InternalFault
	if !errors.As(batch[0].Err, &ifault) {
		t.Fatalf("entry 0: want InternalFault, got %v", batch[0].Err)
	}
	if batch[0].Fault == nil {
		t.Fatal("entry 0: fault tap not set")
	}
	for i := 1; i < 3; i++ {
		if batch[i].Err != nil || batch[i].Ret != want {
			t.Fatalf("entry %d after poison: got (%v, %v), want (%v, nil)",
				i, batch[i].Ret, batch[i].Err, want)
		}
	}
	ctrs := tn.Counters()
	if len(ctrs) != 1 || ctrs[0].Faults != 1 || ctrs[0].Quarantines != 1 {
		t.Fatalf("fault accounting: %+v", ctrs)
	}
}
