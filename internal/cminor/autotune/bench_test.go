package autotune_test

import (
	"testing"
	"time"

	cm "socrates/internal/cminor"
	"socrates/internal/cminor/autotune"
)

// BenchmarkAutotuned records, for every corpus kernel, the tuner's
// steady-state throughput next to the best and worst static variants
// of the same grid — the headline claim of the runtime layer: tuned ≈
// best-static (within the residual exploration tax), while a wrong
// static choice is measurably slower. `make bench` captures all three
// per kernel into BENCH_<n>.json.
func BenchmarkAutotuned(b *testing.B) {
	grid := autotune.DefaultGrid()
	for _, k := range cm.BenchKernels {
		prog, err := cm.Compile(cm.MustParse(k.File, k.Src), cm.WithMaxSteps(1<<62))
		if err != nil {
			b.Fatal(err)
		}
		// Rank the static variants with a quick pre-measurement (outside
		// any timed region): 1 warm-up + best-of-3 per grid arm.
		insts := make([]*cm.Instance, len(grid))
		costs := make([]time.Duration, len(grid))
		for i, spec := range grid {
			vp, err := prog.Variant(cm.WithBackend(spec.Backend),
				cm.WithOptLevel(spec.Opt), cm.WithPasses(spec.Passes))
			if err != nil {
				b.Fatal(err)
			}
			insts[i] = vp.NewInstance()
			args := k.Args()
			if _, err := insts[i].Call(k.Fn, args...); err != nil {
				b.Fatal(err)
			}
			best := time.Duration(1 << 62)
			for r := 0; r < 3; r++ {
				t0 := time.Now()
				if _, err := insts[i].Call(k.Fn, args...); err != nil {
					b.Fatal(err)
				}
				if d := time.Since(t0); d < best {
					best = d
				}
			}
			costs[i] = best
		}
		bestIdx, worstIdx := 0, 0
		for i := range costs {
			if costs[i] < costs[bestIdx] {
				bestIdx = i
			}
			if costs[i] > costs[worstIdx] {
				worstIdx = i
			}
		}

		runStatic := func(name string, inst *cm.Instance) {
			b.Run(k.Name+"/"+name, func(b *testing.B) {
				args := k.Args()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := inst.Call(k.Fn, args...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}

		b.Run(k.Name+"/tuned", func(b *testing.B) {
			// Steady-state settings: a thin exploration tax, a slow EWMA
			// (single scheduling spikes shouldn't move the estimate), and
			// a wide drift band — on a busy 1-CPU CI box, jitter-triggered
			// reopens would otherwise send whole measure rounds to the
			// slow arms and dominate the tuned-vs-best gap.
			tn, err := autotune.New(prog,
				autotune.WithMinSamples(5),
				autotune.WithEpsilon(0.002),
				autotune.WithEWMAAlpha(0.1),
				autotune.WithDriftFactor(4.0),
				autotune.WithSeed(1),
			)
			if err != nil {
				b.Fatal(err)
			}
			args := k.Args()
			// Converge before timing: the measure phase plus a little
			// exploit warm-up, so ns/op reflects the steady state.
			for i := 0; i < len(grid)*5+20; i++ {
				if _, err := tn.Call(k.Fn, args...); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tn.Call(k.Fn, args...); err != nil {
					b.Fatal(err)
				}
			}
		})
		runStatic("best-static", insts[bestIdx])
		runStatic("worst-static", insts[worstIdx])
	}
}
