package autotune

import "time"

// Clock abstracts time so the tuning loop never reads the wall clock
// directly: production uses the real clock, tests inject a fake and
// the whole decision loop — measurement, convergence, drift — runs
// deterministically.
type Clock interface {
	Now() time.Time
}

// wallClock is the production Clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Sampler executes one routed call and reports its observed cost. It
// is the tuner's measurement seam: the default implementation times
// call() with the tuner's Clock, while simulation tests substitute a
// synthetic cost model keyed on (function, variant, class) so
// convergence and drift behavior can be pinned exactly.
//
// Sample must invoke call exactly once; the error it returns is
// surfaced to the caller of AutoTuner.Call unchanged.
type Sampler interface {
	Sample(fn string, spec VariantSpec, class int, call func() error) (time.Duration, error)
}

// clockSampler is the production Sampler: cost = wall time of the call.
type clockSampler struct {
	clock Clock
}

func (s clockSampler) Sample(_ string, _ VariantSpec, _ int, call func() error) (time.Duration, error) {
	t0 := s.clock.Now()
	err := call()
	return s.clock.Now().Sub(t0), err
}

// splitmix64 is the tuner's tiny deterministic PRNG (epsilon-greedy
// exploration draws). Seeded explicitly, so a tuner's decision sequence
// is reproducible; all use is under the tuner mutex.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (s *splitmix64) float64() float64 { return float64(s.next()>>11) / (1 << 53) }

func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }
