package autotune

import (
	"sort"
	"sync/atomic"
)

// Lock-cheap metrics export. Snapshot walks every site and every arm
// under the full tuner mutex — exactly right for tests and occasional
// operator introspection, exactly wrong for a metrics scraper polling a
// busy tuner several times a second: each scrape would stall the
// routing hot path. The counter path here is the scrape-friendly
// alternative: every site keeps a small block of atomic counters that
// the routing path bumps while it already holds the mutex, and readers
// traverse them through a sync.Map without ever touching the tuner
// mutex at all. A scrape contends with nothing; a routed call never
// waits on a reader.

// siteCounters is the atomic counter block of one tuning site. Writers
// (the routing path) hold the tuner mutex anyway; the atomics exist so
// READERS need no lock.
type siteCounters struct {
	pulls       atomic.Int64
	faults      atomic.Int64
	degraded    atomic.Int64
	diverged    atomic.Int64
	quarantines atomic.Int64
}

// SiteCounters is the exported counter block of one (function,
// input-class) tuning site — the cumulative totals a metrics scraper
// wants, without the per-arm detail (for that, Snapshot).
type SiteCounters struct {
	Fn          string
	Class       int
	Pulls       int64 // routed calls at this site
	Faults      int64 // contained internal faults, summed over arms
	Degraded    int64 // calls served by trusted-fallback re-execution
	Diverged    int64 // audit-revealed wrong results
	Quarantines int64 // arm quarantine events at this site
}

// Counters reports every site's cumulative counters, sorted by function
// then class. Unlike Snapshot it never takes the tuner mutex: the site
// index is a sync.Map and each value is read with one atomic load, so
// concurrent scrapers cost the routing path nothing. Counters are
// monotone; a reader interleaving with live calls may observe totals
// mid-update relative to each other, but each individual counter is
// exact at its read instant.
func (t *AutoTuner) Counters() []SiteCounters {
	var out []SiteCounters
	t.counters.Range(func(k, v any) bool {
		key := k.(siteKey)
		c := v.(*siteCounters)
		out = append(out, SiteCounters{
			Fn:          key.fn,
			Class:       key.class,
			Pulls:       c.pulls.Load(),
			Faults:      c.faults.Load(),
			Degraded:    c.degraded.Load(),
			Diverged:    c.diverged.Load(),
			Quarantines: c.quarantines.Load(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Class < out[j].Class
	})
	return out
}
