package autotune

import (
	"sync"
	"testing"
	"time"

	cm "socrates/internal/cminor"
)

// TestCountersMatchSnapshot pins the counter export against the
// mutex-guarded Snapshot on a deterministic fault scenario: pulls,
// faults, degradations and quarantine events must agree exactly.
func TestCountersMatchSnapshot(t *testing.T) {
	inj := cm.NewScriptedInjector(cm.FaultRule{
		Backend: cm.BackendCompiled, Opt: cm.O2, Fn: "probe",
		Call: 2, Kind: cm.FaultPanic, Point: cm.FaultAtExit,
	})
	tn, err := New(simProgram(t),
		WithGrid(VariantSpec{Opt: cm.O2}),
		WithMinSamples(2),
		WithSampler(&simSampler{cost: flatCost(map[string]time.Duration{"O2": 50 * time.Microsecond})}),
		WithFaultInjector(inj),
		WithQuarantineBackoff(time.Hour, time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := tn.Call("probe", simArgs(16)...); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	ctrs := tn.Counters()
	if len(ctrs) != 1 {
		t.Fatalf("want 1 site, got %d: %+v", len(ctrs), ctrs)
	}
	c := ctrs[0]
	if c.Fn != "probe" {
		t.Fatalf("site fn = %q", c.Fn)
	}
	snaps := tn.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot site, got %d", len(snaps))
	}
	s := snaps[0]
	var faults, degraded, diverged int64
	var quarantines int64
	for _, a := range s.Arms {
		faults += a.Faults
		degraded += a.Degraded
		diverged += a.Diverged
		quarantines += int64(a.Quarantines)
	}
	if c.Pulls != s.Pulls || c.Faults != faults || c.Degraded != degraded ||
		c.Diverged != diverged || c.Quarantines != quarantines {
		t.Fatalf("counters %+v disagree with snapshot (pulls %d faults %d degraded %d diverged %d quarantines %d)",
			c, s.Pulls, faults, degraded, diverged, quarantines)
	}
	if c.Faults != 1 || c.Degraded != 1 || c.Quarantines != 1 {
		t.Fatalf("scenario accounting off: %+v", c)
	}
}

// TestCountersConcurrentReaders hammers the lock-free Counters path
// from scraper goroutines while writers route calls — the contract is
// no data race (CI runs this under -race), per-reader monotone totals,
// and final agreement with the routed call count.
func TestCountersConcurrentReaders(t *testing.T) {
	// The default clock sampler: synthetic cost models (simSampler) are
	// single-threaded by design, and this test is about the counter
	// read path, not convergence.
	tn, err := New(simProgram(t),
		WithGrid(VariantSpec{Opt: cm.O1}, VariantSpec{Opt: cm.O2}),
		WithMinSamples(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 6
		readers = 4
		calls   = 200
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := map[string]int64{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, c := range tn.Counters() {
					if prev := last[c.Fn]; c.Pulls < prev {
						t.Errorf("pulls went backwards: %d -> %d", prev, c.Pulls)
						return
					} else {
						last[c.Fn] = c.Pulls
					}
				}
			}
		}()
	}
	var cw sync.WaitGroup
	for w := 0; w < writers; w++ {
		cw.Add(1)
		go func() {
			defer cw.Done()
			for i := 0; i < calls; i++ {
				if _, err := tn.Call("probe", simArgs(16)...); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	cw.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	ctrs := tn.Counters()
	if len(ctrs) != 1 || ctrs[0].Pulls != writers*calls {
		t.Fatalf("final counters %+v, want one site with %d pulls", ctrs, writers*calls)
	}
}
