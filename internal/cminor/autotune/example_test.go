package autotune_test

import (
	"fmt"
	"time"

	cm "socrates/internal/cminor"
	"socrates/internal/cminor/autotune"
)

// exampleSampler is a deterministic stand-in for the wall clock so the
// example's output is stable: O2 "measures" fastest for this kernel.
type exampleSampler struct{}

func (exampleSampler) Sample(_ string, spec autotune.VariantSpec, _ int, call func() error) (time.Duration, error) {
	err := call()
	cost := map[string]time.Duration{
		"O0":       400 * time.Microsecond,
		"O1":       250 * time.Microsecond,
		"O2":       90 * time.Microsecond,
		"O3":       110 * time.Microsecond,
		"bytecode": 130 * time.Microsecond,
	}[spec.String()]
	return cost, err
}

// ExampleAutoTuner tunes a dot-product kernel over the default grid
// (O0–O3 plus the flat-bytecode backend):
// after the measure phase (grid × min-samples calls) the tuner routes
// to whichever variant measured cheapest for this input class.
func ExampleAutoTuner() {
	src := `
double dot(int n, double a[n], double b[n]) {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < n; i++) {
    s = s + a[i] * b[i];
  }
  return s;
}
`
	prog, err := cm.Compile(cm.MustParse("dot.c", src))
	if err != nil {
		panic(err)
	}
	// In production, drop WithSampler: calls are timed with the real
	// clock. The injected sampler keeps this example deterministic.
	tn, err := autotune.New(prog,
		autotune.WithMinSamples(2),
		autotune.WithEpsilon(0), // pure exploitation after convergence
		autotune.WithSampler(exampleSampler{}),
	)
	if err != nil {
		panic(err)
	}

	mk := func() (*cm.Array, *cm.Array) {
		a, b := cm.NewArray(256), cm.NewArray(256)
		for i := range a.Data {
			a.Data[i], b.Data[i] = float64(i), 2.0
		}
		return a, b
	}
	var last cm.Value
	for i := 0; i < 20; i++ {
		a, b := mk()
		v, err := tn.Call("dot", cm.IntV(256), a, b)
		if err != nil {
			panic(err)
		}
		last = v
	}

	a, _ := mk()
	class := autotune.SizeClass([]any{cm.IntV(256), a, a})
	best, _ := tn.Best("dot", class)
	fmt.Printf("dot = %v\n", last.F)
	fmt.Printf("winner for class %d: %v\n", class, best)
	// Output:
	// dot = 65280
	// winner for class 10: O2
}
