package autotune

import (
	"math/bits"

	cm "socrates/internal/cminor"
)

// VariantSpec names one point of the knob space: an execution backend,
// an optimization level, and — at O3 — the subset of O3 passes enabled
// (cminor.PassMask). The zero value is the compiled O0 variant.
type VariantSpec struct {
	Backend cm.Backend
	Opt     cm.OptLevel
	Passes  cm.PassMask
}

// String renders the spec the way benchmark output names variants:
// "walker", "bytecode", "O0"…"O3", or "O3[inline+bce]" for a partial
// pass mask. Non-compiled backends are named by the backend itself —
// a Snapshot arm label must say which machine ran, not just how hard
// the frontend optimized.
func (v VariantSpec) String() string {
	switch v.Backend {
	case cm.BackendWalker:
		return "walker"
	case cm.BackendBytecode:
		return "bytecode"
	}
	if v.Opt == cm.O3 && v.Passes != cm.AllPasses {
		return "O3[" + v.Passes.String() + "]"
	}
	return v.Opt.String()
}

// options expands the spec into the engine options that materialize it.
func (v VariantSpec) options() []cm.Option {
	return []cm.Option{
		cm.WithBackend(v.Backend),
		cm.WithOptLevel(v.Opt),
		cm.WithPasses(v.Passes),
	}
}

// DefaultGrid is the opt-level axis of the compiled backend plus the
// flat-bytecode backend at full optimization — the grid
// BENCH_<n>.json records static baselines for.
func DefaultGrid() []VariantSpec {
	return []VariantSpec{
		{Opt: cm.O0},
		{Opt: cm.O1},
		{Opt: cm.O2},
		{Opt: cm.O3, Passes: cm.AllPasses},
		{Backend: cm.BackendBytecode, Opt: cm.O3, Passes: cm.AllPasses},
	}
}

// FineGrid refines the O3 point into every pass subset: O0–O2 plus the
// seven non-empty (inline, bce, unroll) combinations, plus the
// bytecode backend — eleven arms.
// O3 with an empty mask is omitted: it behaves exactly like O2, and a
// duplicate arm would only split the winner's samples. Use FineGrid
// when the per-pass interactions matter more than convergence speed.
func FineGrid() []VariantSpec {
	g := []VariantSpec{{Opt: cm.O0}, {Opt: cm.O1}, {Opt: cm.O2}}
	for m := cm.PassMask(1); m <= cm.AllPasses; m++ {
		g = append(g, VariantSpec{Opt: cm.O3, Passes: m})
	}
	return append(g, VariantSpec{Backend: cm.BackendBytecode, Opt: cm.O3, Passes: cm.AllPasses})
}

// WalkerGrid appends the tree-walking oracle to a grid — useful for
// differential deployments where one arm must be the reference
// semantics.
func WalkerGrid(g []VariantSpec) []VariantSpec {
	return append(append([]VariantSpec{}, g...), VariantSpec{Backend: cm.BackendWalker})
}

// SizeClass is the default input classifier: arguments are bucketed by
// the total number of array elements they carry, on a log2 scale, so
// calls whose working sets differ by ~2× or more tune independently.
// Scalar-only calls land in class 0.
func SizeClass(args []any) int {
	total := uint(0)
	for _, a := range args {
		if arr, ok := a.(*cm.Array); ok && arr != nil {
			total += uint(len(arr.Data))
		}
	}
	return bits.Len(total)
}
