// Package persist is an append-only, versioned, load-validated record
// log — the on-disk half of the warm-start story. The autotuner learns
// a table per (function, input-class) site at run time; everything it
// learns dies with the process unless it is written somewhere a
// restarted server can trust. This package is that somewhere, shaped
// after a build system's build log: a fixed header that names the
// format version and a caller-supplied content key, followed by
// checksummed keyed records, appended — never rewritten in place — and
// compacted to the live set when dead (superseded) records outnumber
// it.
//
// Trust is the whole design. A log is only usable when its header key
// matches the caller's — the key is a content hash of whatever the
// records describe (for the tuner: program source, variant grid, host
// fingerprint), so an edited kernel, a changed grid, or a foreign
// machine invalidates the file as a unit. Within a valid header, every
// record carries its own checksum and declared length; a truncated
// tail, a flipped byte, or a version skew is detected at load and
// reported as a typed error — the caller falls back to a cold start
// instead of routing traffic on poisoned state. Detection is strict by
// design: these logs are small (one record per tuning site), so
// re-learning is cheap and a partially-trusted log is worth less than
// none.
//
// The format, little-endian throughout:
//
//	header:  magic "SOCTUNE\n" | version u32 | reserved u32 | key u64
//	record:  keyLen u32 | payloadLen u32 | key | payload | fnv64a(key ∥ payload)
//
// Records are keyed: a later record with the same key supersedes an
// earlier one (Load returns only the latest payload per key), which is
// what lets writers checkpoint by blind append. Append self-compacts —
// rewrites the file to exactly the live set, via temp file + rename —
// once dead records outnumber live ones, so the file is always O(live
// keys) within a factor of two.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
)

// logMagic opens every log file. The trailing newline means a log
// concatenated into a text tool immediately looks binary, like ninja's
// build-log signature line.
const logMagic = "SOCTUNE\n"

// logVersion is the current format version. Any other version in a
// header is a skew: the reader does not attempt cross-version decoding
// — the records are cheap to re-learn, so the policy is reject and
// re-earn, never guess.
const logVersion = 1

// headerSize is the fixed byte length of the header.
const headerSize = len(logMagic) + 4 + 4 + 8

// maxRecordLen caps a single record's key or payload length. A
// corrupted length field must not turn into a multi-gigabyte
// allocation before the checksum ever gets a chance to object.
const maxRecordLen = 1 << 20

// compactMinRecords is the file size (in records) below which Append
// never bothers compacting: tiny logs are not worth a rewrite.
const compactMinRecords = 8

// Validation failures Load reports; match with errors.Is. All of them
// mean the same thing to a caller: the log is not trustworthy, start
// cold. The distinctions exist for tests and diagnostics.
var (
	// ErrBadHeader: the file is shorter than a header or does not open
	// with the magic — not a log at all, or one truncated to nothing.
	ErrBadHeader = errors.New("persist: bad log header")
	// ErrVersionSkew: the header names a format version this reader
	// does not speak (an old binary reading a new log, or vice versa).
	ErrVersionSkew = errors.New("persist: log version skew")
	// ErrKeyMismatch: the header's content key is not the caller's —
	// the log describes a different program, grid, or host.
	ErrKeyMismatch = errors.New("persist: log content-key mismatch")
	// ErrCorrupt: a record's declared length overruns the file
	// (truncated tail) or its checksum does not match (bit rot, torn
	// write).
	ErrCorrupt = errors.New("persist: corrupt log record")
)

// Record is one keyed payload in the log. Key identifies what the
// record describes (later records with the same key supersede earlier
// ones); Payload is opaque to this package.
type Record struct {
	Key     string
	Payload []byte
}

// sum64 is the record checksum: FNV-64a over key then payload.
func sum64(key string, payload []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write(payload)
	return h.Sum64()
}

// Load reads and validates the log at path against the caller's
// content key. On success it returns the live records — the latest
// payload per key, ordered by each key's first appearance — and the
// total record count on disk (live + dead), which Append uses as its
// compaction signal and tests use to pin the O(live) bound.
//
// A missing file reports fs.ErrNotExist (a clean cold start, not
// damage); any validation failure reports one of the typed errors
// above. In every error case the returned records are nil: a log that
// fails validation contributes nothing.
func Load(path string, key uint64) (live []Record, total int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if err := checkHeader(data, key); err != nil {
		return nil, 0, err
	}
	byKey := map[string]int{} // key -> index in live
	off := headerSize
	for off < len(data) {
		rec, n, err := readRecord(data[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("%w (offset %d)", err, off)
		}
		off += n
		total++
		if i, seen := byKey[rec.Key]; seen {
			live[i] = rec // superseded: keep first-appearance order
			continue
		}
		byKey[rec.Key] = len(live)
		live = append(live, rec)
	}
	return live, total, nil
}

// checkHeader validates the fixed header against the format and the
// caller's content key.
func checkHeader(data []byte, key uint64) error {
	if len(data) < headerSize || string(data[:len(logMagic)]) != logMagic {
		return ErrBadHeader
	}
	if v := binary.LittleEndian.Uint32(data[len(logMagic):]); v != logVersion {
		return fmt.Errorf("%w: log v%d, reader v%d", ErrVersionSkew, v, logVersion)
	}
	if k := binary.LittleEndian.Uint64(data[len(logMagic)+8:]); k != key {
		return fmt.Errorf("%w: log %016x, caller %016x", ErrKeyMismatch, k, key)
	}
	return nil
}

// readRecord decodes one record from the front of data, returning it
// and the bytes consumed. Any shortfall or checksum mismatch is
// ErrCorrupt — including a clean-looking prefix of a record that a
// crash mid-append left behind.
func readRecord(data []byte) (Record, int, error) {
	if len(data) < 8 {
		return Record{}, 0, ErrCorrupt
	}
	kn := int(binary.LittleEndian.Uint32(data))
	pn := int(binary.LittleEndian.Uint32(data[4:]))
	if kn > maxRecordLen || pn > maxRecordLen {
		return Record{}, 0, ErrCorrupt
	}
	n := 8 + kn + pn + 8
	if len(data) < n {
		return Record{}, 0, ErrCorrupt
	}
	key := string(data[8 : 8+kn])
	payload := append([]byte(nil), data[8+kn:8+kn+pn]...)
	if sum := binary.LittleEndian.Uint64(data[8+kn+pn:]); sum != sum64(key, payload) {
		return Record{}, 0, ErrCorrupt
	}
	return Record{Key: key, Payload: payload}, n, nil
}

// appendRecord serializes rec onto buf.
func appendRecord(buf []byte, rec Record) []byte {
	var lens [8]byte
	binary.LittleEndian.PutUint32(lens[:], uint32(len(rec.Key)))
	binary.LittleEndian.PutUint32(lens[4:], uint32(len(rec.Payload)))
	buf = append(buf, lens[:]...)
	buf = append(buf, rec.Key...)
	buf = append(buf, rec.Payload...)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], sum64(rec.Key, rec.Payload))
	return append(buf, sum[:]...)
}

// header serializes the fixed header for key.
func header(key uint64) []byte {
	buf := make([]byte, 0, headerSize)
	buf = append(buf, logMagic...)
	var u [8]byte
	binary.LittleEndian.PutUint32(u[:4], logVersion)
	buf = append(buf, u[:]...) // version + reserved
	binary.LittleEndian.PutUint64(u[:], key)
	return append(buf, u[:]...)
}

// Append checkpoints recs into the log at path under the caller's
// content key, creating the file (and its directory) if needed. The
// normal path is a blind append — a checkpoint costs one write of the
// changed records, never a rewrite of history. Two cases rewrite the
// whole file instead, via temp file + rename so a crash leaves either
// the old log or the new one, never a torn hybrid:
//
//   - the existing file fails validation (wrong key, version skew,
//     corruption): its records are untrusted and dropped, and the file
//     is reset to a fresh header plus recs — a bad log heals on the
//     next checkpoint instead of wedging persistence forever;
//   - compaction: once the file holds more dead (superseded) records
//     than live ones — and at least compactMinRecords in total — it is
//     rewritten to exactly the live set, so repeated checkpoints bound
//     the file at O(live keys).
func Append(path string, key uint64, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	live, total, err := Load(path, key)
	reset := false
	switch {
	case err == nil:
	case errors.Is(err, os.ErrNotExist):
		// No log yet: the rewrite path below creates it.
		reset = true
	default:
		// Invalid log: drop its records and heal with a fresh one.
		reset = true
	}

	// Merge recs over the live set (latest per key, stable order) to
	// size the compaction decision — and to have the live set at hand
	// if a rewrite is due.
	byKey := map[string]int{}
	for i, r := range live {
		byKey[r.Key] = i
	}
	merged := append([]Record{}, live...)
	for _, r := range recs {
		if i, seen := byKey[r.Key]; seen {
			merged[i] = r
			continue
		}
		byKey[r.Key] = len(merged)
		merged = append(merged, r)
	}

	newTotal := total + len(recs)
	if dead := newTotal - len(merged); reset ||
		(newTotal >= compactMinRecords && dead > len(merged)) {
		return rewrite(path, key, merged)
	}

	buf := make([]byte, 0, 256)
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rewrite replaces the log at path with header + recs atomically.
func rewrite(path string, key uint64, recs []Record) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf := header(key)
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Corrupt is a test hook: it flips one byte at off in the file at
// path, producing exactly the damage Load must detect. Exported so
// higher layers' cold-fallback tests do not re-derive the format.
func Corrupt(path string, off int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 || off >= len(data) {
		return io.ErrUnexpectedEOF
	}
	data[off] ^= 0xff
	return os.WriteFile(path, data, 0o644)
}
