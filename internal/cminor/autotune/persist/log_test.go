package persist

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "tune.log")
}

func mustAppend(t *testing.T, path string, key uint64, recs ...Record) {
	t.Helper()
	if err := Append(path, key, recs); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTrip pins the basic contract: records written are read back
// verbatim, in first-appearance order, under the same content key.
func TestRoundTrip(t *testing.T) {
	path := logPath(t)
	const key = 0xdeadbeefcafe
	recs := []Record{
		{Key: "probe\x004", Payload: []byte("alpha")},
		{Key: "probe\x0011", Payload: []byte("beta")},
		{Key: "", Payload: nil}, // empty key and payload are legal
	}
	mustAppend(t, path, key, recs...)
	live, total, err := Load(path, key)
	if err != nil {
		t.Fatal(err)
	}
	if total != len(recs) || len(live) != len(recs) {
		t.Fatalf("total %d live %d, want %d/%d", total, len(live), len(recs), len(recs))
	}
	for i := range recs {
		if live[i].Key != recs[i].Key || !bytes.Equal(live[i].Payload, recs[i].Payload) {
			t.Fatalf("record %d: got %+v, want %+v", i, live[i], recs[i])
		}
	}
}

// TestSupersede pins keyed-record semantics: a later record with the
// same key replaces the earlier payload in Load's live set, at the
// key's first-appearance position, while the dead record still counts
// toward total.
func TestSupersede(t *testing.T) {
	path := logPath(t)
	const key = 7
	mustAppend(t, path, key,
		Record{Key: "a", Payload: []byte("v1")},
		Record{Key: "b", Payload: []byte("w1")})
	mustAppend(t, path, key, Record{Key: "a", Payload: []byte("v2")})
	live, total, err := Load(path, key)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("total %d, want 3 (two live + one dead)", total)
	}
	if len(live) != 2 || live[0].Key != "a" || string(live[0].Payload) != "v2" ||
		live[1].Key != "b" || string(live[1].Payload) != "w1" {
		t.Fatalf("live set: %+v", live)
	}
}

// TestLoadMissing pins the cold-start signal: a path that was never
// written reports fs.ErrNotExist, not a validation error.
func TestLoadMissing(t *testing.T) {
	_, _, err := Load(logPath(t), 1)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want fs.ErrNotExist, got %v", err)
	}
}

// TestLoadRejectsBadLogs drives every validation failure class and
// asserts each maps to its typed error with no records returned: the
// caller's contract is "any error means start cold".
func TestLoadRejectsBadLogs(t *testing.T) {
	const key = 42
	fresh := func(t *testing.T) string {
		path := logPath(t)
		mustAppend(t, path, key,
			Record{Key: "a", Payload: []byte("payload-a")},
			Record{Key: "b", Payload: []byte("payload-b")})
		return path
	}

	t.Run("not a log", func(t *testing.T) {
		path := logPath(t)
		if err := os.WriteFile(path, []byte("just some text, definitely no magic"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(path, key); !errors.Is(err, ErrBadHeader) {
			t.Fatalf("want ErrBadHeader, got %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		path := fresh(t)
		if err := os.Truncate(path, int64(headerSize-3)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(path, key); !errors.Is(err, ErrBadHeader) {
			t.Fatalf("want ErrBadHeader, got %v", err)
		}
	})
	t.Run("version skew", func(t *testing.T) {
		path := fresh(t)
		// The version u32 sits right after the magic.
		if err := Corrupt(path, len(logMagic)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(path, key); !errors.Is(err, ErrVersionSkew) {
			t.Fatalf("want ErrVersionSkew, got %v", err)
		}
	})
	t.Run("key mismatch", func(t *testing.T) {
		path := fresh(t)
		if _, _, err := Load(path, key+1); !errors.Is(err, ErrKeyMismatch) {
			t.Fatalf("want ErrKeyMismatch, got %v", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		path := fresh(t)
		// Into the first record's payload: past header and the 8-byte
		// length prefix and the 1-byte key.
		if err := Corrupt(path, headerSize+8+1+2); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(path, key); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("truncated tail", func(t *testing.T) {
		path := fresh(t)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Chop mid-way through the last record's checksum: the torn
		// write a crash mid-append leaves behind.
		if err := os.Truncate(path, info.Size()-5); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(path, key); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("oversized declared length", func(t *testing.T) {
		path := fresh(t)
		// Flip the high byte of the first record's keyLen u32: the
		// declared length explodes past maxRecordLen and must be
		// rejected before any allocation is attempted.
		if err := Corrupt(path, headerSize+3); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(path, key); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
}

// TestAppendHealsInvalidLog pins self-healing: an Append over a log
// that fails validation (here: a corrupted byte) rewrites the file to a
// fresh header plus the new records — persistence recovers on the next
// checkpoint instead of wedging.
func TestAppendHealsInvalidLog(t *testing.T) {
	path := logPath(t)
	const key = 9
	mustAppend(t, path, key, Record{Key: "a", Payload: []byte("old")})
	if err := Corrupt(path, headerSize+8+1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path, key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("setup: log should be corrupt, got %v", err)
	}
	mustAppend(t, path, key, Record{Key: "b", Payload: []byte("new")})
	live, total, err := Load(path, key)
	if err != nil {
		t.Fatalf("healed log still invalid: %v", err)
	}
	// The untrusted pre-corruption record is gone; only the healing
	// checkpoint's record survives.
	if total != 1 || len(live) != 1 || live[0].Key != "b" {
		t.Fatalf("healed log holds %d/%d records: %+v", len(live), total, live)
	}
}

// TestCompaction pins the O(live) bound: checkpointing the same two
// keys over and over must trigger a rewrite once dead records outnumber
// live ones, keeping the on-disk record count bounded by a constant
// factor of the live set — never growing with checkpoint count.
func TestCompaction(t *testing.T) {
	path := logPath(t)
	const key = 123
	recs := []Record{
		{Key: "a", Payload: []byte("aaaa")},
		{Key: "b", Payload: []byte("bbbb")},
	}
	maxTotal := 0
	for i := 0; i < 20; i++ {
		mustAppend(t, path, key, recs...)
		live, total, err := Load(path, key)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		if len(live) != 2 {
			t.Fatalf("checkpoint %d: %d live records, want 2", i, len(live))
		}
		if total > maxTotal {
			maxTotal = total
		}
	}
	// dead > live triggers the rewrite, so total can touch
	// 2*live + one checkpoint's worth before snapping back to live.
	if limit := 2*len(recs) + len(recs); maxTotal > limit {
		t.Fatalf("log grew to %d records over 20 checkpoints; the compaction bound is %d", maxTotal, limit)
	}
	// And compaction actually happened: the final file is not 40 records.
	if _, total, _ := Load(path, key); total >= 20*len(recs) {
		t.Fatalf("final total %d: no compaction ever ran", total)
	}
}

// TestTinyLogsSkipCompaction pins the churn guard: below
// compactMinRecords the file is never rewritten, so single-site logs
// just append.
func TestTinyLogsSkipCompaction(t *testing.T) {
	path := logPath(t)
	const key = 5
	for i := 0; i < 3; i++ {
		mustAppend(t, path, key, Record{Key: "only", Payload: []byte{byte(i)}})
	}
	_, total, err := Load(path, key)
	if err != nil {
		t.Fatal(err)
	}
	// 3 records, 2 dead > 1 live, but 3 < compactMinRecords: no rewrite.
	if total != 3 {
		t.Fatalf("tiny log total %d, want 3 (compaction must not trigger below %d records)",
			total, compactMinRecords)
	}
}
