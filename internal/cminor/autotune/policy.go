package autotune

import "math"

// Policy selects how a converged site balances exploiting the winner
// against re-sampling the other arms.
type Policy uint8

const (
	// EpsilonGreedy routes a small fixed fraction of exploit-phase
	// calls (WithEpsilon) to a uniformly random non-winning arm — the
	// default: cheap, predictable residual exploration.
	EpsilonGreedy Policy = iota
	// UCB1 picks the arm minimizing EWMA minus a confidence bonus that
	// shrinks as an arm accumulates pulls (the classic bandit upper
	// confidence bound, adapted to cost minimization). Fully
	// deterministic: no random draws at all.
	UCB1
)

// String names the policy.
func (p Policy) String() string {
	if p == UCB1 {
		return "ucb1"
	}
	return "epsilon-greedy"
}

// choose picks the arm for the next call at st and charges the pull.
// Caller holds the tuner mutex; rng is the tuner's seeded PRNG.
func (st *siteState) choose(cfg *config, rng *splitmix64) int {
	if st.nquar > 0 {
		// Expired quarantines return to service before selection; the
		// clock is only read when a quarantine exists, so the fault-free
		// fast path stays clock-free.
		st.liftExpired(cfg, cfg.clock.Now())
	}
	st.pulls++
	st.ctr.pulls.Add(1)
	if st.nquar == len(st.arms) {
		// Every arm is quarantined: there is no trusted variant left, so
		// route to the one whose backoff expires soonest — it is the next
		// to be retried anyway, and the call still runs under containment.
		idx := st.soonestLift()
		st.arms[idx].pulls++
		return idx
	}
	if st.phase == phaseMeasure {
		idx := st.nextMeasured(cfg)
		st.arms[idx].pulls++
		return idx
	}
	var idx int
	switch cfg.policy {
	case UCB1:
		idx = st.chooseUCB(cfg)
	default:
		idx = st.chooseEpsilon(cfg, rng)
	}
	if idx != st.best {
		st.explore++
	}
	st.arms[idx].pulls++
	return idx
}

// nextMeasured picks the measure-phase arm: each arm is pulled its
// whole quota in one burst before the cursor moves on. Bursts matter:
// switching variants is itself expensive (cold closure graph,
// predictor/icache thrash), so an arm's first sample after a switch
// runs high — sampling arm-by-arm means the later samples of the
// burst are switch-free and the min-based estimate (armStats.update)
// lands on the true cost. With every quota met but the phase not yet
// advanced (in-flight concurrent measurements), it falls back to the
// best estimate so far.
func (st *siteState) nextMeasured(cfg *config) int {
	n := len(st.arms)
	for k := 0; k < n; k++ {
		idx := (st.cursor + k) % n
		if st.arms[idx].quarantined {
			continue // out of service until its backoff lifts
		}
		if st.arms[idx].pulls < int64(cfg.minSamples) {
			st.cursor = idx // stay on this arm until its quota is met
			return idx
		}
	}
	return st.argmin()
}

// chooseEpsilon is exploit-phase epsilon-greedy: probability epsilon of
// picking a uniformly random non-winning arm still in service, else the
// winner. With no quarantines the index mapping (and the PRNG stream)
// is identical to the historical two-draw scheme, so seeded decision
// sequences stay reproducible.
func (st *siteState) chooseEpsilon(cfg *config, rng *splitmix64) int {
	eligible := 0
	for i := range st.arms {
		if i != st.best && !st.arms[i].quarantined {
			eligible++
		}
	}
	if eligible > 0 && rng.float64() < cfg.epsilon {
		k := rng.intn(eligible)
		for i := range st.arms {
			if i == st.best || st.arms[i].quarantined {
				continue
			}
			if k == 0 {
				return i
			}
			k--
		}
	}
	return st.best
}

// chooseUCB is exploit-phase UCB1 for costs: every arm's EWMA is
// discounted by a confidence width proportional to the winner's scale,
// so rarely-pulled arms are periodically re-tried without any random
// draw. Unsampled arms (every measurement faulted) are never picked
// here — they had their chance during the measure phase.
func (st *siteState) chooseUCB(cfg *config) int {
	scale := st.arms[st.best].ewma
	lnN := math.Log(float64(st.pulls))
	best, bestScore, found := st.best, math.Inf(1), false
	for i := range st.arms {
		a := &st.arms[i]
		if !a.sampled || a.quarantined {
			continue
		}
		width := cfg.ucbC * scale * math.Sqrt(2*lnN/float64(a.pulls+1))
		if score := a.ewma - width; !found || score < bestScore {
			best, bestScore, found = i, score, true
		}
	}
	return best
}
