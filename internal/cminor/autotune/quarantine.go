package autotune

import (
	"time"

	cm "socrates/internal/cminor"
)

// Variant quarantine: the tuner's half of the fault-containment layer
// (cminor/resilience.go). The engine contains internal panics and —
// with fallback enabled — degrades a faulting call onto the trusted
// reference tier; the tuner reads those taps and takes the routing
// decision: an arm whose call ended in an internal fault, or whose
// audited re-execution revealed a value divergence, is quarantined at
// that (function, input-class) site — excluded from the measure and
// exploit phases — with exponential clock-based backoff, so a flaky arm
// can earn its way back. A lifted arm re-enters through a fresh measure
// burst (its old estimates are discarded with its trust), so a clean
// arm re-wins on merit.

// callOutcome classifies one routed call for the site's phase machine.
type callOutcome struct {
	// ok means cost is a valid successful measurement of the arm's own
	// backend (not a faulted, degraded, or audited call).
	ok bool
	// fault: the call hit a contained internal fault on this arm
	// (whether or not fallback then served the caller).
	fault bool
	// degraded: the caller was served by trusted-fallback re-execution.
	degraded bool
	// diverged: an audit re-execution revealed a wrong result — a silent
	// miscompile containment alone cannot see.
	diverged bool
}

// WithFaultInjector arms every variant the tuner materializes with the
// engine fault injector (cminor.WithFaultInjector) — the deterministic
// seam the quarantine simulations drive the detect → contain →
// rollback → fallback → quarantine → re-entry pipeline through. The
// trusted reference tier stays injector-free.
func WithFaultInjector(inj cm.FaultInjector) Option {
	return func(c *config) { c.inject = inj }
}

// WithFallback toggles trusted-fallback re-execution
// (cminor.WithFallback) on the tuner's variants. Default true: the
// tuner exists to route traffic onto aggressive variants, so a variant
// that faults mid-call must degrade onto the reference tier — the
// caller sees a correct result, the tuner sees the quarantine signal.
// Disable it only for kernels whose state exceeds the snapshot bound
// anyway, where it buys nothing.
func WithFallback(on bool) Option {
	return func(c *config) { c.fallback = on }
}

// WithAuditEvery routes every nth call of each site through
// cminor.CallAudited: the call re-executes on the trusted tier from the
// same pre-call state and the outcomes are compared bit-exactly, so a
// silently wrong arm is caught and quarantined even though it never
// panics. n = 0 (the default) disables auditing. Audited calls are
// excluded from cost estimates — their cost includes the reference
// re-execution.
func WithAuditEvery(n int64) Option {
	return func(c *config) { c.auditEvery = n }
}

// WithQuarantineBackoff sets the exponential backoff window of a
// quarantined arm: the first quarantine at a site lasts base, each
// subsequent one doubles, capped at max. Backoff is measured on the
// tuner's injected Clock, so simulations drive the full
// quarantine→lift→re-entry cycle with a fake clock.
func WithQuarantineBackoff(base, max time.Duration) Option {
	return func(c *config) { c.backoffBase, c.backoffMax = base, max }
}

// backoff computes the quarantine window after the arm's nth
// quarantine (1-based): base·2^(n-1), capped at max.
func (c *config) backoff(n int) time.Duration {
	shift := n - 1
	if shift > 30 {
		shift = 30 // past the cap regardless; avoid overflow
	}
	d := c.backoffBase << shift
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	return d
}

// quarantine pulls arm idx out of routing at this site. Caller holds
// the tuner mutex.
func (st *siteState) quarantine(cfg *config, idx int) {
	a := &st.arms[idx]
	if a.quarantined {
		return
	}
	a.quarantined = true
	a.quarantines++
	st.ctr.quarantines.Add(1)
	a.quarantineUntil = cfg.clock.Now().Add(cfg.backoff(a.quarantines))
	st.nquar++
	// A quarantined winner abdicates immediately: re-crown the best
	// remaining trusted arm when one exists (when none does, choose()
	// routes by soonest lift until a quarantine expires).
	if st.phase == phaseExploit && idx == st.best {
		if nb := st.argmin(); st.arms[nb].sampled && !st.arms[nb].quarantined {
			st.best = nb
			st.baseline = st.arms[nb].ewma
		}
	}
}

// liftExpired returns expired quarantines to service: the arm's cost
// estimates are discarded with its distrust and the site drops back to
// the measure phase, so the returning arm is burst-re-measured against
// the incumbents' retained estimates and can re-win on merit. Caller
// holds the tuner mutex.
func (st *siteState) liftExpired(cfg *config, now time.Time) {
	for i := range st.arms {
		a := &st.arms[i]
		if !a.quarantined || a.quarantineUntil.After(now) {
			continue
		}
		a.quarantined = false
		st.nquar--
		a.resetEstimate()
		if st.phase == phaseExploit {
			st.phase = phaseMeasure
			st.cursor = i
		}
	}
}

// soonestLift returns the quarantined arm whose backoff expires first —
// the routing of last resort when every arm at a site is quarantined.
func (st *siteState) soonestLift() int {
	best := 0
	for i := 1; i < len(st.arms); i++ {
		if st.arms[i].quarantineUntil.Before(st.arms[best].quarantineUntil) {
			best = i
		}
	}
	return best
}
