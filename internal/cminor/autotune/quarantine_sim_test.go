package autotune

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	cm "socrates/internal/cminor"
)

// Deterministic quarantine simulations: a scripted fault injector
// sabotages chosen arms at chosen call counts, a fake clock drives the
// backoff windows, and the synthetic sampler keeps costs exact — so the
// whole detect → contain → rollback → fallback → quarantine → re-entry
// lifecycle is asserted call by call, with zero wall-clock dependence.

func eqValue(a, b cm.Value) bool {
	return a.IsInt == b.IsInt && a.I == b.I &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

// probeOracle returns the reference result of probe over simArgs(16).
func probeOracle(t testing.TB) cm.Value {
	t.Helper()
	v, err := simProgram(t).NewInstance().Call("probe", simArgs(16)...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// chaosGrid is the three-arm knob space the lifecycle tests route over:
// the trusted baseline, the optimized closure tier, and the flat
// bytecode machine that will be sabotaged.
func chaosGrid() []VariantSpec {
	return []VariantSpec{
		{Opt: cm.O0},
		{Opt: cm.O3, Passes: cm.AllPasses},
		{Backend: cm.BackendBytecode, Opt: cm.O3, Passes: cm.AllPasses},
	}
}

var chaosCost = map[string]time.Duration{
	"O0":       400 * time.Microsecond,
	"O3":       100 * time.Microsecond,
	"bytecode": 50 * time.Microsecond,
}

// runQuarantineLifecycle drives the acceptance scenario and returns the
// final snapshot (for the determinism assertion): the cheapest arm
// (bytecode) wins, an injected panic knocks it out mid-exploit, routing
// excludes it while the caller keeps getting correct answers, and after
// the backoff expires on the fake clock the arm re-measures and re-wins.
func runQuarantineLifecycle(t *testing.T) []SiteReport {
	t.Helper()
	want := probeOracle(t)
	inj := cm.NewScriptedInjector(cm.FaultRule{
		Backend: cm.BackendBytecode, AnyOpt: true, Fn: "probe", Call: 6,
		Kind: cm.FaultPanic, Point: cm.FaultAtExit,
	})
	clk := &fakeClock{t: time.Unix(0, 0)}
	tn, err := New(simProgram(t),
		WithGrid(chaosGrid()...),
		WithSampler(&simSampler{cost: flatCost(chaosCost)}),
		WithMinSamples(3),
		WithEpsilon(0),
		WithSeed(11),
		WithClock(clk),
		WithFaultInjector(inj),
		WithQuarantineBackoff(100*time.Millisecond, 10*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	args := simArgs(16)
	class := SizeClass(args)
	call := func(i int) {
		t.Helper()
		v, err := tn.Call("probe", args...)
		if err != nil {
			t.Fatalf("call %d: %v (a contained fault must never surface)", i, err)
		}
		if !eqValue(want, v) {
			t.Fatalf("call %d: value %+v, want %+v", i, v, want)
		}
	}

	// Phase A — measure (3 arms × 3 samples) plus exploit on the
	// cheapest arm; the bytecode arm's 6th call (site call 12) is the
	// injected panic. The caller must see nothing but the right answer.
	for i := 1; i <= 12; i++ {
		call(i)
	}
	if inj.TotalFired() != 1 {
		t.Fatalf("injector fired %d times, want 1", inj.TotalFired())
	}
	rep := siteReport(t, tn, "probe", class)
	if rep.QuarantinedArms != 1 {
		t.Fatalf("QuarantinedArms = %d, want 1", rep.QuarantinedArms)
	}
	bc := rep.Arms[2]
	if bc.Spec.String() != "bytecode" {
		t.Fatalf("arm 2 is %s, want bytecode", bc.Spec)
	}
	if !bc.Quarantined || bc.Quarantines != 1 || bc.Faults != 1 || bc.Degraded != 1 {
		t.Fatalf("bytecode arm after fault: %+v", bc)
	}
	// The poisoned winner abdicated: the best trusted arm rules.
	if got := bestSpec(t, tn, "probe", class); got.String() != "O3" {
		t.Fatalf("post-quarantine winner = %s, want O3", got)
	}

	// Phase B — while quarantined (clock frozen), the arm gets zero
	// routing: its pull count must not move.
	pulls := bc.Pulls
	for i := 13; i <= 22; i++ {
		call(i)
	}
	rep = siteReport(t, tn, "probe", class)
	if rep.Arms[2].Pulls != pulls {
		t.Fatalf("quarantined arm was routed: pulls %d → %d", pulls, rep.Arms[2].Pulls)
	}

	// Phase C — the backoff expires on the fake clock: the arm re-enters
	// through a fresh measure burst and, being clean again and cheapest,
	// re-wins the site.
	clk.advance(200 * time.Millisecond)
	for i := 23; i <= 30; i++ {
		call(i)
	}
	rep = siteReport(t, tn, "probe", class)
	if rep.Arms[2].Quarantined {
		t.Fatal("arm still quarantined after backoff expiry")
	}
	if rep.QuarantinedArms != 0 {
		t.Fatalf("QuarantinedArms = %d, want 0", rep.QuarantinedArms)
	}
	if got := bestSpec(t, tn, "probe", class); got.String() != "bytecode" {
		t.Fatalf("re-entered winner = %s, want bytecode", got)
	}
	if rep.Arms[2].Quarantines != 1 {
		t.Fatalf("Quarantines = %d, want 1 (history must survive the lift)", rep.Arms[2].Quarantines)
	}
	if inj.TotalFired() != 1 {
		t.Fatalf("injector fired %d times total, want 1", inj.TotalFired())
	}
	return tn.Snapshot()
}

func TestQuarantineLifecycle(t *testing.T) {
	runQuarantineLifecycle(t)
}

// The whole lifecycle — injected faults, quarantine windows, lifts,
// re-convergence — is a pure function of (seed, script, clock): two
// runs must produce identical snapshots.
func TestQuarantineLifecycleDeterministic(t *testing.T) {
	a := runQuarantineLifecycle(t)
	b := runQuarantineLifecycle(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("lifecycle not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// Repeated quarantines of the same arm double the backoff window:
// still out at 1× base after the second quarantine, back in at 2×.
func TestQuarantineBackoffDoubles(t *testing.T) {
	grid := []VariantSpec{
		{Opt: cm.O0},
		{Backend: cm.BackendBytecode, Opt: cm.O3, Passes: cm.AllPasses},
	}
	inj := cm.NewScriptedInjector(
		cm.FaultRule{Backend: cm.BackendBytecode, AnyOpt: true, Fn: "probe", Call: 2,
			Kind: cm.FaultPanic, Point: cm.FaultAtExit},
		cm.FaultRule{Backend: cm.BackendBytecode, AnyOpt: true, Fn: "probe", Call: 4,
			Kind: cm.FaultPanic, Point: cm.FaultAtExit},
	)
	clk := &fakeClock{t: time.Unix(0, 0)}
	const base = 100 * time.Millisecond
	tn, err := New(simProgram(t),
		WithGrid(grid...),
		WithSampler(&simSampler{cost: flatCost(chaosCost)}),
		WithMinSamples(1),
		WithEpsilon(0),
		WithSeed(5),
		WithClock(clk),
		WithFaultInjector(inj),
		WithQuarantineBackoff(base, 10*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	args := simArgs(16)
	class := SizeClass(args)
	call := func() {
		t.Helper()
		if _, err := tn.Call("probe", args...); err != nil {
			t.Fatal(err)
		}
	}
	quarantined := func() bool {
		return siteReport(t, tn, "probe", class).Arms[1].Quarantined
	}

	call() // measure O0
	call() // measure bytecode (clean) → exploit, bytecode wins
	call() // bytecode call 2 → fault → quarantine #1 at T0
	if !quarantined() {
		t.Fatal("arm not quarantined after first fault")
	}
	clk.advance(base - time.Millisecond)
	call() // T0+99ms: still inside the 1×base window
	if !quarantined() {
		t.Fatal("quarantine lifted before base backoff elapsed")
	}
	clk.advance(time.Millisecond)
	call() // T0+100ms: lift → re-measure burst routes the arm (clean)
	if quarantined() {
		t.Fatal("quarantine not lifted at base backoff")
	}
	call() // bytecode re-wins; its call 4 → fault → quarantine #2 at T1
	rep := siteReport(t, tn, "probe", class)
	if !rep.Arms[1].Quarantined || rep.Arms[1].Quarantines != 2 {
		t.Fatalf("after second fault: %+v", rep.Arms[1])
	}
	clk.advance(base)
	call() // T1+100ms: the window doubled — still out
	if !quarantined() {
		t.Fatal("second quarantine lifted after only 1×base (no exponential backoff)")
	}
	clk.advance(base)
	call() // T1+200ms: 2×base elapsed → lifted
	if quarantined() {
		t.Fatal("second quarantine not lifted at 2×base")
	}
	if inj.TotalFired() != 2 {
		t.Fatalf("injector fired %d times, want 2", inj.TotalFired())
	}
}

// When every arm of a site is quarantined there is no trusted variant
// left — yet calls must keep succeeding (containment + fallback serve
// them) while routing falls back to the arm whose backoff expires
// soonest.
func TestAllArmsQuarantinedStillServes(t *testing.T) {
	grid := []VariantSpec{
		{Opt: cm.O0},
		{Opt: cm.O3, Passes: cm.AllPasses},
	}
	// Every compiled-backend call faults at exit: both arms poison
	// themselves immediately and repeatedly. The trusted reference tier
	// the fallback runs on is always injector-free.
	inj := cm.NewScriptedInjector(cm.FaultRule{
		Backend: cm.BackendCompiled, AnyOpt: true, Fn: "probe", Call: 0,
		Kind: cm.FaultPanic, Point: cm.FaultAtExit,
	})
	clk := &fakeClock{t: time.Unix(0, 0)}
	tn, err := New(simProgram(t),
		WithGrid(grid...),
		WithSampler(&simSampler{cost: flatCost(chaosCost)}),
		WithMinSamples(1),
		WithEpsilon(0),
		WithSeed(9),
		WithClock(clk),
		WithFaultInjector(inj),
		WithQuarantineBackoff(100*time.Millisecond, time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := probeOracle(t)
	args := simArgs(16)
	class := SizeClass(args)
	for i := 1; i <= 6; i++ {
		v, err := tn.Call("probe", args...)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !eqValue(want, v) {
			t.Fatalf("call %d: value %+v, want %+v", i, v, want)
		}
	}
	rep := siteReport(t, tn, "probe", class)
	if rep.QuarantinedArms != len(grid) {
		t.Fatalf("QuarantinedArms = %d, want %d", rep.QuarantinedArms, len(grid))
	}
	for i, a := range rep.Arms {
		if !a.Quarantined || a.Faults == 0 || a.Degraded == 0 {
			t.Fatalf("arm %d: %+v", i, a)
		}
	}
	if rep.Converged {
		t.Fatal("a site with zero successful measurements must not report converged")
	}
	// Lifts re-try the arms; they fault again and re-quarantine with a
	// doubled window — forever serving correct results in between.
	clk.advance(150 * time.Millisecond)
	for i := 7; i <= 10; i++ {
		v, err := tn.Call("probe", args...)
		if err != nil || !eqValue(want, v) {
			t.Fatalf("call %d after lift: v=%+v err=%v", i, v, err)
		}
	}
	rep = siteReport(t, tn, "probe", class)
	if rep.Arms[0].Quarantines < 2 && rep.Arms[1].Quarantines < 2 {
		t.Fatalf("no arm re-quarantined after lift: %+v", rep.Arms)
	}
}

// A silent miscompile — wrong results, no panic — is invisible to
// containment; the audit cadence catches it, returns the reference
// outcome to the caller, and quarantines the arm.
func TestAuditCatchesSilentMiscompile(t *testing.T) {
	grid := []VariantSpec{
		{Opt: cm.O0},
		{Backend: cm.BackendBytecode, Opt: cm.O3, Passes: cm.AllPasses},
	}
	inj := cm.NewScriptedInjector(cm.FaultRule{
		Backend: cm.BackendBytecode, AnyOpt: true, Fn: "probe", Call: 0,
		Kind: cm.FaultWrongResult,
	})
	clk := &fakeClock{t: time.Unix(0, 0)}
	tn, err := New(simProgram(t),
		WithGrid(grid...),
		WithSampler(&simSampler{cost: flatCost(chaosCost)}),
		WithMinSamples(2),
		WithEpsilon(0),
		WithSeed(13),
		WithClock(clk),
		WithFaultInjector(inj),
		WithAuditEvery(2),
		WithQuarantineBackoff(time.Minute, time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := probeOracle(t)
	args := simArgs(16)
	class := SizeClass(args)
	// Site pulls 1–2 route O0 (pull 2 audited: clean, no divergence).
	// Pull 3 routes bytecode unaudited — the one call whose corrupt
	// value escapes, which is exactly why the audit cadence exists.
	// Pull 4 routes bytecode audited → divergence → quarantine.
	var sawCorrupt bool
	for i := 1; i <= 4; i++ {
		v, err := tn.Call("probe", args...)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if i == 4 && !eqValue(want, v) {
			t.Fatalf("audited call returned the corrupt value: %+v, want %+v", v, want)
		}
		if !eqValue(want, v) {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("wrong-result injection never produced a corrupt value (test premise broken)")
	}
	rep := siteReport(t, tn, "probe", class)
	bc := rep.Arms[1]
	if bc.Diverged != 1 || !bc.Quarantined || bc.Quarantines != 1 {
		t.Fatalf("bytecode arm after audit: %+v", bc)
	}
	if bc.Faults != 0 {
		t.Fatalf("divergence miscounted as an internal fault: %+v", bc)
	}
	// With the lying arm out of routing, every further call is correct.
	for i := 5; i <= 12; i++ {
		v, err := tn.Call("probe", args...)
		if err != nil || !eqValue(want, v) {
			t.Fatalf("call %d post-quarantine: v=%+v err=%v, want %+v", i, v, err, want)
		}
	}
}

// Concurrent chaos: many goroutines hammer a tuner whose bytecode arm
// panics on every call, with a real clock and a backoff small enough
// that quarantine lifts race the routing. Run under -race; every call
// must still return the oracle value.
func TestConcurrentChaosRouting(t *testing.T) {
	inj := cm.NewScriptedInjector(cm.FaultRule{
		Backend: cm.BackendBytecode, AnyOpt: true, Fn: "probe", Call: 0,
		Kind: cm.FaultPanic, Point: cm.FaultAtExit,
	})
	tn, err := New(simProgram(t),
		WithMinSamples(2),
		WithSeed(17),
		WithFaultInjector(inj),
		WithQuarantineBackoff(time.Millisecond, 8*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := probeOracle(t)
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			args := simArgs(16)
			for i := 0; i < perG; i++ {
				v, err := tn.Call("probe", args...)
				if err != nil {
					errs <- fmt.Errorf("call %d: %w", i, err)
					return
				}
				if !eqValue(want, v) {
					errs <- fmt.Errorf("call %d: value %+v, want %+v", i, v, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if inj.TotalFired() == 0 {
		t.Error("chaos run never injected a fault (test premise broken)")
	}
}
