package autotune

import (
	"math"
	"sync"
	"testing"

	cm "socrates/internal/cminor"
)

// Concurrency stress: one AutoTuner shared by 12 goroutines. Variant
// materialization, pool checkout, selection, and measurement ingestion
// must all be race-free (CI runs this under -race), and every routed
// call must stay bit-exact regardless of which variant the policy
// picked — arrays and return values are compared against a walker
// reference on every single call.
func TestConcurrentTunerStress(t *testing.T) {
	const n = 8
	gemm := cm.BenchKernels[0] // gemm; args rebuilt small below for speed
	if gemm.Name != "gemm" {
		t.Fatal("corpus order changed; update the test")
	}
	mkArgs := func() []any {
		m := func() *cm.Array {
			a := cm.NewArray(n, n)
			for i := range a.Data {
				a.Data[i] = float64(i%13) * 0.37
			}
			return a
		}
		return []any{cm.IntV(n), cm.FloatV(1.5), cm.FloatV(0.5), m(), m(), m()}
	}

	f := cm.MustParse(gemm.File, gemm.Src)
	// Walker reference: the bit pattern every routed call must produce.
	refArgs := mkArgs()
	refVal, err := cm.NewWalker(f).Call(gemm.Fn, refArgs...)
	if err != nil {
		t.Fatal(err)
	}
	ref := refArgs[5].(*cm.Array)

	prog, err := cm.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := New(prog,
		WithGrid(WalkerGrid(DefaultGrid())...), // all backends in play
		WithMinSamples(2),
		WithEpsilon(0.3), // keep switching variants throughout
		WithSeed(42),
	)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const callsPer = 60
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < callsPer; i++ {
				args := mkArgs()
				v, err := tn.Call(gemm.Fn, args...)
				if err != nil {
					errc <- err
					return
				}
				if v.IsInt != refVal.IsInt || v.F != refVal.F || v.I != refVal.I {
					t.Errorf("return value diverged under concurrency")
					return
				}
				got := args[5].(*cm.Array)
				for k := range ref.Data {
					if math.Float64bits(got.Data[k]) != math.Float64bits(ref.Data[k]) {
						t.Errorf("array bit divergence at %d", k)
						return
					}
				}
			}
		}()
	}
	// A reader goroutine hammers the introspection surface concurrently.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tn.Snapshot()
				tn.Best(gemm.Fn, SizeClass(refArgs))
				tn.Grid()
			}
		}
	}()
	wg.Wait()
	close(done)
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	rep := tn.Snapshot()
	if len(rep) != 1 {
		t.Fatalf("expected 1 tuning site, got %d", len(rep))
	}
	if want := int64(goroutines * callsPer); rep[0].Pulls != want {
		t.Fatalf("lost pulls under concurrency: %d, want %d", rep[0].Pulls, want)
	}
	// Per-arm quotas reset whenever real-clock noise triggers a drift
	// reopen, so they only bound the total from above.
	var armPulls int64
	for _, a := range rep[0].Arms {
		armPulls += a.Pulls
	}
	if want := int64(goroutines * callsPer); armPulls > want || armPulls == 0 {
		t.Fatalf("per-arm pulls inconsistent: %d of %d total", armPulls, want)
	}
}
