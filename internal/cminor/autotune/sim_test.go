package autotune

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	cm "socrates/internal/cminor"
)

// Deterministic simulation harness: the tuner's Sampler is replaced by
// a synthetic cost model (per-variant base cost, bounded deterministic
// jitter, optional mid-run shifts), so convergence, exploration budgets
// and drift reactions are asserted exactly — no wall clock, no
// sleeping, no flakiness. The routed program is a real (tiny) kernel,
// so every simulated call still exercises the full engine path.

// simSrc is the kernel simulations route through: cheap, stateless,
// and with an inlinable leaf call so O3 differs structurally from O2.
const simSrc = `
double sq(double x) { return x * x; }
double probe(int n, double a[n]) {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < n; i++) {
    s = s + sq(a[i]);
  }
  return s;
}
`

func simProgram(t testing.TB, opts ...cm.Option) *cm.Program {
	t.Helper()
	prog, err := cm.Compile(cm.MustParse("sim.c", simSrc), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func simArgs(n int) []any {
	a := cm.NewArray(n)
	for i := range a.Data {
		a.Data[i] = float64(i%5) * 0.5
	}
	return []any{cm.IntV(int64(n)), a}
}

// simSampler scores calls from a cost function instead of a clock. The
// call counter makes jitter and mid-run shifts reproducible.
type simSampler struct {
	calls int64
	cost  func(call int64, spec VariantSpec, class int) time.Duration
}

func (s *simSampler) Sample(_ string, spec VariantSpec, class int, call func() error) (time.Duration, error) {
	err := call()
	s.calls++
	return s.cost(s.calls, spec, class), err
}

// jitter is a deterministic ±4% wobble so EWMA smoothing actually has
// something to smooth.
func jitter(call int64) float64 {
	return 1.0 + 0.04*float64(call%5-2)/2.0
}

// flatCost builds a cost function that depends only on the variant.
func flatCost(base map[string]time.Duration) func(int64, VariantSpec, int) time.Duration {
	return func(call int64, spec VariantSpec, _ int) time.Duration {
		b, ok := base[spec.String()]
		if !ok {
			panic("simulated cost missing for variant " + spec.String())
		}
		return time.Duration(float64(b) * jitter(call))
	}
}

func bestSpec(t *testing.T, tn *AutoTuner, fn string, class int) VariantSpec {
	t.Helper()
	spec, ok := tn.Best(fn, class)
	if !ok {
		t.Fatalf("site (%s, %d) has not converged", fn, class)
	}
	return spec
}

func siteReport(t *testing.T, tn *AutoTuner, fn string, class int) SiteReport {
	t.Helper()
	for _, r := range tn.Snapshot() {
		if r.Fn == fn && r.Class == class {
			return r
		}
	}
	t.Fatalf("no site (%s, %d) in snapshot", fn, class)
	return SiteReport{}
}

// TestSimulatedConvergence drives ten synthetic cost models — shaped
// like the BENCH_6 static sweep of the ten corpus kernels, where the
// bytecode backend wins five, O3 wins three, and O2 wins two
// (inversions the tuner must respect) — and asserts the tuner
// converges to the statically-best variant for every one within the
// bounded exploration budget.
func TestSimulatedConvergence(t *testing.T) {
	grid := DefaultGrid()
	const minSamples = 3
	const totalCalls = 150
	budget := len(grid) * minSamples

	cases := []struct {
		kernel string
		cost   map[string]time.Duration // per-variant base cost
		want   string                   // expected winning variant
	}{
		// Dense-accumulate kernels where the flat-bytecode backend's
		// superinstructions beat the O3 closure trees.
		{"gemm", map[string]time.Duration{"O0": 3100 * time.Microsecond, "O1": 2100 * time.Microsecond, "O2": 630 * time.Microsecond, "O3": 560 * time.Microsecond, "bytecode": 510 * time.Microsecond}, "bytecode"},
		{"axpy", map[string]time.Duration{"O0": 290 * time.Microsecond, "O1": 210 * time.Microsecond, "O2": 74 * time.Microsecond, "O3": 70 * time.Microsecond, "bytecode": 46 * time.Microsecond}, "bytecode"},
		{"atax", map[string]time.Duration{"O0": 700 * time.Microsecond, "O1": 500 * time.Microsecond, "O2": 120 * time.Microsecond, "O3": 110 * time.Microsecond, "bytecode": 88 * time.Microsecond}, "bytecode"},
		{"mvt", map[string]time.Duration{"O0": 480 * time.Microsecond, "O1": 340 * time.Microsecond, "O2": 80 * time.Microsecond, "O3": 70 * time.Microsecond, "bytecode": 56 * time.Microsecond}, "bytecode"},
		{"trisolv", map[string]time.Duration{"O0": 420 * time.Microsecond, "O1": 300 * time.Microsecond, "O2": 90 * time.Microsecond, "O3": 88 * time.Microsecond, "bytecode": 67 * time.Microsecond}, "bytecode"},
		// Stencil kernels where O3 closure trees keep the lead.
		{"jacobi", map[string]time.Duration{"O0": 1900 * time.Microsecond, "O1": 1500 * time.Microsecond, "O2": 380 * time.Microsecond, "O3": 320 * time.Microsecond, "bytecode": 400 * time.Microsecond}, "O3"},
		{"2mm", map[string]time.Duration{"O0": 2600 * time.Microsecond, "O1": 1800 * time.Microsecond, "O2": 520 * time.Microsecond, "O3": 480 * time.Microsecond, "bytecode": 530 * time.Microsecond}, "O3"},
		{"seidel2d", map[string]time.Duration{"O0": 2400 * time.Microsecond, "O1": 1700 * time.Microsecond, "O2": 800 * time.Microsecond, "O3": 760 * time.Microsecond, "bytecode": 900 * time.Microsecond}, "O3"},
		// Inversions: small kernels where an O3 pass costs more than it
		// buys — the tuner must pick O2, not assume more opt is better.
		{"cholesky", map[string]time.Duration{"O0": 520 * time.Microsecond, "O1": 380 * time.Microsecond, "O2": 96 * time.Microsecond, "O3": 103 * time.Microsecond, "bytecode": 115 * time.Microsecond}, "O2"},
		{"norms", map[string]time.Duration{"O0": 640 * time.Microsecond, "O1": 460 * time.Microsecond, "O2": 140 * time.Microsecond, "O3": 150 * time.Microsecond, "bytecode": 155 * time.Microsecond}, "O2"},
	}

	converged := 0
	for _, tc := range cases {
		t.Run(tc.kernel, func(t *testing.T) {
			sampler := &simSampler{cost: flatCost(tc.cost)}
			tn, err := New(simProgram(t),
				WithGrid(grid...),
				WithSampler(sampler),
				WithMinSamples(minSamples),
				WithEpsilon(0.1),
				WithSeed(7),
			)
			if err != nil {
				t.Fatal(err)
			}
			args := simArgs(16)
			class := SizeClass(args)
			for i := 0; i < totalCalls; i++ {
				if _, err := tn.Call("probe", args...); err != nil {
					t.Fatal(err)
				}
				// The exploration budget is a hard bound: the moment every
				// arm met its quota the site must be converged.
				if i+1 == budget {
					if _, ok := tn.Best("probe", class); !ok {
						t.Fatalf("not converged after the %d-call exploration budget", budget)
					}
				}
			}
			got := bestSpec(t, tn, "probe", class)
			if got.String() != tc.want {
				t.Fatalf("converged to %v, statically best is %s", got, tc.want)
			}
			rep := siteReport(t, tn, "probe", class)
			// Residual exploration is bounded: epsilon of the exploit-phase
			// calls in expectation; allow 2x for the seeded draw.
			exploit := int64(totalCalls - budget)
			if maxExplore := int64(0.1*float64(exploit)*2) + 1; rep.ExplorePulls > maxExplore {
				t.Fatalf("exploration out of budget: %d explore pulls > %d", rep.ExplorePulls, maxExplore)
			}
			converged++
		})
	}
	if converged < 8 {
		t.Fatalf("only %d/10 simulated kernels converged to the static best", converged)
	}
}

// TestExplorationBudgetBounds pins the two epsilon extremes: with
// epsilon 0 a converged site never leaves the winner (non-best arms
// keep exactly their measure-phase quota); with epsilon 1 every
// exploit-phase call explores.
func TestExplorationBudgetBounds(t *testing.T) {
	grid := DefaultGrid()
	cost := map[string]time.Duration{
		"O0": 400 * time.Microsecond, "O1": 300 * time.Microsecond,
		"O2": 100 * time.Microsecond, "O3": 90 * time.Microsecond,
		"bytecode": 130 * time.Microsecond,
	}
	const minSamples = 2
	budget := len(grid) * minSamples
	const total = 80

	run := func(eps float64) SiteReport {
		tn, err := New(simProgram(t),
			WithGrid(grid...),
			WithSampler(&simSampler{cost: flatCost(cost)}),
			WithMinSamples(minSamples),
			WithEpsilon(eps),
			WithSeed(3),
		)
		if err != nil {
			t.Fatal(err)
		}
		args := simArgs(16)
		for i := 0; i < total; i++ {
			if _, err := tn.Call("probe", args...); err != nil {
				t.Fatal(err)
			}
		}
		return siteReport(t, tn, "probe", SizeClass(args))
	}

	greedy := run(0)
	if greedy.ExplorePulls != 0 {
		t.Fatalf("epsilon=0 explored %d times", greedy.ExplorePulls)
	}
	for _, arm := range greedy.Arms {
		if arm.Spec.String() != "O3" && arm.Pulls != int64(minSamples) {
			t.Fatalf("epsilon=0: non-best arm %v has %d pulls, want exactly the %d-sample quota",
				arm.Spec, arm.Pulls, minSamples)
		}
	}

	always := run(1)
	if want := int64(total - budget); always.ExplorePulls != want {
		t.Fatalf("epsilon=1: %d explore pulls, want every exploit call (%d)", always.ExplorePulls, want)
	}
}

// TestDriftReexploration shifts the winning variant's cost mid-run (the
// paper's adapt-under-load scenario): the drift detector must reopen
// exploration and the tuner must settle on the new best variant.
func TestDriftReexploration(t *testing.T) {
	grid := DefaultGrid()
	const shiftAt = 60
	base := map[string]time.Duration{
		"O0": 500 * time.Microsecond, "O1": 350 * time.Microsecond,
		"O2": 120 * time.Microsecond, "O3": 80 * time.Microsecond,
		"bytecode": 160 * time.Microsecond,
	}
	sampler := &simSampler{cost: func(call int64, spec VariantSpec, _ int) time.Duration {
		c := base[spec.String()]
		if call > shiftAt && spec.String() == "O3" {
			c *= 5 // the O3 winner degrades (e.g. contention on its working set)
		}
		return time.Duration(float64(c) * jitter(call))
	}}
	tn, err := New(simProgram(t),
		WithGrid(grid...),
		WithSampler(sampler),
		WithMinSamples(3),
		WithEpsilon(0.05),
		WithDriftFactor(0.5),
		WithSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	args := simArgs(16)
	class := SizeClass(args)
	for i := 0; i < shiftAt; i++ {
		if _, err := tn.Call("probe", args...); err != nil {
			t.Fatal(err)
		}
	}
	if got := bestSpec(t, tn, "probe", class); got.String() != "O3" {
		t.Fatalf("pre-shift winner is %v, want O3", got)
	}
	for i := 0; i < 140; i++ {
		if _, err := tn.Call("probe", args...); err != nil {
			t.Fatal(err)
		}
	}
	rep := siteReport(t, tn, "probe", class)
	if rep.Reopens < 1 {
		t.Fatalf("winner cost shifted 5x but the site never re-opened exploration")
	}
	if got := bestSpec(t, tn, "probe", class); got.String() != "O2" {
		t.Fatalf("post-shift winner is %v, want O2", got)
	}
}

// TestUCB1Convergence runs the deterministic policy: no random draws
// at all, so two identical runs must produce identical decision
// sequences — and still converge to the static best.
func TestUCB1Convergence(t *testing.T) {
	grid := DefaultGrid()
	cost := map[string]time.Duration{
		"O0": 900 * time.Microsecond, "O1": 500 * time.Microsecond,
		"O2": 200 * time.Microsecond, "O3": 140 * time.Microsecond,
		"bytecode": 170 * time.Microsecond,
	}
	run := func() []SiteReport {
		tn, err := New(simProgram(t),
			WithGrid(grid...),
			WithSampler(&simSampler{cost: flatCost(cost)}),
			WithPolicy(UCB1),
			WithMinSamples(2),
		)
		if err != nil {
			t.Fatal(err)
		}
		args := simArgs(16)
		for i := 0; i < 120; i++ {
			if _, err := tn.Call("probe", args...); err != nil {
				t.Fatal(err)
			}
		}
		if got := bestSpec(t, tn, "probe", SizeClass(args)); got.String() != "O3" {
			t.Fatalf("UCB1 converged to %v, want O3", got)
		}
		return tn.Snapshot()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("UCB1 runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestPerClassSelection gives small and large inputs opposite winners;
// the tuner must keep one independent site per input-size class and
// converge each to its own best variant.
func TestPerClassSelection(t *testing.T) {
	grid := DefaultGrid()
	small, large := simArgs(8), simArgs(1024)
	smallClass, largeClass := SizeClass(small), SizeClass(large)
	if smallClass == largeClass {
		t.Fatalf("classifier folded 8 and 1024 elements into one class %d", smallClass)
	}
	sampler := &simSampler{cost: func(call int64, spec VariantSpec, class int) time.Duration {
		// Small inputs: compile-time cleverness doesn't pay (O1 wins).
		// Large inputs: O3 wins big.
		base := map[string]time.Duration{
			"O0": 40 * time.Microsecond, "O1": 20 * time.Microsecond,
			"O2": 30 * time.Microsecond, "O3": 35 * time.Microsecond,
			"bytecode": 45 * time.Microsecond,
		}
		if class == largeClass {
			base = map[string]time.Duration{
				"O0": 4000 * time.Microsecond, "O1": 2500 * time.Microsecond,
				"O2": 900 * time.Microsecond, "O3": 600 * time.Microsecond,
				"bytecode": 700 * time.Microsecond,
			}
		}
		return time.Duration(float64(base[spec.String()]) * jitter(call))
	}}
	tn, err := New(simProgram(t),
		WithGrid(grid...),
		WithSampler(sampler),
		WithMinSamples(2),
		WithEpsilon(0.05),
		WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if _, err := tn.Call("probe", small...); err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Call("probe", large...); err != nil {
			t.Fatal(err)
		}
	}
	if got := bestSpec(t, tn, "probe", smallClass); got.String() != "O1" {
		t.Fatalf("small-input site converged to %v, want O1", got)
	}
	if got := bestSpec(t, tn, "probe", largeClass); got.String() != "O3" {
		t.Fatalf("large-input site converged to %v, want O3", got)
	}
}

// TestLazyMaterialization pins the grid's laziness: New lowers nothing,
// each variant materializes only when first selected.
func TestLazyMaterialization(t *testing.T) {
	tn, err := New(simProgram(t), WithMinSamples(1),
		WithSampler(&simSampler{cost: flatCost(map[string]time.Duration{
			"O0": 4, "O1": 3, "O2": 2, "O3": 1, "bytecode": 5,
		})}))
	if err != nil {
		t.Fatal(err)
	}
	for i, slot := range tn.slots {
		if slot.prog != nil {
			t.Fatalf("variant %d materialized before any call", i)
		}
	}
	args := simArgs(8)
	if _, err := tn.Call("probe", args...); err != nil {
		t.Fatal(err)
	}
	materialized := 0
	for _, slot := range tn.slots {
		if slot.prog != nil {
			materialized++
		}
	}
	if materialized != 1 {
		t.Fatalf("one call materialized %d variants, want exactly 1", materialized)
	}
	for i := 0; i < len(tn.cfg.grid)-1; i++ {
		if _, err := tn.Call("probe", args...); err != nil {
			t.Fatal(err)
		}
	}
	for i, slot := range tn.slots {
		if slot.prog == nil {
			t.Fatalf("variant %d not materialized after a full measure round", i)
		}
	}
}

// TestPooledBudgetNotLeaked is the SetMaxSteps/pool interaction pin:
// with a per-call budget that any single call fits but two calls'
// accumulated steps would blow, hundreds of pooled calls must all
// succeed — proving the pool restores the budget per checkout instead
// of leaking spent steps across the tuner's pool.
func TestPooledBudgetNotLeaked(t *testing.T) {
	args := simArgs(64)
	// One probe(64) call costs a few hundred statements; 2000 covers one
	// call comfortably and is far below 300 calls' accumulation.
	prog := simProgram(t, cm.WithMaxSteps(2000))
	tn, err := New(prog, WithMinSamples(2), WithEpsilon(0.2),
		WithSampler(&simSampler{cost: flatCost(map[string]time.Duration{
			"O0": 4, "O1": 3, "O2": 2, "O3": 1, "bytecode": 5,
		})}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := tn.Call("probe", args...); err != nil {
			t.Fatalf("call %d: budget leaked across the pool: %v", i, err)
		}
	}
	// The budget itself still bites: a kernel that overruns it in ONE
	// call faults on every variant, and the tuner surfaces the fault.
	tight := simProgram(t, cm.WithMaxSteps(10))
	tn2, err := New(tight, WithMinSamples(1),
		WithSampler(&simSampler{cost: flatCost(map[string]time.Duration{
			"O0": 4, "O1": 3, "O2": 2, "O3": 1, "bytecode": 5,
		})}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := tn2.Call("probe", args...); err == nil {
			t.Fatalf("call %d: 10-step budget did not fault", i)
		}
	}
}

// TestFaultingCallsDontPoisonEstimates: a runtime fault counts its
// pull but contributes no cost, a site whose every call faulted never
// declares a winner, and unknown function names are rejected before
// any tuning state exists.
func TestFaultingCallsDontPoisonEstimates(t *testing.T) {
	tn, err := New(simProgram(t), WithMinSamples(1),
		WithSampler(&simSampler{cost: flatCost(map[string]time.Duration{
			"O0": 4, "O1": 3, "O2": 2, "O3": 1, "bytecode": 5,
		})}))
	if err != nil {
		t.Fatal(err)
	}
	// Unknown names never create a site.
	if _, err := tn.Call("no_such_fn"); err == nil {
		t.Fatal("calling a missing function did not error")
	}
	if got := len(tn.Snapshot()); got != 0 {
		t.Fatalf("a rejected name created %d tuning sites", got)
	}
	// A known function faulting at runtime (out-of-bounds subscript:
	// n says 64, the array holds 8) counts pulls but samples nothing.
	bad := []any{cm.IntV(64), cm.NewArray(8)}
	class := SizeClass(bad)
	for i := 0; i < 6; i++ {
		if _, err := tn.Call("probe", bad...); err == nil {
			t.Fatal("out-of-bounds call did not error")
		}
	}
	rep := siteReport(t, tn, "probe", class)
	if rep.Pulls != 6 {
		t.Fatalf("faulting calls recorded %d pulls, want 6", rep.Pulls)
	}
	for _, arm := range rep.Arms {
		if arm.Sampled {
			t.Fatalf("arm %v has a cost estimate from faulting calls", arm.Spec)
		}
	}
	// Quota met, but nothing measured: the site must not converge.
	if rep.Converged {
		t.Fatal("site converged without a single successful measurement")
	}
	if _, ok := tn.Best("probe", class); ok {
		t.Fatal("Best reported a winner that was never measured")
	}
}

// TestNewValidation: malformed configurations and grids fail fast at
// New, with the engine's own diagnostics for bad knob values.
func TestNewValidation(t *testing.T) {
	prog := simProgram(t)
	cases := []struct {
		name string
		opts []Option
	}{
		{"empty grid", []Option{WithGrid()}},
		{"bad epsilon", []Option{WithEpsilon(1.5)}},
		{"bad alpha", []Option{WithEWMAAlpha(0)}},
		{"bad min samples", []Option{WithMinSamples(0)}},
		{"bad drift", []Option{WithDriftFactor(0)}},
		{"unknown opt level", []Option{WithGrid(VariantSpec{Opt: cm.O3 + 1})}},
		{"unknown pass bits", []Option{WithGrid(VariantSpec{Opt: cm.O3, Passes: 0x80})}},
	}
	for _, tc := range cases {
		if _, err := New(prog, tc.opts...); err == nil {
			t.Errorf("%s: New accepted it", tc.name)
		}
	}
	if _, err := New(prog, WithGrid(FineGrid()...)); err != nil {
		t.Errorf("FineGrid rejected: %v", err)
	}
	if _, err := New(prog, WithGrid(WalkerGrid(DefaultGrid())...)); err != nil {
		t.Errorf("WalkerGrid rejected: %v", err)
	}
}

// TestClockSamplerDeterministic pins the default measurement path
// against a fake clock: cost == the clock movement during the call.
func TestClockSamplerDeterministic(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := clockSampler{clock: clk}
	d, err := s.Sample("f", VariantSpec{}, 0, func() error {
		clk.advance(5 * time.Millisecond)
		return nil
	})
	if err != nil || d != 5*time.Millisecond {
		t.Fatalf("got (%v, %v), want (5ms, nil)", d, err)
	}
	wantErr := errors.New("boom")
	d, err = s.Sample("f", VariantSpec{}, 0, func() error {
		clk.advance(time.Millisecond)
		return wantErr
	})
	if err != wantErr || d != time.Millisecond {
		t.Fatalf("got (%v, %v), want (1ms, boom)", d, err)
	}
}

type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestSizeClass pins the default classifier's buckets.
func TestSizeClass(t *testing.T) {
	if got := SizeClass([]any{cm.IntV(3)}); got != 0 {
		t.Fatalf("scalar-only class = %d, want 0", got)
	}
	cases := []struct {
		elems []int
		want  int
	}{
		{[]int{1}, 1},
		{[]int{8}, 4},
		{[]int{8, 8}, 5},
		{[]int{1024}, 11},
	}
	for _, tc := range cases {
		args := []any{cm.IntV(1)}
		for _, n := range tc.elems {
			args = append(args, cm.NewArray(n))
		}
		if got := SizeClass(args); got != tc.want {
			t.Fatalf("SizeClass(%v elems) = %d, want %d", tc.elems, got, tc.want)
		}
	}
}

// TestVariantSpecString pins the names benchmark output uses.
func TestVariantSpecString(t *testing.T) {
	cases := []struct {
		spec VariantSpec
		want string
	}{
		{VariantSpec{}, "O0"},
		{VariantSpec{Opt: cm.O2}, "O2"},
		{VariantSpec{Opt: cm.O3, Passes: cm.AllPasses}, "O3"},
		{VariantSpec{Opt: cm.O3, Passes: cm.PassInline | cm.PassBCE}, "O3[inline+bce]"},
		{VariantSpec{Opt: cm.O3}, "O3[none]"},
		{VariantSpec{Backend: cm.BackendWalker}, "walker"},
		{VariantSpec{Backend: cm.BackendBytecode, Opt: cm.O3, Passes: cm.AllPasses}, "bytecode"},
		{VariantSpec{Backend: cm.BackendBytecode}, "bytecode"},
	}
	for _, tc := range cases {
		if got := tc.spec.String(); got != tc.want {
			t.Fatalf("%#v.String() = %q, want %q", tc.spec, got, tc.want)
		}
	}
	if got := fmt.Sprint(UCB1, " ", EpsilonGreedy); got != "ucb1 epsilon-greedy" {
		t.Fatalf("policy names = %q", got)
	}
}
