package autotune

import "time"

// Per-(function, input-class) selection state. Each call site the
// tuner has seen owns one siteState with one armStats per grid point;
// everything here is mutated only under the tuner mutex.

// Site phases: measure pulls every arm a fixed number of times
// (round-robin, the bounded exploration budget), exploit routes to the
// best arm with policy-controlled residual exploration. A drift
// detection re-enters measure.
const (
	phaseMeasure uint8 = iota
	phaseExploit
)

// switchHysteresis: mid-exploit, a challenger arm must undercut the
// incumbent's EWMA by this relative margin before the site adopts it.
// It guards against two failure modes observed live. (1) Ping-pong:
// two near-equal arms alternating call-to-call thrash the branch
// predictor and instruction cache, inflating BOTH arms' measurements
// (a 57µs variant's EWMA was driven to ~480µs by pure alternation),
// so the argmin keeps flipping forever; sticking with the incumbent
// lets back-to-back runs re-measure the true cost. (2) Stale-estimate
// dethroning: a burst of clipped spikes nudges the winner's EWMA up a
// few tens of percent, and a challenger whose optimistic (min-based,
// long-unsampled) measure-phase estimate sits just below it takes
// over for thousands of calls. The margin is deliberately generous: a
// genuinely better challenger by more than this margin is rare within
// one workload, and a winner that truly degrades is caught by the
// drift detector, which re-measures every arm freshly. Measure-phase
// convergence itself is a plain argmin — hysteresis only guards
// switches after a winner exists.
const switchHysteresis = 0.25

// clipFactor winsorizes exploit-phase samples: each measurement folds
// into the EWMA capped at clipFactor× the current estimate. Cost
// distributions on a shared box are heavy-tailed — a single 2ms GC
// pause or preemption on a 60µs kernel would otherwise catapult the
// winner's EWMA 4× in one sample and dethrone the true winner for
// thousands of calls (observed live). A genuine sustained shift still
// raises the estimate geometrically (clipFactor× per sample), so the
// drift detector fires within a handful of samples.
const clipFactor = 3.0

// armStats is the cost estimate — and trust state — of one variant at
// one site.
type armStats struct {
	pulls   int64   // selections, counted at decision time
	sampled bool    // at least one successful measurement recorded
	ewma    float64 // nanoseconds, exponentially weighted
	// distrust marks the estimate a prior rather than a measurement: a
	// warm-started arm (tunecache.go) counts down this many fresh
	// samples folded in at the boosted warmAlpha weight, so a stale
	// persisted estimate is overwhelmed by live data within a couple of
	// calls instead of anchoring the EWMA for hundreds.
	distrust int
	// Fault-containment accounting (see quarantine.go). The counters are
	// cumulative for the site's lifetime — they survive drift reopens and
	// quarantine lifts, unlike the cost estimate above.
	faults          int64 // contained internal faults on this arm
	degraded        int64 // calls served by trusted-fallback re-execution
	diverged        int64 // audit-revealed wrong results
	quarantines     int   // times this arm has been quarantined here
	quarantined     bool  // currently out of routing
	quarantineUntil time.Time
}

// resetEstimate discards the arm's cost estimate (a drift reopen or a
// quarantine lift: the old measurements are no longer trusted) while
// keeping the cumulative fault accounting.
func (a *armStats) resetEstimate() {
	a.pulls, a.sampled, a.ewma = 0, false, 0
	a.distrust = 0 // a fresh measure burst is trusted by construction
}

// update folds one cost measurement into the estimate. The first
// quota samples (the measure phase) estimate by the minimum observed
// cost rather than a blend: a variant's first execution pays one-time
// costs (faulting in the freshly lowered closure graph), and busy
// boxes add heavy-tailed scheduling spikes — for a deterministic
// kernel the minimum is the robust location estimate. Once the arm is
// past its quota the EWMA takes over, so genuine workload shifts
// still move the estimate (and can trip the drift detector).
func (a *armStats) update(alpha float64, quota int64, cost float64) {
	switch {
	case !a.sampled:
		a.ewma, a.sampled = cost, true
	case a.pulls <= quota:
		if cost < a.ewma {
			a.ewma = cost
		}
	default:
		if lim := a.ewma * clipFactor; cost > lim {
			cost = lim // winsorize heavy-tailed spikes (see clipFactor)
		}
		if a.distrust > 0 {
			// Warm-started prior: fresh samples carry at least warmAlpha
			// until the distrust budget is spent (see tunecache.go).
			a.distrust--
			if alpha < warmAlpha {
				alpha = warmAlpha
			}
		}
		a.ewma = alpha*cost + (1-alpha)*a.ewma
	}
}

type siteState struct {
	arms   []armStats
	phase  uint8
	cursor int // round-robin position while measuring
	// ctr is the site's atomic counter block, shared with the tuner's
	// lock-free Counters() read path (counters.go). Written under the
	// tuner mutex alongside the fields it mirrors.
	ctr *siteCounters
	// best is the current winner (argmin EWMA over sampled arms);
	// baseline freezes its EWMA when the site converges (or re-anchors
	// on a winner change), and the drift detector compares against it.
	best     int
	baseline float64
	pulls    int64 // total selections at this site
	explore  int64 // exploit-phase selections that were NOT the winner
	reopens  int   // drift-triggered re-explorations
	nquar    int   // arms currently quarantined (see quarantine.go)
}

func newSiteState(arms int) *siteState {
	return &siteState{arms: make([]armStats, arms), ctr: &siteCounters{}}
}

// allMeasured reports whether every arm in service has met the
// measure-phase pull quota. Quarantined arms are out of service and do
// not hold the phase open — they re-earn a quota when their backoff
// lifts.
func (st *siteState) allMeasured(minSamples int64) bool {
	for i := range st.arms {
		if st.arms[i].quarantined {
			continue
		}
		if st.arms[i].pulls < minSamples {
			return false
		}
	}
	return true
}

// anySampled reports whether any arm has a successful measurement.
func (st *siteState) anySampled() bool {
	for i := range st.arms {
		if st.arms[i].sampled {
			return true
		}
	}
	return false
}

// argmin returns the trusted sampled arm with the lowest EWMA (ties to
// the lower index — the less optimized variant). Arms that never
// produced a successful measurement, and quarantined arms, are skipped;
// with no candidates it returns 0.
func (st *siteState) argmin() int {
	best, found := 0, false
	for i := range st.arms {
		if !st.arms[i].sampled || st.arms[i].quarantined {
			continue
		}
		if !found || st.arms[i].ewma < st.arms[best].ewma {
			best, found = i, true
		}
	}
	return best
}

// observe ingests one call outcome for arm idx (out.ok=false when the
// cost is not a trustworthy measurement of the arm: program-level
// faults, degraded calls, audits) and advances the site's phase
// machine: measure → exploit on quota, exploit → measure when the
// winner's cost drifts past the tolerance band. A contained internal
// fault or an audit divergence quarantines the arm instead of feeding
// the estimates (quarantine.go).
func (st *siteState) observe(cfg *config, idx int, cost float64, out callOutcome) {
	a := &st.arms[idx]
	if out.fault {
		a.faults++
		st.ctr.faults.Add(1)
	}
	if out.degraded {
		a.degraded++
		st.ctr.degraded.Add(1)
	}
	if out.diverged {
		a.diverged++
		st.ctr.diverged.Add(1)
	}
	if out.fault || out.diverged {
		st.quarantine(cfg, idx)
		return
	}
	ok := out.ok
	if ok {
		st.arms[idx].update(cfg.alpha, int64(cfg.minSamples), cost)
	}
	switch st.phase {
	case phaseMeasure:
		// Converging requires at least one successful measurement: a
		// site whose every call faulted must not declare a winner it
		// never timed (quota pulls alone don't qualify).
		if st.allMeasured(int64(cfg.minSamples)) && st.anySampled() {
			st.phase = phaseExploit
			st.best = st.argmin()
			st.baseline = st.arms[st.best].ewma
		}
	case phaseExploit:
		// Drift: the winning variant's own observed cost DEGRADED past
		// baseline*(1+drift) — the workload shifted under it, so the old
		// measurements of every arm are suspect. Reopen exploration
		// (estimates and quotas reset). The winner getting
		// FASTER is not drift — it is still the winner; the baseline
		// tightens to the improved cost instead, both so degradation is
		// judged against the best cost seen and because measure-phase
		// estimates run systematically high (arm switching thrashes the
		// predictor/icache) and always melt once the winner runs
		// back-to-back.
		if ok && idx == st.best && st.baseline > 0 {
			ew := st.arms[idx].ewma
			if ew > st.baseline*(1+cfg.drift) {
				st.reopen()
				return
			}
			if ew < st.baseline {
				st.baseline = ew
			}
		}
		// Residual exploration may discover a new winner without any
		// drift (e.g. an arm that was unlucky during measurement);
		// adopt it — and re-anchor the baseline — only when it clears
		// the hysteresis margin (see switchHysteresis).
		if nb := st.argmin(); nb != st.best &&
			st.arms[nb].ewma < st.arms[st.best].ewma*(1-switchHysteresis) {
			st.best = nb
			st.baseline = st.arms[nb].ewma
		}
	}
}

// reopen re-enters the measure phase after drift: the workload moved,
// so every stale estimate is suspect — arms restart from scratch and
// re-earn their quotas. Quarantine state and fault accounting survive:
// drift says nothing about trust.
func (st *siteState) reopen() {
	st.phase = phaseMeasure
	st.cursor = 0
	for i := range st.arms {
		st.arms[i].resetEstimate()
	}
	st.reopens++
}

// durationOf converts a float64-nanosecond EWMA into a Duration for
// reporting.
func durationOf(ns float64) time.Duration { return time.Duration(ns) }

// ArmReport is one variant's state in a Snapshot.
type ArmReport struct {
	Spec    VariantSpec
	Pulls   int64
	EWMA    time.Duration
	Sampled bool
	// Fault-containment accounting (cumulative for the site's lifetime).
	Faults      int64 // contained internal faults on this arm
	Degraded    int64 // calls served by trusted-fallback re-execution
	Diverged    int64 // audit-revealed wrong results
	Quarantines int   // times this arm has been quarantined here
	Quarantined bool  // currently out of routing
}

// SiteReport is the introspectable state of one (function, class)
// tuning site: which variant is winning, how much exploration it cost,
// and how often drift forced a re-exploration.
type SiteReport struct {
	Fn           string
	Class        int
	Converged    bool // exploit phase reached (and not currently reopened)
	Best         VariantSpec
	Pulls        int64
	ExplorePulls int64
	Reopens      int
	// QuarantinedArms counts the arms currently out of routing at this
	// site (per-arm detail in Arms).
	QuarantinedArms int
	Arms            []ArmReport
}
