package autotune

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"math"
	"runtime"
	"sort"
	"time"

	cm "socrates/internal/cminor"
	"socrates/internal/cminor/autotune/persist"
)

// Warm starts. A tuner's learned tables — winner, per-arm estimates,
// pulls, quarantine state, per (function, input-class) site — are the
// product of |grid|×minSamples exploration calls per site, re-paid on
// every process restart unless persisted. SaveTo checkpoints every
// converged site into a persist log; LoadFrom seeds a fresh tuner from
// one, placing each site directly in the EXPLOIT phase so the first
// call after a restart already routes to the learned winner, with zero
// additional measure-phase calls.
//
// The log is keyed by CacheKey — a content hash of (program source,
// variant grid, host fingerprint) — so a stale binary's log, an edited
// kernel's, or another machine's is rejected as a unit at load and the
// tuner starts cold instead of routing on lies. Loaded estimates are
// priors, not facts: each seeded arm folds its first few fresh
// measurements in at a boosted EWMA weight (warmAlpha, decaying over
// warmDistrust samples — see armStats.update), so a winner that is no
// longer cheap is dragged up to its true cost within a couple of calls
// and the ordinary drift detector dethrones it through a re-measure.
// Sites still measuring at save time are not persisted — a partial
// table is not worth trusting — and a loaded record never overwrites a
// site that has already begun learning live.

// warmDistrust is how many post-load measurements of a seeded arm fold
// in at the boosted warmAlpha weight before the configured alpha takes
// over: enough to overwhelm a stale prior, few enough that a correct
// prior's estimate barely moves.
const warmDistrust = 3

// warmAlpha is the floor EWMA weight a distrusted (freshly loaded)
// arm's measurements carry. With the default alpha 0.3 and clipFactor
// 3, one sample at warmAlpha moves a badly stale winner's estimate
// past the drift band — the dethroning is immediate, not eventual.
const warmAlpha = 0.5

// CacheKey is the content key SaveTo/LoadFrom validate the persist log
// against: a hash of the program's canonical source (Program.
// SourceHash), the exact variant grid, and a host fingerprint
// (GOOS/GOARCH/Go version/CPU count). Any of those changing — an
// edited kernel, a regenerated grid, a different machine shape —
// changes the key, and the stale log is rejected at load as a unit.
func (t *AutoTuner) CacheKey() uint64 {
	h := fnv.New64a()
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], t.base.SourceHash())
	h.Write(u[:])
	for _, spec := range t.cfg.grid {
		h.Write([]byte{byte(spec.Backend), byte(spec.Opt), byte(spec.Passes)})
	}
	fmt.Fprintf(h, "%s/%s/%s/%d", runtime.GOOS, runtime.GOARCH, runtime.Version(), runtime.NumCPU())
	return h.Sum64()
}

// SaveTo checkpoints every converged site's learned table into the
// persist log at path (created if needed), keyed by CacheKey. Each
// checkpoint appends one record per converged site; the log supersedes
// older records by site key and self-compacts, so repeated saves keep
// the file O(live sites). Sites still in the measure phase are
// skipped: their tables are half-earned.
func (t *AutoTuner) SaveTo(path string) error {
	t.mu.Lock()
	recs := make([]persist.Record, 0, len(t.sites))
	for key, st := range t.sites {
		if st.phase != phaseExploit {
			continue
		}
		recs = append(recs, persist.Record{
			Key:     siteRecordKey(key),
			Payload: encodeSite(key, st, t.cfg.grid),
		})
	}
	t.mu.Unlock()
	// Deterministic record order: the sites map iterates randomly, but
	// two identical tuners must write byte-identical logs.
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	if len(recs) == 0 {
		return nil
	}
	return persist.Append(path, t.CacheKey(), recs)
}

// LoadFrom seeds the tuner from the persist log at path, returning how
// many sites were warm-started. Every loaded site enters directly in
// the EXPLOIT phase on its persisted winner — no measure burst — with
// estimates marked distrusted (see warmAlpha) so drift detection can
// still dethrone a winner the world has moved under.
//
// A missing log is a clean cold start (0, nil). An invalid log —
// corrupt, truncated, version-skewed, or written under a different
// content key — is reported as an error, and the tuner is left exactly
// as it was: cold sites stay cold, live sites stay live, nothing is
// poisoned. Callers that treat persistence as best-effort can ignore
// the error; routing is correct either way.
func (t *AutoTuner) LoadFrom(path string) (int, error) {
	recs, _, err := persist.Load(path, t.CacheKey())
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	warmed := 0
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, rec := range recs {
		sr, ok := decodeSite(rec.Payload, t.cfg.grid)
		if !ok || !t.base.HasFunc(sr.fn) {
			continue // a record the current grid/program cannot honour
		}
		key := siteKey{fn: sr.fn, class: sr.class}
		if st, live := t.sites[key]; live && st.pulls > 0 {
			continue // the site already started learning live; trust that
		}
		t.seedSite(key, sr)
		warmed++
	}
	return warmed, nil
}

// seedSite installs one decoded record as a live exploit-phase site.
// Caller holds the tuner mutex.
func (t *AutoTuner) seedSite(key siteKey, sr *siteRecord) {
	st := t.site(key)
	st.phase = phaseExploit
	st.cursor = 0
	st.best = sr.best
	st.baseline = sr.baseline
	st.pulls = sr.pulls
	st.explore = sr.explore
	st.reopens = sr.reopens
	st.nquar = 0
	quota := int64(t.cfg.minSamples)
	var faults, degraded, diverged, quars int64
	for i := range st.arms {
		a := &st.arms[i]
		ra := &sr.arms[i]
		*a = armStats{
			// Floor pulls past the measure quota: a loaded arm is past
			// measurement by construction, and update() must fold fresh
			// samples through the EWMA path, never the measure-phase min.
			pulls:       max(ra.pulls, quota+1),
			sampled:     ra.sampled,
			ewma:        ra.ewma,
			distrust:    0,
			faults:      ra.faults,
			degraded:    ra.degraded,
			diverged:    ra.diverged,
			quarantines: int(ra.quarantines),
			quarantined: ra.quarantined,
		}
		if a.sampled {
			a.distrust = warmDistrust
		}
		if a.quarantined {
			a.quarantineUntil = time.Unix(0, ra.quarantineUntil)
			st.nquar++
		}
		faults += ra.faults
		degraded += ra.degraded
		diverged += ra.diverged
		quars += int64(ra.quarantines)
	}
	// Mirror the lock-free counter block so Counters() and Snapshot()
	// agree about the warm-started history.
	st.ctr.pulls.Store(sr.pulls)
	st.ctr.faults.Store(faults)
	st.ctr.degraded.Store(degraded)
	st.ctr.diverged.Store(diverged)
	st.ctr.quarantines.Store(quars)
}

// siteRecordKey names a site's record in the log.
func siteRecordKey(key siteKey) string {
	return fmt.Sprintf("%s\x00%d", key.fn, key.class)
}

// siteRecord is the decoded form of one persisted site.
type siteRecord struct {
	fn       string
	class    int
	best     int // index into the current grid
	baseline float64
	pulls    int64
	explore  int64
	reopens  int
	arms     []armRecord
}

// armRecord is one persisted arm.
type armRecord struct {
	pulls           int64
	sampled         bool
	ewma            float64
	faults          int64
	degraded        int64
	diverged        int64
	quarantines     int64
	quarantined     bool
	quarantineUntil int64 // UnixNano, meaningful when quarantined
}

// Arm flag bits.
const (
	armSampled     = 1 << 0
	armQuarantined = 1 << 1
)

// encodeSite serializes one converged site: little-endian fixed-width
// fields behind the log's checksum, opening with the site identity
// (function name, class) so a decoded record is self-describing even
// though the record key spells the same pair.
func encodeSite(key siteKey, st *siteState, grid []VariantSpec) []byte {
	w := &recWriter{}
	w.str(key.fn)
	w.i64(int64(key.class))
	w.spec(grid[st.best])
	w.f64(st.baseline)
	w.i64(st.pulls)
	w.i64(st.explore)
	w.i64(int64(st.reopens))
	w.i64(int64(len(st.arms)))
	for i := range st.arms {
		a := &st.arms[i]
		w.spec(grid[i])
		w.i64(a.pulls)
		w.f64(a.ewma)
		var flags byte
		if a.sampled {
			flags |= armSampled
		}
		if a.quarantined {
			flags |= armQuarantined
		}
		w.buf = append(w.buf, flags)
		w.i64(a.faults)
		w.i64(a.degraded)
		w.i64(a.diverged)
		w.i64(int64(a.quarantines))
		var until int64
		if a.quarantined {
			until = a.quarantineUntil.UnixNano()
		}
		w.i64(until)
	}
	return w.buf
}

// decodeSite parses a site payload against the current grid. It is
// defensive even though the log checksums every record: a payload
// whose arm count or variant specs do not match the grid — possible
// only through a content-key collision or an encoder bug — is
// rejected, never half-applied.
func decodeSite(payload []byte, grid []VariantSpec) (*siteRecord, bool) {
	r := &recReader{buf: payload}
	sr := &siteRecord{}
	sr.fn = r.str()
	sr.class = int(r.i64())
	bestSpec, _ := r.spec()
	sr.baseline = r.f64()
	sr.pulls = r.i64()
	sr.explore = r.i64()
	sr.reopens = int(r.i64())
	narms := int(r.i64())
	if r.bad || narms != len(grid) {
		return nil, false
	}
	sr.best = -1
	for i, spec := range grid {
		if spec == bestSpec {
			sr.best = i
		}
	}
	if sr.best < 0 {
		return nil, false
	}
	sr.arms = make([]armRecord, narms)
	for i := range sr.arms {
		spec, _ := r.spec()
		if spec != grid[i] {
			return nil, false
		}
		a := &sr.arms[i]
		a.pulls = r.i64()
		a.ewma = r.f64()
		flags := r.byte()
		a.sampled = flags&armSampled != 0
		a.quarantined = flags&armQuarantined != 0
		a.faults = r.i64()
		a.degraded = r.i64()
		a.diverged = r.i64()
		a.quarantines = r.i64()
		a.quarantineUntil = r.i64()
	}
	if r.bad || len(r.buf) != r.off {
		return nil, false
	}
	return sr, true
}

// recWriter/recReader are the payload codec: fixed-width little-endian
// fields, length-prefixed strings, and a sticky error flag on the
// reader so decode paths need no per-field checks.

type recWriter struct{ buf []byte }

func (w *recWriter) i64(v int64) {
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], uint64(v))
	w.buf = append(w.buf, u[:]...)
}

func (w *recWriter) f64(v float64) { w.i64(int64(math.Float64bits(v))) }

func (w *recWriter) str(s string) {
	w.i64(int64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *recWriter) spec(s VariantSpec) {
	w.buf = append(w.buf, byte(s.Backend), byte(s.Opt), byte(s.Passes))
}

type recReader struct {
	buf []byte
	off int
	bad bool
}

func (r *recReader) take(n int) []byte {
	if r.bad || n < 0 || len(r.buf)-r.off < n {
		r.bad = true
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *recReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *recReader) f64() float64 { return math.Float64frombits(uint64(r.i64())) }

func (r *recReader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *recReader) str() string {
	n := r.i64()
	if n < 0 || n > int64(len(r.buf)) {
		r.bad = true
		return ""
	}
	return string(r.take(int(n)))
}

func (r *recReader) spec() (VariantSpec, bool) {
	b := r.take(3)
	if b == nil {
		return VariantSpec{}, false
	}
	return VariantSpec{
		Backend: cm.Backend(b[0]),
		Opt:     cm.OptLevel(b[1]),
		Passes:  cm.PassMask(b[2]),
	}, true
}
