package autotune

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	cm "socrates/internal/cminor"
	"socrates/internal/cminor/autotune/persist"
)

// Warm-start simulations: SaveTo/LoadFrom are driven through the same
// deterministic cost models as the convergence sims, so the restart
// story is pinned exactly — a converged site must re-serve its winner
// with zero additional measure-phase calls, a stale winner must be
// dethroned through distrust decay plus drift, and every class of bad
// log must degrade to an ordinary cold start.

// warmCost is the base cost model the warm-start sims share: O3 wins.
var warmCost = map[string]time.Duration{
	"O0": 400 * time.Microsecond, "O1": 300 * time.Microsecond,
	"O2": 120 * time.Microsecond, "O3": 90 * time.Microsecond,
	"bytecode": 140 * time.Microsecond,
}

// warmTuner builds a tuner in the warm-sim configuration: default grid,
// two-sample quotas, zero residual exploration (so any post-load pull
// of a non-best arm is test-visible), fixed seed.
func warmTuner(t *testing.T, sampler Sampler, opts ...Option) *AutoTuner {
	t.Helper()
	base := []Option{
		WithGrid(DefaultGrid()...),
		WithSampler(sampler),
		WithMinSamples(2),
		WithEpsilon(0),
		WithSeed(7),
	}
	tn, err := New(simProgram(t), append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func drive(t *testing.T, tn *AutoTuner, n int, args []any) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := tn.Call("probe", args...); err != nil {
			t.Fatal(err)
		}
	}
}

// convergedLog runs a fresh tuner to convergence and checkpoints it,
// returning the log path for load-side tests.
func convergedLog(t *testing.T, path string) {
	t.Helper()
	tn := warmTuner(t, &simSampler{cost: flatCost(warmCost)})
	drive(t, tn, 40, simArgs(16))
	if got := bestSpec(t, tn, "probe", SizeClass(simArgs(16))); got.String() != "O3" {
		t.Fatalf("setup converged to %v, want O3", got)
	}
	if err := tn.SaveTo(path); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartZeroReexploration is the tentpole pin: a restarted tuner
// seeded from a converged site's checkpoint serves the learned winner
// from its very first call, with zero additional measure-phase pulls on
// any arm — the exploration cost is paid once per program, not once per
// process.
func TestWarmStartZeroReexploration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.log")
	convergedLog(t, path)

	args := simArgs(16)
	class := SizeClass(args)
	tn := warmTuner(t, &simSampler{cost: flatCost(warmCost)})
	warmed, err := tn.LoadFrom(path)
	if err != nil || warmed != 1 {
		t.Fatalf("LoadFrom = (%d, %v), want (1, nil)", warmed, err)
	}
	// Converged before the first call: the winner is already routable.
	if got, ok := tn.Best("probe", class); !ok || got.String() != "O3" {
		t.Fatalf("post-load Best = (%v, %v), want (O3, true)", got, ok)
	}
	loaded := siteReport(t, tn, "probe", class)
	if !loaded.Converged {
		t.Fatal("loaded site is not converged")
	}

	const exploit = 30
	drive(t, tn, exploit, args)
	after := siteReport(t, tn, "probe", class)
	if got := bestSpec(t, tn, "probe", class); got.String() != "O3" {
		t.Fatalf("warm winner drifted to %v with an unchanged workload", got)
	}
	if after.Reopens != loaded.Reopens {
		t.Fatalf("unchanged workload reopened exploration: %d -> %d", loaded.Reopens, after.Reopens)
	}
	// Every post-restart call rode the winner: non-best arms gained no
	// pulls at all, and the winner took all of them.
	for i, arm := range after.Arms {
		if arm.Spec.String() == "O3" {
			if want := loaded.Arms[i].Pulls + exploit; arm.Pulls != want {
				t.Fatalf("winner pulls %d, want %d", arm.Pulls, want)
			}
			continue
		}
		if arm.Pulls != loaded.Arms[i].Pulls {
			t.Fatalf("arm %v re-measured after warm start: %d -> %d pulls",
				arm.Spec, loaded.Arms[i].Pulls, arm.Pulls)
		}
	}
}

// TestWarmStartSaveSkipsUnconverged: a site still in its measure phase
// has only a half-earned table — SaveTo must not checkpoint it, and
// with nothing converged it must not even create the file.
func TestWarmStartSaveSkipsUnconverged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.log")
	tn := warmTuner(t, &simSampler{cost: flatCost(warmCost)})
	drive(t, tn, 3, simArgs(16)) // 3 of the 10-call measure budget
	if err := tn.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unconverged save created a log: %v", err)
	}
}

// TestWarmStartDeterminism pins the restart story end to end as a pure
// function: two identical runs write byte-identical logs, and two
// identical load-then-drive continuations report identical state.
func TestWarmStartDeterminism(t *testing.T) {
	small, large := simArgs(8), simArgs(1024)
	save := func(path string) {
		tn := warmTuner(t, &simSampler{cost: flatCost(warmCost)})
		for i := 0; i < 30; i++ {
			drive(t, tn, 1, small)
			drive(t, tn, 1, large)
		}
		if err := tn.SaveTo(path); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.log"), filepath.Join(dir, "b.log")
	save(p1)
	save(p2)
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("identical runs wrote different logs (%d vs %d bytes)", len(b1), len(b2))
	}

	restart := func() []SiteReport {
		tn := warmTuner(t, &simSampler{cost: flatCost(warmCost)})
		if warmed, err := tn.LoadFrom(p1); err != nil || warmed != 2 {
			t.Fatalf("LoadFrom = (%d, %v), want (2, nil)", warmed, err)
		}
		for i := 0; i < 10; i++ {
			drive(t, tn, 1, small)
			drive(t, tn, 1, large)
		}
		return tn.Snapshot()
	}
	a, b := restart(), restart()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("warm restarts diverged:\n%+v\n%+v", a, b)
	}
}

// TestWarmStartStaleWinnerDethroned: the world moved while the process
// was down — the persisted winner O3 now costs 5x. The loaded estimate
// is a distrusted prior: fresh samples fold in at warmAlpha, the very
// first measurements drag the estimate past the drift band, exploration
// reopens, and the tuner settles on the new true best.
func TestWarmStartStaleWinnerDethroned(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.log")
	convergedLog(t, path)

	stale := &simSampler{cost: func(call int64, spec VariantSpec, _ int) time.Duration {
		c := warmCost[spec.String()]
		if spec.String() == "O3" {
			c *= 5 // the persisted winner degraded across the restart
		}
		return time.Duration(float64(c) * jitter(call))
	}}
	tn := warmTuner(t, stale, WithDriftFactor(0.5))
	if warmed, err := tn.LoadFrom(path); err != nil || warmed != 1 {
		t.Fatalf("LoadFrom = (%d, %v), want (1, nil)", warmed, err)
	}
	args := simArgs(16)
	class := SizeClass(args)
	drive(t, tn, 60, args)
	rep := siteReport(t, tn, "probe", class)
	if rep.Reopens < 1 {
		t.Fatal("stale warm-started winner never tripped the drift detector")
	}
	if got := bestSpec(t, tn, "probe", class); got.String() != "O2" {
		t.Fatalf("post-dethroning winner is %v, want O2", got)
	}
}

// TestWarmStartBadLogColdStart drives all four bad-log classes —
// corrupt byte, truncated tail, version skew, content-key mismatch —
// and asserts each degrades to a cold start: LoadFrom reports the typed
// error, seeds nothing, and the untouched tuner still converges
// normally by ordinary exploration. A missing log is not even an error.
func TestWarmStartBadLogColdStart(t *testing.T) {
	src := filepath.Join(t.TempDir(), "src.log")
	convergedLog(t, src)
	pristine, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mangle  func(t *testing.T, path string)
		wantErr error
	}{
		{"corrupt record byte", func(t *testing.T, path string) {
			// Flip one payload byte: past the 24-byte header and into
			// the first record's body.
			if err := persist.Corrupt(path, 24+12); err != nil {
				t.Fatal(err)
			}
		}, persist.ErrCorrupt},
		{"truncated tail", func(t *testing.T, path string) {
			if err := os.Truncate(path, int64(len(pristine)-7)); err != nil {
				t.Fatal(err)
			}
		}, persist.ErrCorrupt},
		{"version skew", func(t *testing.T, path string) {
			// The version field follows the 8-byte magic.
			if err := persist.Corrupt(path, 8); err != nil {
				t.Fatal(err)
			}
		}, persist.ErrVersionSkew},
	}
	args := simArgs(16)
	class := SizeClass(args)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "tune.log")
			if err := os.WriteFile(path, pristine, 0o644); err != nil {
				t.Fatal(err)
			}
			tc.mangle(t, path)
			tn := warmTuner(t, &simSampler{cost: flatCost(warmCost)})
			warmed, err := tn.LoadFrom(path)
			if !errors.Is(err, tc.wantErr) || warmed != 0 {
				t.Fatalf("LoadFrom = (%d, %v), want (0, %v)", warmed, err, tc.wantErr)
			}
			if _, ok := tn.Best("probe", class); ok {
				t.Fatal("a rejected log seeded a winner")
			}
			// Cold start proceeds exactly as if no log existed.
			drive(t, tn, 40, args)
			if got := bestSpec(t, tn, "probe", class); got.String() != "O3" {
				t.Fatalf("cold fallback converged to %v, want O3", got)
			}
		})
	}

	t.Run("key mismatch", func(t *testing.T) {
		// A tuner over a different variant grid has a different content
		// key: the same file must be rejected as a unit.
		tn, err := New(simProgram(t),
			WithGrid(DefaultGrid()[:4]...),
			WithSampler(&simSampler{cost: flatCost(warmCost)}),
			WithMinSamples(2), WithEpsilon(0), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		warmed, err := tn.LoadFrom(src)
		if !errors.Is(err, persist.ErrKeyMismatch) || warmed != 0 {
			t.Fatalf("LoadFrom = (%d, %v), want (0, ErrKeyMismatch)", warmed, err)
		}
	})

	t.Run("missing log", func(t *testing.T) {
		tn := warmTuner(t, &simSampler{cost: flatCost(warmCost)})
		warmed, err := tn.LoadFrom(filepath.Join(t.TempDir(), "never-written.log"))
		if err != nil || warmed != 0 {
			t.Fatalf("LoadFrom = (%d, %v), want (0, nil)", warmed, err)
		}
	})
}

// TestWarmStartSkipsLiveSites: a record never overwrites a site that
// has already begun learning in this process — live measurements beat
// persisted ones.
func TestWarmStartSkipsLiveSites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.log")
	convergedLog(t, path) // persisted winner: O3

	// In this process the workload is different: O2 wins.
	shifted := map[string]time.Duration{
		"O0": 400 * time.Microsecond, "O1": 300 * time.Microsecond,
		"O2": 60 * time.Microsecond, "O3": 90 * time.Microsecond,
		"bytecode": 140 * time.Microsecond,
	}
	tn := warmTuner(t, &simSampler{cost: flatCost(shifted)})
	args := simArgs(16)
	drive(t, tn, 3, args) // the site is live before the load
	warmed, err := tn.LoadFrom(path)
	if err != nil || warmed != 0 {
		t.Fatalf("LoadFrom = (%d, %v), want (0, nil): live site must be skipped", warmed, err)
	}
	drive(t, tn, 40, args)
	if got := bestSpec(t, tn, "probe", SizeClass(args)); got.String() != "O2" {
		t.Fatalf("live learning was clobbered by the log: winner %v, want O2", got)
	}
}

// TestWarmStartQuarantineRoundTrip: trust state survives the restart —
// an arm quarantined before the save is still quarantined (with its
// fault accounting) after the load, and the seeded site is converged
// without it.
func TestWarmStartQuarantineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.log")
	clk := &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
	inj := cm.NewScriptedInjector(cm.FaultRule{
		Backend: cm.BackendCompiled, Opt: cm.O2, Fn: "probe",
		Call: 1, Kind: cm.FaultPanic, Point: cm.FaultAtExit,
	})
	tn := warmTuner(t, &simSampler{cost: flatCost(warmCost)},
		WithClock(clk),
		WithFaultInjector(inj),
		WithQuarantineBackoff(time.Hour, time.Hour))
	args := simArgs(16)
	class := SizeClass(args)
	drive(t, tn, 40, args)
	before := siteReport(t, tn, "probe", class)
	if before.QuarantinedArms != 1 {
		t.Fatalf("setup: %d quarantined arms, want 1 (the injected O2 fault)", before.QuarantinedArms)
	}
	if err := tn.SaveTo(path); err != nil {
		t.Fatal(err)
	}

	warm := warmTuner(t, &simSampler{cost: flatCost(warmCost)}, WithClock(clk))
	if warmed, err := warm.LoadFrom(path); err != nil || warmed != 1 {
		t.Fatalf("LoadFrom = (%d, %v), want (1, nil)", warmed, err)
	}
	after := siteReport(t, warm, "probe", class)
	if !after.Converged || after.QuarantinedArms != 1 {
		t.Fatalf("loaded site: converged=%v quarantined=%d, want true/1", after.Converged, after.QuarantinedArms)
	}
	for i, arm := range after.Arms {
		want := before.Arms[i]
		if arm.Quarantined != want.Quarantined || arm.Quarantines != want.Quarantines ||
			arm.Faults != want.Faults {
			t.Fatalf("arm %v trust state did not round-trip:\n got %+v\nwant %+v", arm.Spec, arm, want)
		}
	}
	if got := bestSpec(t, warm, "probe", class); got.String() != "O3" {
		t.Fatalf("loaded winner %v, want O3", got)
	}
}
