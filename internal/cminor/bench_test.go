package cminor

import "testing"

// Benchmarks comparing the original tree-walking interpreter (Walker)
// against the compiled resolve → compile → execute pipeline (Interp) on
// representative Polybench-shaped kernels. Run with:
//
//	go test ./internal/cminor -bench . -benchmem
//
// The kernel sources and canonical argument builders live in
// kernels.go (BenchKernels) so the autotuning layer's benchmarks can
// sweep the same corpus. The step budget is lifted so long benchmark
// runs never trip the runaway guard.

func BenchmarkGemmWalker(b *testing.B) {
	const n = 32
	w := NewWalker(MustParse("gemm.c", benchGemmSrc))
	w.MaxSteps = 1 << 62
	args := benchGemmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("gemm", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGemmCompiled(b *testing.B) {
	const n = 32
	in := NewInterp(MustParse("gemm.c", benchGemmSrc))
	in.MaxSteps = 1 << 62
	args := benchGemmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("gemm", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiWalker(b *testing.B) {
	const n = 48
	w := NewWalker(MustParse("jacobi.c", benchJacobiSrc))
	w.MaxSteps = 1 << 62
	args := benchJacobiArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("jacobi", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiCompiled(b *testing.B) {
	const n = 48
	in := NewInterp(MustParse("jacobi.c", benchJacobiSrc))
	in.MaxSteps = 1 << 62
	args := benchJacobiArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("jacobi", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAxpyWalker(b *testing.B) {
	const n = 4096
	w := NewWalker(MustParse("axpy.c", benchAxpySrc))
	w.MaxSteps = 1 << 62
	x, y := benchVector(n), benchVector(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("axpy", IntV(n), FloatV(2.0), x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAxpyCompiled(b *testing.B) {
	const n = 4096
	in := NewInterp(MustParse("axpy.c", benchAxpySrc))
	in.MaxSteps = 1 << 62
	x, y := benchVector(n), benchVector(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("axpy", IntV(n), FloatV(2.0), x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark2mmWalker(b *testing.B) {
	const n = 24
	w := NewWalker(MustParse("2mm.c", bench2mmSrc))
	w.MaxSteps = 1 << 62
	args := bench2mmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("mm2", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark2mmCompiled(b *testing.B) {
	const n = 24
	in := NewInterp(MustParse("2mm.c", bench2mmSrc))
	in.MaxSteps = 1 << 62
	args := bench2mmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("mm2", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeidel2dWalker(b *testing.B) {
	const n = 48
	w := NewWalker(MustParse("seidel.c", benchSeidelSrc))
	w.MaxSteps = 1 << 62
	args := benchSeidelArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("seidel2d", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeidel2dCompiled(b *testing.B) {
	const n = 48
	in := NewInterp(MustParse("seidel.c", benchSeidelSrc))
	in.MaxSteps = 1 << 62
	args := benchSeidelArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("seidel2d", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAtaxWalker(b *testing.B) {
	const n = 48
	w := NewWalker(MustParse("atax.c", benchAtaxSrc))
	w.MaxSteps = 1 << 62
	args := benchAtaxArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("atax", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAtaxCompiled(b *testing.B) {
	const n = 48
	in := NewInterp(MustParse("atax.c", benchAtaxSrc))
	in.MaxSteps = 1 << 62
	args := benchAtaxArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("atax", args...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptLevels sweeps every corpus kernel across O0–O3 plus the
// O4 flat-bytecode backend so BENCH_<n>.json carries one record per
// (kernel, variant) — the design-space sample SOCRATES' design-time
// exploration assumes, and the static baseline the autotuner's online
// selection starts from.
func BenchmarkOptLevels(b *testing.B) {
	variants := []struct {
		label string
		opts  []Option
	}{
		{"O0", []Option{WithOptLevel(O0)}},
		{"O1", []Option{WithOptLevel(O1)}},
		{"O2", []Option{WithOptLevel(O2)}},
		{"O3", []Option{WithOptLevel(O3)}},
		{"O4", []Option{WithBackend(BackendBytecode), WithOptLevel(O3)}},
	}
	for _, k := range BenchKernels {
		prog, err := Compile(MustParse(k.File, k.Src), WithMaxSteps(1<<62))
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range variants {
			vp, err := prog.Variant(v.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(k.Name+"/"+v.label, func(b *testing.B) {
				inst := vp.NewInstance()
				args := k.Args()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := inst.Call(k.Fn, args...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCompileGemm measures one-time pipeline cost (resolve +
// closure lowering), which is paid once per program, not per call.
func BenchmarkCompileGemm(b *testing.B) {
	f := MustParse("gemm.c", benchGemmSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(f); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel benchmarks: one immutable *Program shared by every
// goroutine, one pooled Instance (and argument set) per goroutine.
// Throughput should scale with GOMAXPROCS since instances share no
// mutable state.

func benchParallel(b *testing.B, src, file, fn string, mkArgs func() []any) {
	b.Helper()
	prog, err := Compile(MustParse(file, src), WithMaxSteps(1<<62))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		inst := prog.NewInstance()
		args := mkArgs()
		for pb.Next() {
			if _, err := inst.Call(fn, args...); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkGemmParallel(b *testing.B) {
	benchParallel(b, benchGemmSrc, "gemm.c", "gemm", func() []any { return benchGemmArgs(32) })
}

func BenchmarkJacobiParallel(b *testing.B) {
	benchParallel(b, benchJacobiSrc, "jacobi.c", "jacobi", func() []any { return benchJacobiArgs(48) })
}

func BenchmarkAxpyParallel(b *testing.B) {
	benchParallel(b, benchAxpySrc, "axpy.c", "axpy", func() []any {
		return []any{IntV(4096), FloatV(2.0), benchVector(4096), benchVector(4096)}
	})
}
