package cminor

import "testing"

// Benchmarks comparing the original tree-walking interpreter (Walker)
// against the compiled resolve → compile → execute pipeline (Interp) on
// representative Polybench-shaped kernels. Run with:
//
//	go test ./internal/cminor -bench . -benchmem
//
// The step budget is lifted so long benchmark runs never trip the
// runaway guard.

const benchGemmSrc = `
void gemm(int n, double alpha, double beta, double A[n][n], double B[n][n], double C[n][n]) {
  int i, j, k;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      C[i][j] = C[i][j] * beta;
      for (k = 0; k < n; k++) {
        C[i][j] += alpha * A[i][k] * B[k][j];
      }
    }
  }
}
`

const benchJacobiSrc = `
void jacobi(int n, int steps, double A[n][n], double B[n][n]) {
  int t, i, j;
  for (t = 0; t < steps; t++) {
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i - 1][j] + A[i + 1][j]);
      }
    }
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        A[i][j] = B[i][j];
      }
    }
  }
}
`

const benchAxpySrc = `
void axpy(int n, double alpha, double x[n], double y[n]) {
  int i;
  for (i = 0; i < n; i++) {
    y[i] = y[i] + alpha * x[i];
  }
}
`

const bench2mmSrc = `
void mm2(int ni, int nj, int nk, int nl, double alpha, double beta,
         double tmp[ni][nj], double A[ni][nk], double B[nk][nj],
         double C[nj][nl], double D[ni][nl]) {
  int i, j, k;
  for (i = 0; i < ni; i++) {
    for (j = 0; j < nj; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < nk; k++) {
        tmp[i][j] += alpha * A[i][k] * B[k][j];
      }
    }
  }
  for (i = 0; i < ni; i++) {
    for (j = 0; j < nl; j++) {
      D[i][j] *= beta;
      for (k = 0; k < nj; k++) {
        D[i][j] += tmp[i][k] * C[k][j];
      }
    }
  }
}
`

const benchSeidelSrc = `
void seidel2d(int tsteps, int n, double A[n][n]) {
  int t, i, j;
  for (t = 0; t < tsteps; t++) {
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                 + A[i][j - 1] + A[i][j] + A[i][j + 1]
                 + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
      }
    }
  }
}
`

const benchAtaxSrc = `
void atax(int m, int n, double A[m][n], double x[n], double y[n], double tmp[m]) {
  int i, j;
  for (i = 0; i < n; i++) {
    y[i] = 0.0;
  }
  for (i = 0; i < m; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < n; j++) {
      tmp[i] = tmp[i] + A[i][j] * x[j];
    }
    for (j = 0; j < n; j++) {
      y[j] = y[j] + A[i][j] * tmp[i];
    }
  }
}
`

func benchMatrix(n int) *Array {
	a := NewArray(n, n)
	for i := range a.Data {
		a.Data[i] = float64(i%13) * 0.37
	}
	return a
}

func benchVector(n int) *Array {
	a := NewArray(n)
	for i := range a.Data {
		a.Data[i] = float64(i%7) * 1.1
	}
	return a
}

func benchGemmArgs(n int) []any {
	return []any{IntV(int64(n)), FloatV(1.5), FloatV(0.5),
		benchMatrix(n), benchMatrix(n), benchMatrix(n)}
}

func BenchmarkGemmWalker(b *testing.B) {
	const n = 32
	w := NewWalker(MustParse("gemm.c", benchGemmSrc))
	w.MaxSteps = 1 << 62
	args := benchGemmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("gemm", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGemmCompiled(b *testing.B) {
	const n = 32
	in := NewInterp(MustParse("gemm.c", benchGemmSrc))
	in.MaxSteps = 1 << 62
	args := benchGemmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("gemm", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func benchJacobiArgs(n int) []any {
	return []any{IntV(int64(n)), IntV(4), benchMatrix(n), benchMatrix(n)}
}

func BenchmarkJacobiWalker(b *testing.B) {
	const n = 48
	w := NewWalker(MustParse("jacobi.c", benchJacobiSrc))
	w.MaxSteps = 1 << 62
	args := benchJacobiArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("jacobi", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiCompiled(b *testing.B) {
	const n = 48
	in := NewInterp(MustParse("jacobi.c", benchJacobiSrc))
	in.MaxSteps = 1 << 62
	args := benchJacobiArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("jacobi", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAxpyWalker(b *testing.B) {
	const n = 4096
	w := NewWalker(MustParse("axpy.c", benchAxpySrc))
	w.MaxSteps = 1 << 62
	x, y := benchVector(n), benchVector(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("axpy", IntV(n), FloatV(2.0), x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAxpyCompiled(b *testing.B) {
	const n = 4096
	in := NewInterp(MustParse("axpy.c", benchAxpySrc))
	in.MaxSteps = 1 << 62
	x, y := benchVector(n), benchVector(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("axpy", IntV(n), FloatV(2.0), x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func bench2mmArgs(n int) []any {
	return []any{IntV(int64(n)), IntV(int64(n)), IntV(int64(n)), IntV(int64(n)),
		FloatV(1.5), FloatV(0.5),
		benchMatrix(n), benchMatrix(n), benchMatrix(n), benchMatrix(n), benchMatrix(n)}
}

func Benchmark2mmWalker(b *testing.B) {
	const n = 24
	w := NewWalker(MustParse("2mm.c", bench2mmSrc))
	w.MaxSteps = 1 << 62
	args := bench2mmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("mm2", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark2mmCompiled(b *testing.B) {
	const n = 24
	in := NewInterp(MustParse("2mm.c", bench2mmSrc))
	in.MaxSteps = 1 << 62
	args := bench2mmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("mm2", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSeidelArgs(n int) []any {
	return []any{IntV(4), IntV(int64(n)), benchMatrix(n)}
}

func BenchmarkSeidel2dWalker(b *testing.B) {
	const n = 48
	w := NewWalker(MustParse("seidel.c", benchSeidelSrc))
	w.MaxSteps = 1 << 62
	args := benchSeidelArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("seidel2d", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeidel2dCompiled(b *testing.B) {
	const n = 48
	in := NewInterp(MustParse("seidel.c", benchSeidelSrc))
	in.MaxSteps = 1 << 62
	args := benchSeidelArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("seidel2d", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAtaxArgs(n int) []any {
	return []any{IntV(int64(n)), IntV(int64(n)), benchMatrix(n),
		benchVector(n), benchVector(n), benchVector(n)}
}

func BenchmarkAtaxWalker(b *testing.B) {
	const n = 48
	w := NewWalker(MustParse("atax.c", benchAtaxSrc))
	w.MaxSteps = 1 << 62
	args := benchAtaxArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("atax", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAtaxCompiled(b *testing.B) {
	const n = 48
	in := NewInterp(MustParse("atax.c", benchAtaxSrc))
	in.MaxSteps = 1 << 62
	args := benchAtaxArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("atax", args...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileGemm measures one-time pipeline cost (resolve +
// closure lowering), which is paid once per program, not per call.
func BenchmarkCompileGemm(b *testing.B) {
	f := MustParse("gemm.c", benchGemmSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(f); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel benchmarks: one immutable *Program shared by every
// goroutine, one pooled Instance (and argument set) per goroutine.
// Throughput should scale with GOMAXPROCS since instances share no
// mutable state.

func benchParallel(b *testing.B, src, file, fn string, mkArgs func() []any) {
	b.Helper()
	prog, err := Compile(MustParse(file, src), WithMaxSteps(1<<62))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		inst := prog.NewInstance()
		args := mkArgs()
		for pb.Next() {
			if _, err := inst.Call(fn, args...); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkGemmParallel(b *testing.B) {
	benchParallel(b, benchGemmSrc, "gemm.c", "gemm", func() []any { return benchGemmArgs(32) })
}

func BenchmarkJacobiParallel(b *testing.B) {
	benchParallel(b, benchJacobiSrc, "jacobi.c", "jacobi", func() []any { return benchJacobiArgs(48) })
}

func BenchmarkAxpyParallel(b *testing.B) {
	benchParallel(b, benchAxpySrc, "axpy.c", "axpy", func() []any {
		return []any{IntV(4096), FloatV(2.0), benchVector(4096), benchVector(4096)}
	})
}
