package cminor

import "testing"

// Benchmarks comparing the original tree-walking interpreter (Walker)
// against the compiled resolve → compile → execute pipeline (Interp) on
// representative Polybench-shaped kernels. Run with:
//
//	go test ./internal/cminor -bench . -benchmem
//
// The step budget is lifted so long benchmark runs never trip the
// runaway guard.

const benchGemmSrc = `
void gemm(int n, double alpha, double beta, double A[n][n], double B[n][n], double C[n][n]) {
  int i, j, k;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      C[i][j] = C[i][j] * beta;
      for (k = 0; k < n; k++) {
        C[i][j] += alpha * A[i][k] * B[k][j];
      }
    }
  }
}
`

const benchJacobiSrc = `
void jacobi(int n, int steps, double A[n][n], double B[n][n]) {
  int t, i, j;
  for (t = 0; t < steps; t++) {
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i - 1][j] + A[i + 1][j]);
      }
    }
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        A[i][j] = B[i][j];
      }
    }
  }
}
`

const benchAxpySrc = `
void axpy(int n, double alpha, double x[n], double y[n]) {
  int i;
  for (i = 0; i < n; i++) {
    y[i] = y[i] + alpha * x[i];
  }
}
`

const bench2mmSrc = `
void mm2(int ni, int nj, int nk, int nl, double alpha, double beta,
         double tmp[ni][nj], double A[ni][nk], double B[nk][nj],
         double C[nj][nl], double D[ni][nl]) {
  int i, j, k;
  for (i = 0; i < ni; i++) {
    for (j = 0; j < nj; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < nk; k++) {
        tmp[i][j] += alpha * A[i][k] * B[k][j];
      }
    }
  }
  for (i = 0; i < ni; i++) {
    for (j = 0; j < nl; j++) {
      D[i][j] *= beta;
      for (k = 0; k < nj; k++) {
        D[i][j] += tmp[i][k] * C[k][j];
      }
    }
  }
}
`

const benchSeidelSrc = `
void seidel2d(int tsteps, int n, double A[n][n]) {
  int t, i, j;
  for (t = 0; t < tsteps; t++) {
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                 + A[i][j - 1] + A[i][j] + A[i][j + 1]
                 + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
      }
    }
  }
}
`

const benchAtaxSrc = `
void atax(int m, int n, double A[m][n], double x[n], double y[n], double tmp[m]) {
  int i, j;
  for (i = 0; i < n; i++) {
    y[i] = 0.0;
  }
  for (i = 0; i < m; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < n; j++) {
      tmp[i] = tmp[i] + A[i][j] * x[j];
    }
    for (j = 0; j < n; j++) {
      y[j] = y[j] + A[i][j] * tmp[i];
    }
  }
}
`

// mvt, trisolv and cholesky extend the suite with triangular loops and
// diagonal accesses — the shapes the O3 range analysis is built for.

const benchMvtSrc = `
void mvt(int n, double x1[n], double x2[n], double y1[n], double y2[n], double A[n][n]) {
  int i, j;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      x1[i] = x1[i] + A[i][j] * y1[j];
    }
  }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      x2[i] = x2[i] + A[j][i] * y2[j];
    }
  }
}
`

const benchTrisolvSrc = `
void trisolv(int n, double L[n][n], double x[n], double b[n]) {
  int i, j;
  for (i = 0; i < n; i++) {
    x[i] = b[i];
    for (j = 0; j < i; j++) {
      x[i] = x[i] - L[i][j] * x[j];
    }
    x[i] = x[i] / L[i][i];
  }
}
`

const benchCholeskySrc = `
void cholesky(int n, double A[n][n]) {
  int i, j, k;
  for (i = 0; i < n; i++) {
    for (j = 0; j < i; j++) {
      for (k = 0; k < j; k++) {
        A[i][j] -= A[i][k] * A[j][k];
      }
      A[i][j] /= A[j][j];
    }
    for (k = 0; k < i; k++) {
      A[i][i] -= A[i][k] * A[i][k];
    }
    A[i][i] = sqrt(A[i][i]);
  }
}
`

// benchNormsSrc exercises the O3 inliner: the inner loop's only call is
// a tiny leaf, which blocks every loop optimization below O3.
const benchNormsSrc = `
double sq(double x) { return x * x; }
void norms(int n, double A[n][n], double out[n]) {
  int i, j;
  for (i = 0; i < n; i++) {
    out[i] = 0.0;
    for (j = 0; j < n; j++) {
      out[i] = out[i] + sq(A[i][j]);
    }
  }
}
`

func benchMatrix(n int) *Array {
	a := NewArray(n, n)
	for i := range a.Data {
		a.Data[i] = float64(i%13) * 0.37
	}
	return a
}

func benchVector(n int) *Array {
	a := NewArray(n)
	for i := range a.Data {
		a.Data[i] = float64(i%7) * 1.1
	}
	return a
}

func benchGemmArgs(n int) []any {
	return []any{IntV(int64(n)), FloatV(1.5), FloatV(0.5),
		benchMatrix(n), benchMatrix(n), benchMatrix(n)}
}

func BenchmarkGemmWalker(b *testing.B) {
	const n = 32
	w := NewWalker(MustParse("gemm.c", benchGemmSrc))
	w.MaxSteps = 1 << 62
	args := benchGemmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("gemm", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGemmCompiled(b *testing.B) {
	const n = 32
	in := NewInterp(MustParse("gemm.c", benchGemmSrc))
	in.MaxSteps = 1 << 62
	args := benchGemmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("gemm", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func benchJacobiArgs(n int) []any {
	return []any{IntV(int64(n)), IntV(4), benchMatrix(n), benchMatrix(n)}
}

func BenchmarkJacobiWalker(b *testing.B) {
	const n = 48
	w := NewWalker(MustParse("jacobi.c", benchJacobiSrc))
	w.MaxSteps = 1 << 62
	args := benchJacobiArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("jacobi", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiCompiled(b *testing.B) {
	const n = 48
	in := NewInterp(MustParse("jacobi.c", benchJacobiSrc))
	in.MaxSteps = 1 << 62
	args := benchJacobiArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("jacobi", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAxpyWalker(b *testing.B) {
	const n = 4096
	w := NewWalker(MustParse("axpy.c", benchAxpySrc))
	w.MaxSteps = 1 << 62
	x, y := benchVector(n), benchVector(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("axpy", IntV(n), FloatV(2.0), x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAxpyCompiled(b *testing.B) {
	const n = 4096
	in := NewInterp(MustParse("axpy.c", benchAxpySrc))
	in.MaxSteps = 1 << 62
	x, y := benchVector(n), benchVector(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("axpy", IntV(n), FloatV(2.0), x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func bench2mmArgs(n int) []any {
	return []any{IntV(int64(n)), IntV(int64(n)), IntV(int64(n)), IntV(int64(n)),
		FloatV(1.5), FloatV(0.5),
		benchMatrix(n), benchMatrix(n), benchMatrix(n), benchMatrix(n), benchMatrix(n)}
}

func Benchmark2mmWalker(b *testing.B) {
	const n = 24
	w := NewWalker(MustParse("2mm.c", bench2mmSrc))
	w.MaxSteps = 1 << 62
	args := bench2mmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("mm2", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark2mmCompiled(b *testing.B) {
	const n = 24
	in := NewInterp(MustParse("2mm.c", bench2mmSrc))
	in.MaxSteps = 1 << 62
	args := bench2mmArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("mm2", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSeidelArgs(n int) []any {
	return []any{IntV(4), IntV(int64(n)), benchMatrix(n)}
}

func BenchmarkSeidel2dWalker(b *testing.B) {
	const n = 48
	w := NewWalker(MustParse("seidel.c", benchSeidelSrc))
	w.MaxSteps = 1 << 62
	args := benchSeidelArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("seidel2d", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeidel2dCompiled(b *testing.B) {
	const n = 48
	in := NewInterp(MustParse("seidel.c", benchSeidelSrc))
	in.MaxSteps = 1 << 62
	args := benchSeidelArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("seidel2d", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAtaxArgs(n int) []any {
	return []any{IntV(int64(n)), IntV(int64(n)), benchMatrix(n),
		benchVector(n), benchVector(n), benchVector(n)}
}

func BenchmarkAtaxWalker(b *testing.B) {
	const n = 48
	w := NewWalker(MustParse("atax.c", benchAtaxSrc))
	w.MaxSteps = 1 << 62
	args := benchAtaxArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Call("atax", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAtaxCompiled(b *testing.B) {
	const n = 48
	in := NewInterp(MustParse("atax.c", benchAtaxSrc))
	in.MaxSteps = 1 << 62
	args := benchAtaxArgs(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Call("atax", args...); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMvtArgs(n int) []any {
	return []any{IntV(int64(n)), benchVector(n), benchVector(n), benchVector(n),
		benchVector(n), benchMatrix(n)}
}

func benchTrisolvArgs(n int) []any {
	L := NewArray(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			L.Set(float64(i+j)/float64(n)+1.0, i, j)
		}
	}
	return []any{IntV(int64(n)), L, NewArray(n), benchVector(n)}
}

func benchCholeskyArgs(n int) []any {
	A := NewArray(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.01 * float64((i*j)%13)
			if i == j {
				v = float64(n) + 2.0 // diagonally dominant
			}
			A.Set(v, i, j)
		}
	}
	return []any{IntV(int64(n)), A}
}

func benchNormsArgs(n int) []any {
	return []any{IntV(int64(n)), benchMatrix(n), benchVector(n)}
}

// benchSweep is the kernel matrix `make bench` records per opt level —
// the per-variant data the autotuning layer will select on.
var benchSweep = []struct {
	name string
	src  string
	file string
	fn   string
	args func() []any
}{
	{"gemm", benchGemmSrc, "gemm.c", "gemm", func() []any { return benchGemmArgs(32) }},
	{"jacobi", benchJacobiSrc, "jacobi.c", "jacobi", func() []any { return benchJacobiArgs(48) }},
	{"axpy", benchAxpySrc, "axpy.c", "axpy", func() []any {
		return []any{IntV(4096), FloatV(2.0), benchVector(4096), benchVector(4096)}
	}},
	{"2mm", bench2mmSrc, "2mm.c", "mm2", func() []any { return bench2mmArgs(24) }},
	{"seidel2d", benchSeidelSrc, "seidel.c", "seidel2d", func() []any { return benchSeidelArgs(48) }},
	{"atax", benchAtaxSrc, "atax.c", "atax", func() []any { return benchAtaxArgs(48) }},
	{"mvt", benchMvtSrc, "mvt.c", "mvt", func() []any { return benchMvtArgs(48) }},
	{"trisolv", benchTrisolvSrc, "trisolv.c", "trisolv", func() []any { return benchTrisolvArgs(64) }},
	{"cholesky", benchCholeskySrc, "cholesky.c", "cholesky", func() []any { return benchCholeskyArgs(32) }},
	{"norms", benchNormsSrc, "norms.c", "norms", func() []any { return benchNormsArgs(48) }},
}

// BenchmarkOptLevels sweeps every kernel across O0–O3 so BENCH_<n>.json
// carries one record per (kernel, variant) — the design-space sample
// SOCRATES' design-time exploration assumes.
func BenchmarkOptLevels(b *testing.B) {
	for _, k := range benchSweep {
		prog, err := Compile(MustParse(k.file, k.src), WithMaxSteps(1<<62))
		if err != nil {
			b.Fatal(err)
		}
		for _, lvl := range []OptLevel{O0, O1, O2, O3} {
			vp, err := prog.Variant(WithOptLevel(lvl))
			if err != nil {
				b.Fatal(err)
			}
			b.Run(k.name+"/"+lvl.String(), func(b *testing.B) {
				inst := vp.NewInstance()
				args := k.args()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := inst.Call(k.fn, args...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCompileGemm measures one-time pipeline cost (resolve +
// closure lowering), which is paid once per program, not per call.
func BenchmarkCompileGemm(b *testing.B) {
	f := MustParse("gemm.c", benchGemmSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(f); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel benchmarks: one immutable *Program shared by every
// goroutine, one pooled Instance (and argument set) per goroutine.
// Throughput should scale with GOMAXPROCS since instances share no
// mutable state.

func benchParallel(b *testing.B, src, file, fn string, mkArgs func() []any) {
	b.Helper()
	prog, err := Compile(MustParse(file, src), WithMaxSteps(1<<62))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		inst := prog.NewInstance()
		args := mkArgs()
		for pb.Next() {
			if _, err := inst.Call(fn, args...); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkGemmParallel(b *testing.B) {
	benchParallel(b, benchGemmSrc, "gemm.c", "gemm", func() []any { return benchGemmArgs(32) })
}

func BenchmarkJacobiParallel(b *testing.B) {
	benchParallel(b, benchJacobiSrc, "jacobi.c", "jacobi", func() []any { return benchJacobiArgs(48) })
}

func BenchmarkAxpyParallel(b *testing.B) {
	benchParallel(b, benchAxpySrc, "axpy.c", "axpy", func() []any {
		return []any{IntV(4096), FloatV(2.0), benchVector(4096), benchVector(4096)}
	})
}
