package cminor

import (
	"fmt"
	"sort"
	"strings"
)

// The bytecode backend (BackendBytecode, "O4") lowers typed, resolved
// functions to a flat register-machine bytecode executed by a single
// dispatch loop (bytecode_exec.go) instead of a closure graph. A frame
// carries two dense register files — int64 and float64 — indexed so
// that scalar slot s lives in ireg[s] (statically-int slots) or freg[s]
// (statically-double slots); temporaries are allocated monotonically
// above the slot block. Lowering (bytecode_lower.go) reuses the
// typecheck kind tables and the loop optimizer's recognition and
// invariance analysis: counted loops become test-and-branch with a
// proof preamble, proven subscripts use unchecked load/store opcodes,
// and the hot Polybench shapes collapse into superinstructions
// (opFMAAcc fma-accumulate, opLoopNext fused increment+step+branch).
//
// Semantics are bit- and step-exact with the walker: every statement
// charges the same step() budget, every fault carries the same
// positioned *Diag text, and loop versioning falls back to a fully
// checked body when a preamble proof fails. A function the lowerer
// cannot prove safe (user calls, pointer cells, dynamic kinds, rank>2
// arrays) simply keeps its closure-compiled body — bailing is always
// semantics-preserving.

// bcOp enumerates the bytecode operations.
type bcOp uint8

const (
	opNop bcOp = iota

	// control flow
	opStep      // charge one statement against the step budget
	opStep2     // charge two statements (counted-loop entry)
	opJmp       // pc = a
	opBrZI      // if ireg[a] == 0: pc = b
	opBrNZI     // if ireg[a] != 0: pc = b
	opBrZF      // if freg[a] == 0: pc = b
	opBrNZF     // if freg[a] != 0: pc = b
	opBrCI      // if cmp(sub, ireg[a], ireg[b]): pc = c
	opBrCF      // if cmp(sub, freg[a], freg[b]): pc = c
	opStrictDec // counted "<" bound: if ireg[a]==MinInt64: pc = b, else ireg[a]--
	opLoopNext  // ireg[a]++; step; if ireg[a] <= ireg[b]: pc = c
	// opLoopNext2 is the fused back edge: it charges the for statement's
	// per-iteration step AND the next iteration's first-statement step in
	// one budget check, then jumps past that statement's opStep. Nothing
	// observable happens between the two charges, so only the fault-time
	// counter could diverge — and the rollback in the exec loop restores
	// the exact walker count when the budget dies between them.
	opLoopNext2 // ireg[a]++; if ≤ ireg[b]: step×2, pc = c; else step
	opRetI      // fr.ret = IntV(ireg[a]); return
	opRetF      // fr.ret = FloatV(freg[a]); return
	opRetZ      // fr.ret = Value{}; return

	// moves and conversions
	opLdcI // ireg[d] = imm
	opLdcF // freg[d] = fv
	opMovI // ireg[d] = ireg[a]
	opMovF // freg[d] = freg[a]
	opI2F  // freg[d] = float64(ireg[a])
	opF2I  // ireg[d] = int64(freg[a])
	opLdGI // ireg[d] = globals[a].I
	opLdGF // freg[d] = globals[a].F
	opStGI // globals[d] = IntV(ireg[a])
	opStGF // globals[d] = FloatV(freg[a])

	// int ALU
	opAddI  // ireg[d] = ireg[a] + ireg[b]
	opSubI  // ireg[d] = ireg[a] - ireg[b]
	opMulI  // ireg[d] = ireg[a] * ireg[b]
	opDivI  // ireg[d] = ireg[a] / ireg[b] (faults on 0)
	opModI  // ireg[d] = ireg[a] % ireg[b] (faults on 0)
	opNegI  // ireg[d] = -ireg[a]
	opAddcI // ireg[d] = ireg[a] + imm

	// float ALU
	opAddF  // freg[d] = freg[a] + freg[b]
	opSubF  // freg[d] = freg[a] - freg[b]
	opMulF  // freg[d] = freg[a] * freg[b]
	opDivF  // freg[d] = freg[a] / freg[b]
	opModF  // freg[d] = math.Mod(freg[a], freg[b])
	opNegF  // freg[d] = -freg[a]
	opAddcF // freg[d] = freg[a] + fv

	// math builtins
	opMath1 // freg[d] = builtin(sub)(freg[a])
	opPow   // freg[d] = math.Pow(freg[a], freg[b])

	// local array declaration
	opNewArr1 // arrays[c] = NewArray(ireg[a])
	opNewArr2 // arrays[c] = NewArray(ireg[a], ireg[b])

	// checked element access (exact closure-backend fault text)
	opLdE1  // freg[d] = arr(c)[ireg[a]]
	opLdE2  // freg[d] = arr(c)[ireg[a]][ireg[b]]
	opStE1  // arr(c)[ireg[a]] = freg[d]
	opStE2  // arr(c)[ireg[a]][ireg[b]] = freg[d]
	opCmE1  // freg[e] = (arr(c)[ireg[a]] op(sub)= freg[d])
	opCmE2  // freg[e] = (arr(c)[ireg[a]][ireg[b]] op(sub)= freg[d])
	opIncE1 // freg[d] = arr(c)[ireg[a]] (then ±1 store; sub=1 inc)
	opIncE2 // freg[d] = arr(c)[ireg[a]][ireg[b]] (then ±1 store; sub=1 inc)

	// loop-preamble proofs; failure jumps to the safe body. opProveArr
	// also hoists the proven array's backing store into the frame's data
	// register dreg[a], so the fast body's unchecked accesses index one
	// flat []float64 directly — the bytecode analogue of the closure
	// backend's hoisted row slices.
	opProveArr // arr(c) exists with rank sub (else pc=b); ireg[d],ireg[e] = dims; dreg[a] = Data
	opProveRng // unless 0 <= ireg[a] < ireg[b]: pc = c
	opProveIV  // unless [ireg[a]+imm, ireg[b]+imm] ⊂ [0, ireg[d]) (overflow-checked): pc = c

	// Proven (unchecked) element access over a hoisted data register.
	// The addressing mode is baked into the opcode (one dispatch, no
	// mode decode):
	//
	//	*0  ea = ireg[a] + imm
	//	*1  ea = ireg[a] + ireg[b] + imm
	//	*2  ea = ireg[a]*ireg[e] + ireg[b]        (e = row-stride reg; imm folded)
	opLdU0 // freg[d] = dreg[c][ea]
	opLdU1
	opLdU2
	opStU0 // dreg[c][ea] = freg[d]
	opStU1
	opStU2
	opCmU0 // dreg[c][ea] op(sub)= freg[d]
	opCmU1
	opCmU2

	// Superinstructions. The mode-2 variants need e for the row stride,
	// so their second float operand rides in imm (always free there —
	// mode-2 addresses fold the immediate into the b register).
	opLdMul0 // freg[d] = freg[e] * dreg[c][ea]  (the hot "coef * A[...]" shape)
	opLdMul1
	opLdMul2  // freg[d] = freg[imm] * dreg[c][ea]
	opFMAAcc0 // dreg[c][ea] += float64(freg[d] * freg[e])
	opFMAAcc1
	opFMAAcc2 // dreg[c][ea] += float64(freg[d] * freg[imm])
	opFMSAcc0 // dreg[c][ea] -= float64(freg[d] * freg[e])
	opFMSAcc1
	opFMSAcc2 // dreg[c][ea] -= float64(freg[d] * freg[imm])
	opFMAS    // freg[d] += float64(freg[a] * freg[b])

	// Fused instruction triples, installed by the peephole pass over
	// hot fast-body shapes (see fusePeephole). A fused opcode replaces
	// the first instruction of a recognized straight-line triple; the
	// two following instructions stay in place as its operand banks and
	// are skipped by the dispatch loop (pc += 2). Each case executes
	// the constituent instructions' exact semantics — temp registers
	// included — so fusion is observationally a no-op; it only merges
	// three dispatches into one.
	opF3MulDot  // [ldmul1, ldu2, fmaacc0]: the gemm/2mm alpha*A[i][k]*B[k][j] accumulate
	opF3RowCol  // [ldu1, ldu2, fmaacc0]: the plain A[i][k]*B[k][j] accumulate
	opF3RowVec  // [ldu1, ldu0, fmaacc0]: the matrix-vector A[i][j]*x[j] accumulate
	opF3ColVec  // [ldu2, ldu0, fmaacc0]: the transposed A[j][i]*x[j] accumulate
	opF3RowVecS // [ldu1, ldu0, fmsacc0]: the triangular-solve A[i][j]*x[j] subtract
	opF3RowRowS // [ldu1, ldu1, fmsacc0]: the cholesky A[i][k]*A[j][k] subtract
)

// Addressing modes as classified by the lowerer (selects the opcode
// within a *0/*1/*2 group):
//
//	bcMode0  ea = ireg[a] + imm
//	bcMode1  ea = ireg[a] + ireg[b] + imm
//	bcMode2  ea = ireg[a]*ireg[e] + ireg[b]
const (
	bcMode0 uint8 = iota
	bcMode1
	bcMode2
)

// Comparison codes for opBrCI/opBrCF (in sub). bcNegate inverts the
// result of the original predicate — never a rewritten operator — so
// float NaN semantics match the closure backend's !cond branches.
const (
	bcEQ uint8 = iota
	bcNEQ
	bcLT
	bcGT
	bcLEQ
	bcGEQ

	bcNegate uint8 = 0x80
)

// opMath1 sub codes.
const (
	bcSqrt uint8 = iota
	bcFabs
	bcExp
	bcLog
	bcFloor
	bcCeil
)

// Compound arithmetic codes (opCmU*/opCmE* sub).
const (
	bcOpAdd uint8 = iota
	bcOpSub
	bcOpMul
	bcOpDiv
	bcOpMod
)

// instr is one bytecode instruction. Operand meaning is per-opcode (see
// the bcOp comments); c encodes an array reference: >= 0 is a local
// frame array slot, < 0 is global array slot ^c. pos is the source
// position used by runtime faults and the disassembler.
type instr struct {
	op  bcOp
	sub uint8
	a   int32
	b   int32
	c   int32
	d   int32
	e   int32
	imm int64
	fv  float64
	pos Pos
}

// bcParam describes one by-value scalar parameter: which slot/register
// it occupies, which register file, and whether the body may write it
// (mutated parameters are flushed back to fr.scalars on exit and on
// faults, so *Value copybacks observe the partial state exactly).
type bcParam struct {
	slot    int32
	isInt   bool
	mutated bool
}

// bcFunc is one function lowered to flat bytecode.
type bcFunc struct {
	name   string
	code   []instr
	nI, nF int // register-file sizes (slots + temporaries)
	nD     int // data registers (hoisted array backing stores)
	params []bcParam
}

// bcOpNames is indexed by bcOp for the disassembler.
var bcOpNames = [...]string{
	opNop: "nop", opStep: "step", opStep2: "step2", opJmp: "jmp",
	opBrZI: "brz.i", opBrNZI: "brnz.i", opBrZF: "brz.f", opBrNZF: "brnz.f",
	opBrCI: "brc.i", opBrCF: "brc.f", opStrictDec: "strictdec",
	opLoopNext: "loopnext", opLoopNext2: "loopnext2",
	opRetI: "ret.i", opRetF: "ret.f", opRetZ: "ret",
	opLdcI: "ldc.i", opLdcF: "ldc.f", opMovI: "mov.i", opMovF: "mov.f",
	opI2F: "i2f", opF2I: "f2i", opLdGI: "ldg.i", opLdGF: "ldg.f",
	opStGI: "stg.i", opStGF: "stg.f",
	opAddI: "add.i", opSubI: "sub.i", opMulI: "mul.i", opDivI: "div.i",
	opModI: "mod.i", opNegI: "neg.i", opAddcI: "addc.i",
	opAddF: "add.f", opSubF: "sub.f", opMulF: "mul.f", opDivF: "div.f",
	opModF: "mod.f", opNegF: "neg.f", opAddcF: "addc.f",
	opMath1: "math1", opPow: "pow",
	opNewArr1: "newarr1", opNewArr2: "newarr2",
	opLdE1: "lde1", opLdE2: "lde2", opStE1: "ste1", opStE2: "ste2",
	opCmE1: "cme1", opCmE2: "cme2", opIncE1: "ince1", opIncE2: "ince2",
	opProveArr: "provearr", opProveRng: "proverng", opProveIV: "proveiv",
	opLdU0: "ldu0", opLdU1: "ldu1", opLdU2: "ldu2",
	opStU0: "stu0", opStU1: "stu1", opStU2: "stu2",
	opCmU0: "cmu0", opCmU1: "cmu1", opCmU2: "cmu2",
	opLdMul0: "ldmul0", opLdMul1: "ldmul1", opLdMul2: "ldmul2",
	opFMAAcc0: "fmaacc0", opFMAAcc1: "fmaacc1", opFMAAcc2: "fmaacc2",
	opFMSAcc0: "fmsacc0", opFMSAcc1: "fmsacc1", opFMSAcc2: "fmsacc2",
	opFMAS:     "fmas",
	opF3MulDot: "f3.muldot", opF3RowCol: "f3.rowcol", opF3RowVec: "f3.rowvec",
	opF3ColVec: "f3.colvec", opF3RowVecS: "f3.rowvecs", opF3RowRowS: "f3.rowrows",
}

var bcCmpNames = [...]string{"eq", "neq", "lt", "gt", "leq", "geq"}
var bcMathNames = [...]string{"sqrt", "fabs", "exp", "log", "floor", "ceil"}
var bcArithNames = [...]string{"+", "-", "*", "/", "%"}

// Disassemble renders the lowered bytecode of one function of a
// BackendBytecode program — opcode, operands and source position per
// instruction — so codegen changes are reviewable as text, not only as
// benchmark deltas. It errors for other backends, unknown functions,
// and functions where lowering bailed to the closure fallback.
func Disassemble(p *Program, fn string) (string, error) {
	if p.cfg.backend != BackendBytecode {
		return "", fmt.Errorf("cminor: Disassemble: program backend is %s, not bytecode", p.cfg.backend)
	}
	cf := p.funcs[fn]
	if cf == nil {
		return "", fmt.Errorf("cminor: Disassemble: no function %q", fn)
	}
	if cf.bc == nil {
		return "", fmt.Errorf("cminor: Disassemble: %s bailed to the closure fallback", fn)
	}
	bc := cf.bc
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s: %d instrs, %d int regs, %d float regs, %d data regs\n",
		bc.name, len(bc.code), bc.nI, bc.nF, bc.nD)
	for pc := range bc.code {
		in := &bc.code[pc]
		ops := bcOperands(in)
		if in.pos != (Pos{}) {
			fmt.Fprintf(&sb, "%4d  %-10s %-28s ; %s\n", pc, bcOpNames[in.op], ops, in.pos)
		} else {
			line := fmt.Sprintf("%4d  %-10s %s", pc, bcOpNames[in.op], ops)
			sb.WriteString(strings.TrimRight(line, " "))
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}

// bcArrName renders an array operand: a<slot> local, g<slot> global.
func bcArrName(c int32) string {
	if c < 0 {
		return fmt.Sprintf("g%d", ^c)
	}
	return fmt.Sprintf("a%d", c)
}

// bcEA renders the effective-address operand of an unchecked access
// over a hoisted data register (mode baked into the opcode).
func bcEA(in *instr, mode uint8) string {
	s := ""
	imm := in.imm
	switch mode {
	case bcMode0:
		s = fmt.Sprintf("i%d", in.a)
	case bcMode1:
		s = fmt.Sprintf("i%d+i%d", in.a, in.b)
	case bcMode2:
		s = fmt.Sprintf("i%d*i%d+i%d", in.a, in.e, in.b)
		imm = 0 // mode-2 superinstructions carry a register in imm
	}
	if imm != 0 {
		s += fmt.Sprintf("%+d", imm)
	}
	return fmt.Sprintf("d%d[%s]", in.c, s)
}

// bcOperands renders one instruction's operands symbolically (iN/fN are
// int/float registers, aN/gN arrays, @N a jump target pc).
func bcOperands(in *instr) string {
	switch in.op {
	case opNop, opStep, opStep2, opRetZ:
		return ""
	case opJmp:
		return fmt.Sprintf("@%d", in.a)
	case opBrZI, opBrNZI:
		return fmt.Sprintf("i%d @%d", in.a, in.b)
	case opBrZF, opBrNZF:
		return fmt.Sprintf("f%d @%d", in.a, in.b)
	case opBrCI, opBrCF:
		r := "i"
		if in.op == opBrCF {
			r = "f"
		}
		cmp := bcCmpNames[in.sub&^bcNegate]
		if in.sub&bcNegate != 0 {
			cmp = "!" + cmp
		}
		return fmt.Sprintf("%s %s%d %s%d @%d", cmp, r, in.a, r, in.b, in.c)
	case opStrictDec:
		return fmt.Sprintf("i%d @%d", in.a, in.b)
	case opLoopNext, opLoopNext2:
		return fmt.Sprintf("i%d<=i%d @%d", in.a, in.b, in.c)
	case opRetI:
		return fmt.Sprintf("i%d", in.a)
	case opRetF:
		return fmt.Sprintf("f%d", in.a)
	case opLdcI:
		return fmt.Sprintf("i%d = %d", in.d, in.imm)
	case opLdcF:
		return fmt.Sprintf("f%d = %v", in.d, in.fv)
	case opMovI, opNegI, opF2I:
		return fmt.Sprintf("i%d i%d", in.d, in.a)
	case opMovF, opNegF, opI2F:
		return fmt.Sprintf("f%d f%d", in.d, in.a)
	case opLdGI:
		return fmt.Sprintf("i%d gs%d", in.d, in.a)
	case opLdGF:
		return fmt.Sprintf("f%d gs%d", in.d, in.a)
	case opStGI:
		return fmt.Sprintf("gs%d i%d", in.d, in.a)
	case opStGF:
		return fmt.Sprintf("gs%d f%d", in.d, in.a)
	case opAddI, opSubI, opMulI, opDivI, opModI:
		return fmt.Sprintf("i%d i%d i%d", in.d, in.a, in.b)
	case opAddcI:
		return fmt.Sprintf("i%d i%d %+d", in.d, in.a, in.imm)
	case opAddF, opSubF, opMulF, opDivF, opModF:
		return fmt.Sprintf("f%d f%d f%d", in.d, in.a, in.b)
	case opAddcF:
		return fmt.Sprintf("f%d f%d %+v", in.d, in.a, in.fv)
	case opMath1:
		return fmt.Sprintf("%s f%d f%d", bcMathNames[in.sub], in.d, in.a)
	case opPow:
		return fmt.Sprintf("f%d f%d f%d", in.d, in.a, in.b)
	case opNewArr1:
		return fmt.Sprintf("%s [i%d]", bcArrName(in.c), in.a)
	case opNewArr2:
		return fmt.Sprintf("%s [i%d][i%d]", bcArrName(in.c), in.a, in.b)
	case opLdE1:
		return fmt.Sprintf("f%d %s[i%d]", in.d, bcArrName(in.c), in.a)
	case opLdE2:
		return fmt.Sprintf("f%d %s[i%d][i%d]", in.d, bcArrName(in.c), in.a, in.b)
	case opStE1:
		return fmt.Sprintf("%s[i%d] f%d", bcArrName(in.c), in.a, in.d)
	case opStE2:
		return fmt.Sprintf("%s[i%d][i%d] f%d", bcArrName(in.c), in.a, in.b, in.d)
	case opCmE1:
		return fmt.Sprintf("f%d %s[i%d] %s= f%d", in.e, bcArrName(in.c), in.a, bcArithNames[in.sub], in.d)
	case opCmE2:
		return fmt.Sprintf("f%d %s[i%d][i%d] %s= f%d", in.e, bcArrName(in.c), in.a, in.b, bcArithNames[in.sub], in.d)
	case opIncE1:
		return fmt.Sprintf("f%d %s[i%d] sub=%d", in.d, bcArrName(in.c), in.a, in.sub)
	case opIncE2:
		return fmt.Sprintf("f%d %s[i%d][i%d] sub=%d", in.d, bcArrName(in.c), in.a, in.b, in.sub)
	case opProveArr:
		s := fmt.Sprintf("%s rank=%d i%d", bcArrName(in.c), in.sub, in.d)
		if in.sub == 2 {
			s += fmt.Sprintf(" i%d", in.e)
		}
		return s + fmt.Sprintf(" d%d else @%d", in.a, in.b)
	case opProveRng:
		return fmt.Sprintf("i%d < i%d else @%d", in.a, in.b, in.c)
	case opProveIV:
		return fmt.Sprintf("[i%d%+d, i%d%+d] < i%d else @%d", in.a, in.imm, in.b, in.imm, in.d, in.c)
	case opLdU0, opLdU1, opLdU2:
		return fmt.Sprintf("f%d %s", in.d, bcEA(in, uint8(in.op-opLdU0)))
	case opStU0, opStU1, opStU2:
		return fmt.Sprintf("%s f%d", bcEA(in, uint8(in.op-opStU0)), in.d)
	case opCmU0, opCmU1, opCmU2:
		return fmt.Sprintf("%s %s= f%d", bcEA(in, uint8(in.op-opCmU0)), bcArithNames[in.sub], in.d)
	case opLdMul0, opLdMul1:
		return fmt.Sprintf("f%d f%d*%s", in.d, in.e, bcEA(in, uint8(in.op-opLdMul0)))
	case opLdMul2:
		return fmt.Sprintf("f%d f%d*%s", in.d, in.imm, bcEA(in, bcMode2))
	case opFMAAcc0, opFMAAcc1:
		return fmt.Sprintf("%s += f%d*f%d", bcEA(in, uint8(in.op-opFMAAcc0)), in.d, in.e)
	case opFMAAcc2:
		return fmt.Sprintf("%s += f%d*f%d", bcEA(in, bcMode2), in.d, in.imm)
	case opFMSAcc0, opFMSAcc1:
		return fmt.Sprintf("%s -= f%d*f%d", bcEA(in, uint8(in.op-opFMSAcc0)), in.d, in.e)
	case opFMSAcc2:
		return fmt.Sprintf("%s -= f%d*f%d", bcEA(in, bcMode2), in.d, in.imm)
	case opFMAS:
		return fmt.Sprintf("f%d += f%d*f%d", in.d, in.a, in.b)
	// Fused triples print the head's own (first constituent) operands;
	// the two instructions they absorb follow as ordinary rows.
	case opF3MulDot:
		return fmt.Sprintf("f%d f%d*%s ...", in.d, in.e, bcEA(in, bcMode1))
	case opF3RowCol, opF3RowVec, opF3RowVecS, opF3RowRowS:
		return fmt.Sprintf("f%d %s ...", in.d, bcEA(in, bcMode1))
	case opF3ColVec:
		return fmt.Sprintf("f%d %s ...", in.d, bcEA(in, bcMode2))
	}
	return "?"
}

// BytecodeFuncs reports which functions of a BackendBytecode program
// lowered to flat bytecode (the rest run their closure fallback),
// sorted by name. Introspection for tests and tooling.
func BytecodeFuncs(p *Program) []string {
	var out []string
	for name, cf := range p.funcs {
		if cf.bc != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
