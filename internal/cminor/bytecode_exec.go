package cminor

import (
	"fmt"
	"math"
)

// Execution of lowered bytecode: one flat for/switch dispatch loop over
// a dense []instr, operating on the frame's int64/float64 register
// files. Statement-budget charging, fault text and fault positions are
// bit-identical to the closure backend (and therefore to the walker):
// the step opcodes run the same counter/limit comparison as
// Instance.step, and the checked access opcodes raise the same
// positioned *Diag panics as checkedElem.

// bcFault annotates an internal panic that escaped the bytecode
// dispatch loop with the function whose flat code was executing, so an
// InternalFault's Recovered value names the faulting lowering unit even
// through nested user calls.
type bcFault struct {
	fn    string
	cause any
}

func (b *bcFault) String() string {
	return fmt.Sprintf("bytecode dispatch fault in %s: %v", b.fn, b.cause)
}

// annotateBCFault wraps an unexpected panic value in a *bcFault,
// passing expected program-level fault carriers (and already-annotated
// faults from nested dispatch loops) through unchanged.
func annotateBCFault(bc *bcFunc, r any) any {
	switch r.(type) {
	case *Diag, ctxDone, *bcFault:
		return r
	}
	return &bcFault{fn: bc.name, cause: r}
}

// bcArr resolves an array operand: c >= 0 is a frame slot, c < 0 a
// global slot (^c).
func bcArr(fr *frame, c int32) *Array {
	if c < 0 {
		return fr.ec.g.arrays[^c]
	}
	return fr.arrays[c]
}

// bcElem1 is the checked rank-1 element accessor (closure parity: same
// checks, same fault text, same position).
func bcElem1(fr *frame, in *instr, idx int64) (*Array, int) {
	a := bcArr(fr, in.c)
	file := fr.ec.prog.fname
	if len(a.Dims) != 1 {
		rtPanic(file, in.pos, "array rank %d indexed with 1 subscript", len(a.Dims))
	}
	i := int(idx)
	if uint(i) >= uint(a.Dims[0]) {
		rtPanic(file, in.pos, "index %d out of range [0,%d)", i, a.Dims[0])
	}
	return a, i
}

// bcElem2 is the checked rank-2 element accessor.
func bcElem2(fr *frame, in *instr, i0, i1 int64) (*Array, int) {
	a := bcArr(fr, in.c)
	file := fr.ec.prog.fname
	if len(a.Dims) != 2 {
		rtPanic(file, in.pos, "array rank %d indexed with 2 subscripts", len(a.Dims))
	}
	i := int(i0)
	j := int(i1)
	if uint(i) >= uint(a.Dims[0]) {
		rtPanic(file, in.pos, "index %d out of range [0,%d) in dim 0", i, a.Dims[0])
	}
	if uint(j) >= uint(a.Dims[1]) {
		rtPanic(file, in.pos, "index %d out of range [0,%d) in dim 1", j, a.Dims[1])
	}
	return a, i*a.Dims[1] + j
}

// bcCompound applies one float compound op (division by zero yields
// ±Inf; % is math.Mod — float semantics, like the closure backend's
// compound element stores).
func bcCompound(op uint8, old, v float64) float64 {
	switch op {
	case bcOpAdd:
		return old + v
	case bcOpSub:
		return old - v
	case bcOpMul:
		return old * v
	case bcOpDiv:
		return old / v
	default:
		return math.Mod(old, v)
	}
}

// bcFlushParams writes mutated by-value scalar parameters back to their
// frame slots. It runs deferred — on normal return and on the panic
// path of a runtime fault — so *Value copybacks observe exactly the
// partial state the walker would have produced.
func bcFlushParams(fr *frame, bc *bcFunc) {
	for i := range bc.params {
		p := &bc.params[i]
		if !p.mutated {
			continue
		}
		if p.isInt {
			fr.scalars[p.slot] = IntV(fr.ireg[p.slot])
		} else {
			fr.scalars[p.slot] = FloatV(fr.freg[p.slot])
		}
	}
}

// execBC runs one bytecode function body in fr.
func execBC(fr *frame, bc *bcFunc) {
	ireg, freg, dreg := fr.ireg, fr.freg, fr.dreg
	for i := range bc.params {
		p := &bc.params[i]
		if p.isInt {
			ireg[p.slot] = fr.scalars[p.slot].I
		} else {
			freg[p.slot] = fr.scalars[p.slot].F
		}
	}
	defer func() {
		bcFlushParams(fr, bc)
		if r := recover(); r != nil {
			// Program-level faults (positioned *Diag, budget, ctx) pass
			// through untouched — their text and type are the cross-backend
			// parity contract. Anything else is an internal fault of the
			// lowering: annotate it with the function whose flat code was
			// dispatching, then let the containment boundary in
			// Instance.attempt classify it.
			panic(annotateBCFault(bc, r))
		}
	}()
	ec := fr.ec
	g := ec.g
	file := ec.prog.fname
	code := bc.code
	pc := 0
	for {
		in := &code[pc]
		pc++
		switch in.op {
		case opNop:
		case opStep:
			ec.steps++
			if int64(ec.steps) > ec.limit.Load() {
				panic(ec.faultCause())
			}
		case opStep2:
			ec.steps++
			if int64(ec.steps) > ec.limit.Load() {
				panic(ec.faultCause())
			}
			ec.steps++
			if int64(ec.steps) > ec.limit.Load() {
				panic(ec.faultCause())
			}
		case opJmp:
			pc = int(in.a)
		case opBrZI:
			if ireg[in.a] == 0 {
				pc = int(in.b)
			}
		case opBrNZI:
			if ireg[in.a] != 0 {
				pc = int(in.b)
			}
		case opBrZF:
			if freg[in.a] == 0 {
				pc = int(in.b)
			}
		case opBrNZF:
			if freg[in.a] != 0 {
				pc = int(in.b)
			}
		case opBrCI:
			x, y := ireg[in.a], ireg[in.b]
			var r bool
			switch in.sub &^ bcNegate {
			case bcEQ:
				r = x == y
			case bcNEQ:
				r = x != y
			case bcLT:
				r = x < y
			case bcGT:
				r = x > y
			case bcLEQ:
				r = x <= y
			default:
				r = x >= y
			}
			if in.sub&bcNegate != 0 {
				r = !r
			}
			if r {
				pc = int(in.c)
			}
		case opBrCF:
			x, y := freg[in.a], freg[in.b]
			var r bool
			switch in.sub &^ bcNegate {
			case bcEQ:
				r = x == y
			case bcNEQ:
				r = x != y
			case bcLT:
				r = x < y
			case bcGT:
				r = x > y
			case bcLEQ:
				r = x <= y
			default:
				r = x >= y
			}
			if in.sub&bcNegate != 0 {
				r = !r
			}
			if r {
				pc = int(in.c)
			}
		case opStrictDec:
			if ireg[in.a] == math.MinInt64 {
				pc = int(in.b)
			} else {
				ireg[in.a]--
			}
		case opLoopNext:
			v := ireg[in.a] + 1
			ireg[in.a] = v
			ec.steps++
			if int64(ec.steps) > ec.limit.Load() {
				panic(ec.faultCause())
			}
			if v <= ireg[in.b] {
				pc = int(in.c)
			}
		case opLoopNext2:
			// Fused back edge: one budget check covers the for statement's
			// per-iteration step and the next body's first-statement step
			// (its opStep at c-1 is skipped). On a fault between the two
			// charges, roll the counter back to the first exceeding value —
			// the exact count the walker reports.
			v := ireg[in.a] + 1
			ireg[in.a] = v
			s0 := ec.steps
			if v <= ireg[in.b] {
				ec.steps = s0 + 2
				if lim := ec.limit.Load(); int64(s0+2) > lim {
					if int64(s0+1) > lim {
						ec.steps = s0 + 1
					}
					panic(ec.faultCause())
				}
				pc = int(in.c)
			} else {
				ec.steps = s0 + 1
				if int64(s0+1) > ec.limit.Load() {
					panic(ec.faultCause())
				}
			}
		case opRetI:
			fr.ret = IntV(ireg[in.a])
			return
		case opRetF:
			fr.ret = FloatV(freg[in.a])
			return
		case opRetZ:
			fr.ret = Value{}
			return
		case opLdcI:
			ireg[in.d] = in.imm
		case opLdcF:
			freg[in.d] = in.fv
		case opMovI:
			ireg[in.d] = ireg[in.a]
		case opMovF:
			freg[in.d] = freg[in.a]
		case opI2F:
			freg[in.d] = float64(ireg[in.a])
		case opF2I:
			ireg[in.d] = int64(freg[in.a])
		case opLdGI:
			ireg[in.d] = g.scalars[in.a].I
		case opLdGF:
			freg[in.d] = g.scalars[in.a].F
		case opStGI:
			g.scalars[in.d] = IntV(ireg[in.a])
		case opStGF:
			g.scalars[in.d] = FloatV(freg[in.a])
		case opAddI:
			ireg[in.d] = ireg[in.a] + ireg[in.b]
		case opSubI:
			ireg[in.d] = ireg[in.a] - ireg[in.b]
		case opMulI:
			ireg[in.d] = ireg[in.a] * ireg[in.b]
		case opDivI:
			b := ireg[in.b]
			if b == 0 {
				rtPanic(file, in.pos, "integer division by zero")
			}
			ireg[in.d] = ireg[in.a] / b
		case opModI:
			b := ireg[in.b]
			if b == 0 {
				rtPanic(file, in.pos, "integer modulo by zero")
			}
			ireg[in.d] = ireg[in.a] % b
		case opNegI:
			ireg[in.d] = -ireg[in.a]
		case opAddcI:
			ireg[in.d] = ireg[in.a] + in.imm
		case opAddF:
			freg[in.d] = freg[in.a] + freg[in.b]
		case opSubF:
			freg[in.d] = freg[in.a] - freg[in.b]
		case opMulF:
			freg[in.d] = freg[in.a] * freg[in.b]
		case opDivF:
			freg[in.d] = freg[in.a] / freg[in.b]
		case opModF:
			freg[in.d] = math.Mod(freg[in.a], freg[in.b])
		case opNegF:
			freg[in.d] = -freg[in.a]
		case opAddcF:
			freg[in.d] = freg[in.a] + in.fv
		case opMath1:
			x := freg[in.a]
			switch in.sub {
			case bcSqrt:
				freg[in.d] = math.Sqrt(x)
			case bcFabs:
				freg[in.d] = math.Abs(x)
			case bcExp:
				freg[in.d] = math.Exp(x)
			case bcLog:
				freg[in.d] = math.Log(x)
			case bcFloor:
				freg[in.d] = math.Floor(x)
			default:
				freg[in.d] = math.Ceil(x)
			}
		case opPow:
			freg[in.d] = math.Pow(freg[in.a], freg[in.b])
		case opNewArr1:
			fr.arrays[in.c] = NewArray(int(ireg[in.a]))
		case opNewArr2:
			fr.arrays[in.c] = NewArray(int(ireg[in.a]), int(ireg[in.b]))
		case opLdE1:
			a, off := bcElem1(fr, in, ireg[in.a])
			freg[in.d] = a.Data[off]
		case opLdE2:
			a, off := bcElem2(fr, in, ireg[in.a], ireg[in.b])
			freg[in.d] = a.Data[off]
		case opStE1:
			a, off := bcElem1(fr, in, ireg[in.a])
			a.Data[off] = freg[in.d]
		case opStE2:
			a, off := bcElem2(fr, in, ireg[in.a], ireg[in.b])
			a.Data[off] = freg[in.d]
		case opCmE1:
			a, off := bcElem1(fr, in, ireg[in.a])
			nv := bcCompound(in.sub, a.Data[off], freg[in.d])
			a.Data[off] = nv
			freg[in.e] = nv
		case opCmE2:
			a, off := bcElem2(fr, in, ireg[in.a], ireg[in.b])
			nv := bcCompound(in.sub, a.Data[off], freg[in.d])
			a.Data[off] = nv
			freg[in.e] = nv
		case opIncE1:
			a, off := bcElem1(fr, in, ireg[in.a])
			old := a.Data[off]
			if in.sub == 1 {
				a.Data[off] = old + 1
			} else {
				a.Data[off] = old - 1
			}
			freg[in.d] = old
		case opIncE2:
			a, off := bcElem2(fr, in, ireg[in.a], ireg[in.b])
			old := a.Data[off]
			if in.sub == 1 {
				a.Data[off] = old + 1
			} else {
				a.Data[off] = old - 1
			}
			freg[in.d] = old
		case opProveArr:
			a := bcArr(fr, in.c)
			if a == nil || len(a.Dims) != int(in.sub) {
				pc = int(in.b)
				continue
			}
			ireg[in.d] = int64(a.Dims[0])
			if in.sub == 2 {
				ireg[in.e] = int64(a.Dims[1])
			}
			dreg[in.a] = a.Data
		case opProveRng:
			if v := ireg[in.a]; v < 0 || v >= ireg[in.b] {
				pc = int(in.c)
			}
		case opProveIV:
			if !affineInRange(ireg[in.a], ireg[in.b], in.imm, int(ireg[in.d])) {
				pc = int(in.c)
			}
		case opLdU0:
			freg[in.d] = dreg[in.c][ireg[in.a]+in.imm]
		case opLdU1:
			freg[in.d] = dreg[in.c][ireg[in.a]+ireg[in.b]+in.imm]
		case opLdU2:
			freg[in.d] = dreg[in.c][ireg[in.a]*ireg[in.e]+ireg[in.b]]
		case opStU0:
			dreg[in.c][ireg[in.a]+in.imm] = freg[in.d]
		case opStU1:
			dreg[in.c][ireg[in.a]+ireg[in.b]+in.imm] = freg[in.d]
		case opStU2:
			dreg[in.c][ireg[in.a]*ireg[in.e]+ireg[in.b]] = freg[in.d]
		case opCmU0:
			d := dreg[in.c]
			off := ireg[in.a] + in.imm
			d[off] = bcCompound(in.sub, d[off], freg[in.d])
		case opCmU1:
			d := dreg[in.c]
			off := ireg[in.a] + ireg[in.b] + in.imm
			d[off] = bcCompound(in.sub, d[off], freg[in.d])
		case opCmU2:
			d := dreg[in.c]
			off := ireg[in.a]*ireg[in.e] + ireg[in.b]
			d[off] = bcCompound(in.sub, d[off], freg[in.d])
		case opLdMul0:
			freg[in.d] = freg[in.e] * dreg[in.c][ireg[in.a]+in.imm]
		case opLdMul1:
			freg[in.d] = freg[in.e] * dreg[in.c][ireg[in.a]+ireg[in.b]+in.imm]
		case opLdMul2:
			freg[in.d] = freg[in.imm] * dreg[in.c][ireg[in.a]*ireg[in.e]+ireg[in.b]]
		// The explicit conversions in the fma superinstructions force
		// intermediate rounding so Go cannot contract the multiply-add
		// into a hardware FMA, which would break walker bit-parity.
		case opFMAAcc0:
			dreg[in.c][ireg[in.a]+in.imm] += float64(freg[in.d] * freg[in.e])
		case opFMAAcc1:
			dreg[in.c][ireg[in.a]+ireg[in.b]+in.imm] += float64(freg[in.d] * freg[in.e])
		case opFMAAcc2:
			dreg[in.c][ireg[in.a]*ireg[in.e]+ireg[in.b]] += float64(freg[in.d] * freg[in.imm])
		case opFMSAcc0:
			dreg[in.c][ireg[in.a]+in.imm] -= float64(freg[in.d] * freg[in.e])
		case opFMSAcc1:
			dreg[in.c][ireg[in.a]+ireg[in.b]+in.imm] -= float64(freg[in.d] * freg[in.e])
		case opFMSAcc2:
			dreg[in.c][ireg[in.a]*ireg[in.e]+ireg[in.b]] -= float64(freg[in.d] * freg[in.imm])
		case opFMAS:
			freg[in.d] += float64(freg[in.a] * freg[in.b])

		// Fused triples: one dispatch executes the head instruction plus
		// the two instructions that follow it, verbatim (operands are
		// read from their original encodings, temp-register writes
		// included), then skips them. Installed by fusePeephole, which
		// guarantees no branch targets the absorbed slots.
		case opF3MulDot: // ldmul1, ldu2, fmaacc0
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			freg[in.d] = freg[in.e] * dreg[in.c][ireg[in.a]+ireg[in.b]+in.imm]
			freg[in2.d] = dreg[in2.c][ireg[in2.a]*ireg[in2.e]+ireg[in2.b]]
			dreg[in3.c][ireg[in3.a]+in3.imm] += float64(freg[in3.d] * freg[in3.e])
		case opF3RowCol: // ldu1, ldu2, fmaacc0
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			freg[in.d] = dreg[in.c][ireg[in.a]+ireg[in.b]+in.imm]
			freg[in2.d] = dreg[in2.c][ireg[in2.a]*ireg[in2.e]+ireg[in2.b]]
			dreg[in3.c][ireg[in3.a]+in3.imm] += float64(freg[in3.d] * freg[in3.e])
		case opF3RowVec: // ldu1, ldu0, fmaacc0
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			freg[in.d] = dreg[in.c][ireg[in.a]+ireg[in.b]+in.imm]
			freg[in2.d] = dreg[in2.c][ireg[in2.a]+in2.imm]
			dreg[in3.c][ireg[in3.a]+in3.imm] += float64(freg[in3.d] * freg[in3.e])
		case opF3ColVec: // ldu2, ldu0, fmaacc0
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			freg[in.d] = dreg[in.c][ireg[in.a]*ireg[in.e]+ireg[in.b]]
			freg[in2.d] = dreg[in2.c][ireg[in2.a]+in2.imm]
			dreg[in3.c][ireg[in3.a]+in3.imm] += float64(freg[in3.d] * freg[in3.e])
		case opF3RowVecS: // ldu1, ldu0, fmsacc0
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			freg[in.d] = dreg[in.c][ireg[in.a]+ireg[in.b]+in.imm]
			freg[in2.d] = dreg[in2.c][ireg[in2.a]+in2.imm]
			dreg[in3.c][ireg[in3.a]+in3.imm] -= float64(freg[in3.d] * freg[in3.e])
		case opF3RowRowS: // ldu1, ldu1, fmsacc0
			in2, in3 := &code[pc], &code[pc+1]
			pc += 2
			freg[in.d] = dreg[in.c][ireg[in.a]+ireg[in.b]+in.imm]
			freg[in2.d] = dreg[in2.c][ireg[in2.a]+ireg[in2.b]+in2.imm]
			dreg[in3.c][ireg[in3.a]+in3.imm] -= float64(freg[in3.d] * freg[in3.e])
		default:
			panic("cminor: internal: unknown bytecode op")
		}
	}
}
