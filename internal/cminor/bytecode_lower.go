package cminor

import "math"

// Lowering of typed, resolved functions to flat bytecode (see
// bytecode.go for the ISA). The lowerer is a one-pass AST walk that
// mirrors the closure compiler's semantics statement for statement:
// the same step-budget charges, the same evaluation order, the same
// positioned faults. Anything it cannot lower with those guarantees —
// user calls, pointer cells, dynamic kinds, rank>2 arrays — bails by
// panicking bcBail, and the function keeps its closure-compiled body.
//
// Scalar slot s lives in ireg[s] or freg[s] according to its static
// kind; temporaries are allocated monotonically above the slot block
// and never reused, so a register read always observes the value its
// producing instruction computed. Where the closure backend captures
// an operand's value before a later subexpression may overwrite it,
// the lowerer copies slot registers into temporaries (protectI /
// protectF) to preserve left-to-right capture semantics.
//
// Counted loops reuse the loop optimizer's recognition (countedLoop's
// shape checks, analyzeLoopBody, invariant, ivAffine) and lower to a
// two-version body: a preamble of side-effect-free proof opcodes
// validates every classified subscript against the live array
// dimensions, entering the fast body (unchecked loads/stores,
// superinstructions) on success and the fully-checked safe body —
// bit-exact with the unoptimized pipeline, faults included — on
// failure.

// bcBail is the panic sentinel lowerBCFunc recovers: this function
// cannot be lowered, keep the closure fallback.
type bcBail struct{}

// bcMaxLoopDepth bounds counted-loop versioning: each level emits its
// body twice (fast + safe), so code size grows as 2^depth. Deeper
// levels lower as generic loops with checked accesses — step counts
// are identical either way, so the cap is semantics-neutral.
const bcMaxLoopDepth = 4

// bcPatch is a forward reference from an emitted instruction operand
// to a not-yet-bound label.
type bcPatch struct {
	at    int
	field uint8 // 0=a, 1=b, 2=c
	lab   int
}

// bcDims names the registers holding an array's proven dimensions and
// the data register its backing store is hoisted into.
type bcDims struct {
	d0, d1 int32
	ds     int32
}

// bcLoop is one active counted-loop context during lowering.
type bcLoop struct {
	lc        *loopCtx
	ivSlot    int
	ivReg     int32
	lastReg   int32
	fast      bool // emitting the fast (proven) body version
	safeLab   int  // proof failures jump here
	proofs    []func()
	arrCache  map[int64]bcDims
	addrCache map[bcAddrKey]bcAddr
}

// bcAddrKey caches classified addresses whose invariant subscripts are
// plain scalar variables: two occurrences with the same (array, slot,
// offset) provably address the same element every iteration, so they
// share one register set and one proof — and, crucially, compare equal,
// which is what lets "x[i] = x[i] + a*b" fuse into an fma-accumulate.
type bcAddrKey struct {
	shape uint8 // 1=[inv], 2=[inv][iv+off], 3=[iv+off][inv]
	arr   int32
	kind  VarKind
	slot  int
	off   int64
}

func (lp *bcLoop) addProof(f func()) { lp.proofs = append(lp.proofs, f) }

// dims returns (allocating and registering the opProveArr proof on
// first use) the dimension and data registers of array arr at the
// given rank.
func (lp *bcLoop) dims(bl *bcLower, arr int32, rank int) bcDims {
	key := int64(arr)<<2 | int64(rank)
	if d, ok := lp.arrCache[key]; ok {
		return d
	}
	d := bcDims{d0: bl.newI(), ds: bl.newD()}
	if rank == 2 {
		d.d1 = bl.newI()
	}
	lp.arrCache[key] = d
	lp.addProof(func() {
		in := instr{op: opProveArr, sub: uint8(rank), c: arr, a: d.ds, d: d.d0}
		if rank == 2 {
			in.e = d.d1
		}
		bl.patch(bl.emit(in), 1, lp.safeLab)
	})
	return d
}

// bcAddr is a classified unchecked effective address over a hoisted
// data register. Comparable, so a store address can be matched against
// a load address for the fma-accumulate fusion.
type bcAddr struct {
	mode uint8
	a    int32
	b    int32
	e    int32
	imm  int64
	ds   int32
}

// bcLower lowers one function.
type bcLower struct {
	ca      *compiler // analysis-only compiler (refOf, kinds, loop facts)
	fi      *FuncInfo
	types   *fnTypes
	code    []instr
	nI, nF  int
	nD      int
	labels  []int
	patches []bcPatch
	loops   []*bcLoop
	mutated map[int32]bool
	// Constant pool: ldc instructions hoisted to function entry so a
	// literal inside a hot loop costs zero dispatches per iteration.
	// finish() prepends them and shifts every code offset.
	consts  []instr
	constIs map[int64]int32
	constFs map[uint64]int32
}

// lowerBCFunc lowers one function to bytecode, or returns nil when it
// must keep its closure fallback.
func lowerBCFunc(p *Program, name string, cf *compiledFunc) (bc *bcFunc) {
	fi := cf.info
	if fi.NumCells > 0 || fi.UserCalls > 0 {
		return nil
	}
	types := p.ti.funcs[name]
	if types == nil {
		return nil
	}
	for _, k := range types.scalars {
		if k == kDyn {
			return nil
		}
	}
	bl := &bcLower{
		ca:      &compiler{prog: p, types: types, info: p.ti, opt: O2},
		fi:      fi,
		types:   types,
		nI:      fi.NumScalars,
		nF:      fi.NumScalars,
		mutated: map[int32]bool{},
		constIs: map[int64]int32{},
		constFs: map[uint64]int32{},
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bcBail); ok {
				bc = nil
				return
			}
			panic(r)
		}
	}()
	// The function body is a block executed without its own step charge
	// (matching compiledFunc.body = compiler.block(Body)).
	for _, s := range fi.Decl.Body.Stmts {
		bl.stmt(s)
	}
	bl.emit(instr{op: opRetZ})
	bl.finish()
	var params []bcParam
	for _, pr := range fi.Params {
		if pr.Kind != VarScalar {
			continue
		}
		params = append(params, bcParam{
			slot:    int32(pr.Slot),
			isInt:   types.scalars[pr.Slot] == kInt,
			mutated: bl.mutated[int32(pr.Slot)],
		})
	}
	return &bcFunc{name: name, code: bl.code, nI: bl.nI, nF: bl.nF, nD: bl.nD, params: params}
}

// ---- emission helpers ----

func (bl *bcLower) bail() { panic(bcBail{}) }

func (bl *bcLower) emit(in instr) int {
	bl.code = append(bl.code, in)
	return len(bl.code) - 1
}

func (bl *bcLower) newI() int32 { r := bl.nI; bl.nI++; return int32(r) }
func (bl *bcLower) newF() int32 { r := bl.nF; bl.nF++; return int32(r) }
func (bl *bcLower) newD() int32 { r := bl.nD; bl.nD++; return int32(r) }

// constI returns a register holding the int constant v, materialized
// once in the function-entry constant pool.
func (bl *bcLower) constI(v int64) int32 {
	if r, ok := bl.constIs[v]; ok {
		return r
	}
	r := bl.newI()
	bl.consts = append(bl.consts, instr{op: opLdcI, d: r, imm: v})
	bl.constIs[v] = r
	return r
}

// constF is constI for float constants (keyed by bit pattern, so -0.0
// and NaN payloads stay distinct).
func (bl *bcLower) constF(v float64) int32 {
	key := math.Float64bits(v)
	if r, ok := bl.constFs[key]; ok {
		return r
	}
	r := bl.newF()
	bl.consts = append(bl.consts, instr{op: opLdcF, d: r, fv: v})
	bl.constFs[key] = r
	return r
}

func (bl *bcLower) newLabel() int {
	bl.labels = append(bl.labels, -1)
	return len(bl.labels) - 1
}

func (bl *bcLower) bind(lab int) { bl.labels[lab] = len(bl.code) }

func (bl *bcLower) patch(at int, field uint8, lab int) {
	bl.patches = append(bl.patches, bcPatch{at: at, field: field, lab: lab})
}

func (bl *bcLower) jmp(lab int) { bl.patch(bl.emit(instr{op: opJmp}), 0, lab) }

func (bl *bcLower) step(p Pos) { bl.emit(instr{op: opStep, pos: p}) }

// bcFuseTable maps a straight-line instruction triple to the fused
// superinstruction that executes all three in one dispatch. The shapes
// are the hot Polybench inner-loop bodies: dense multiply-accumulate
// (gemm/2mm), matrix-vector products (atax/mvt), and the subtracting
// solves (trisolv/cholesky).
var bcFuseTable = map[[3]bcOp]bcOp{
	{opLdMul1, opLdU2, opFMAAcc0}: opF3MulDot,
	{opLdU1, opLdU2, opFMAAcc0}:   opF3RowCol,
	{opLdU1, opLdU0, opFMAAcc0}:   opF3RowVec,
	{opLdU2, opLdU0, opFMAAcc0}:   opF3ColVec,
	{opLdU1, opLdU0, opFMSAcc0}:   opF3RowVecS,
	{opLdU1, opLdU1, opFMSAcc0}:   opF3RowRowS,
}

// fusePeephole rewrites each matching triple's head opcode to the
// fused form; the two absorbed instructions stay in place as operand
// banks the dispatch loop skips. Because the fused case re-executes
// the constituents' exact semantics from their original encodings,
// the only legality condition is control flow: no label may target an
// absorbed slot (patches only ever point at label-carrying branch
// instructions, never at loads or accumulates, so labels are the
// complete set of entry points).
func (bl *bcLower) fusePeephole() {
	if len(bl.code) < 3 {
		return
	}
	tgt := make([]bool, len(bl.code)+1)
	for _, t := range bl.labels {
		if t >= 0 && t < len(tgt) {
			tgt[t] = true
		}
	}
	for k := 0; k+2 < len(bl.code); k++ {
		key := [3]bcOp{bl.code[k].op, bl.code[k+1].op, bl.code[k+2].op}
		f, ok := bcFuseTable[key]
		if !ok || tgt[k+1] || tgt[k+2] {
			continue
		}
		bl.code[k].op = f
		k += 2
	}
}

func (bl *bcLower) finish() {
	bl.fusePeephole()
	if n := len(bl.consts); n > 0 {
		bl.code = append(append([]instr{}, bl.consts...), bl.code...)
		for i := range bl.labels {
			bl.labels[i] += n
		}
		for i := range bl.patches {
			bl.patches[i].at += n
		}
	}
	for _, pt := range bl.patches {
		t := bl.labels[pt.lab]
		if t < 0 {
			panic("cminor: internal: unbound bytecode label")
		}
		in := &bl.code[pt.at]
		switch pt.field {
		case 0:
			in.a = int32(t)
		case 1:
			in.b = int32(t)
		default:
			in.c = int32(t)
		}
	}
}

func (bl *bcLower) innermost() *bcLoop {
	if len(bl.loops) == 0 {
		return nil
	}
	return bl.loops[len(bl.loops)-1]
}

// protectI copies a scalar-slot register to a temporary when a later
// sibling expression could overwrite the slot before the captured
// value is consumed (left-to-right evaluation parity). Temporaries are
// single-assignment and need no protection.
func (bl *bcLower) protectI(r int32, later ...Expr) int32 {
	if int(r) >= bl.fi.NumScalars || !exprWritesAny(later...) {
		return r
	}
	t := bl.newI()
	bl.emit(instr{op: opMovI, d: t, a: r})
	return t
}

func (bl *bcLower) protectF(r int32, later ...Expr) int32 {
	if int(r) >= bl.fi.NumScalars || !exprWritesAny(later...) {
		return r
	}
	t := bl.newF()
	bl.emit(instr{op: opMovF, d: t, a: r})
	return t
}

// exprWritesAny reports whether any of the expressions contains an
// assignment or ++/-- (user calls cannot appear in lowered functions).
func exprWritesAny(es ...Expr) bool {
	for _, e := range es {
		if e == nil {
			continue
		}
		w := false
		Walk(e, func(n Node) bool {
			switch n.(type) {
			case *AssignExpr, *IncDecExpr:
				w = true
				return false
			}
			return true
		})
		if w {
			return true
		}
	}
	return false
}

// iArith builds an int ALU instruction; div/mod carry the fault
// position.
func (bl *bcLower) iArith(base TokenKind, d, a, b int32, p Pos) instr {
	switch base {
	case PLUS:
		return instr{op: opAddI, d: d, a: a, b: b}
	case MINUS:
		return instr{op: opSubI, d: d, a: a, b: b}
	case STAR:
		return instr{op: opMulI, d: d, a: a, b: b}
	case SLASH:
		return instr{op: opDivI, d: d, a: a, b: b, pos: p}
	case PERCENT:
		return instr{op: opModI, d: d, a: a, b: b, pos: p}
	}
	bl.bail()
	return instr{}
}

func (bl *bcLower) fArith(base TokenKind, d, a, b int32) instr {
	switch base {
	case PLUS:
		return instr{op: opAddF, d: d, a: a, b: b}
	case MINUS:
		return instr{op: opSubF, d: d, a: a, b: b}
	case STAR:
		return instr{op: opMulF, d: d, a: a, b: b}
	case SLASH:
		return instr{op: opDivF, d: d, a: a, b: b}
	case PERCENT:
		return instr{op: opModF, d: d, a: a, b: b}
	}
	bl.bail()
	return instr{}
}

func bcArithCode(base TokenKind) uint8 {
	switch base {
	case PLUS:
		return bcOpAdd
	case MINUS:
		return bcOpSub
	case STAR:
		return bcOpMul
	case SLASH:
		return bcOpDiv
	default:
		return bcOpMod
	}
}

// ---- statements ----

func (bl *bcLower) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		bl.step(s.P)
		for _, st := range s.Stmts {
			bl.stmt(st)
		}
	case *DeclStmt:
		bl.declStmt(s)
	case *ExprStmt:
		bl.step(s.P)
		bl.exprVoid(s.X)
	case *ForStmt:
		bl.forStmt(s)
	case *WhileStmt:
		bl.step(s.P)
		head := bl.newLabel()
		end := bl.newLabel()
		bl.bind(head)
		bl.branchBool(s.Cond, end, false)
		for _, st := range s.Body.Stmts {
			bl.stmt(st)
		}
		bl.step(s.P)
		bl.jmp(head)
		bl.bind(end)
	case *IfStmt:
		bl.step(s.P)
		if s.Else == nil {
			end := bl.newLabel()
			bl.branchBool(s.Cond, end, false)
			for _, st := range s.Then.Stmts {
				bl.stmt(st)
			}
			bl.bind(end)
			return
		}
		els := bl.newLabel()
		end := bl.newLabel()
		bl.branchBool(s.Cond, els, false)
		for _, st := range s.Then.Stmts {
			bl.stmt(st)
		}
		bl.jmp(end)
		bl.bind(els)
		bl.stmt(s.Else)
		bl.bind(end)
	case *ReturnStmt:
		bl.step(s.P)
		if s.X == nil {
			bl.emit(instr{op: opRetZ})
			return
		}
		if v, ok := constEval(s.X); ok {
			if v.IsInt {
				bl.emit(instr{op: opRetI, a: bl.constI(v.I)})
			} else {
				bl.emit(instr{op: opRetF, a: bl.constF(v.F)})
			}
			return
		}
		switch bl.ca.kindOf(s.X) {
		case kInt:
			bl.emit(instr{op: opRetI, a: bl.lowerI(s.X)})
		case kFloat:
			bl.emit(instr{op: opRetF, a: bl.lowerF(s.X)})
		default:
			bl.bail()
		}
	case *PragmaStmt:
		bl.step(s.P)
	default:
		bl.bail()
	}
}

func (bl *bcLower) declStmt(s *DeclStmt) {
	bl.step(s.P)
	ref := bl.ca.declRef(s)
	if s.Type.IsArray() {
		if ref.Kind != VarArray || len(s.Type.Dims) > 2 {
			bl.bail()
		}
		slot := int32(ref.Slot)
		dims := make([]int32, len(s.Type.Dims))
		for i, dx := range s.Type.Dims {
			dims[i] = bl.asI(dx)
			if i+1 < len(s.Type.Dims) {
				dims[i] = bl.protectI(dims[i], s.Type.Dims[i+1:]...)
			}
		}
		if len(dims) == 1 {
			bl.emit(instr{op: opNewArr1, a: dims[0], c: slot})
		} else {
			bl.emit(instr{op: opNewArr2, a: dims[0], b: dims[1], c: slot})
		}
		return
	}
	if ref.Kind != VarScalar {
		bl.bail()
	}
	slot := int32(ref.Slot)
	bl.mutated[slot] = true
	// Declarations normalize to the declared kind (the closure backend's
	// C initialisation conversion).
	if s.Type.Kind == Int {
		if bl.types.scalars[ref.Slot] != kInt {
			bl.bail()
		}
		if s.Init == nil {
			bl.emit(instr{op: opLdcI, d: slot})
			return
		}
		r := bl.asI(s.Init)
		if r != slot {
			bl.emit(instr{op: opMovI, d: slot, a: r})
		}
		return
	}
	if bl.types.scalars[ref.Slot] != kFloat {
		bl.bail()
	}
	if s.Init == nil {
		bl.emit(instr{op: opLdcF, d: slot})
		return
	}
	r := bl.asF(s.Init)
	if r != slot {
		bl.emit(instr{op: opMovF, d: slot, a: r})
	}
}

func (bl *bcLower) forStmt(s *ForStmt) {
	if bl.countedFor(s) {
		return
	}
	bl.step(s.P)
	if s.Init != nil {
		bl.stmt(s.Init)
	}
	head := bl.newLabel()
	end := bl.newLabel()
	bl.bind(head)
	if s.Cond != nil {
		bl.branchBool(s.Cond, end, false)
	}
	for _, st := range s.Body.Stmts {
		bl.stmt(st)
	}
	if s.Post != nil {
		bl.exprVoid(s.Post)
	}
	bl.step(s.P)
	bl.jmp(head)
	bl.bind(end)
}

// countedFor recognizes the counted-loop shape — the same checks as
// loopopt's countedLoop — and emits the versioned loop on success.
func (bl *bcLower) countedFor(s *ForStmt) bool {
	if s.Init == nil || s.Cond == nil || s.Post == nil {
		return false
	}
	if len(bl.loops) >= bcMaxLoopDepth {
		return false
	}
	c := bl.ca
	var ivRef VarRef
	var lo Expr // nil means 0
	switch init := s.Init.(type) {
	case *ExprStmt:
		a, ok := init.X.(*AssignExpr)
		if !ok || a.Op != ASSIGN {
			return false
		}
		id, ok := stripParens(a.LHS).(*Ident)
		if !ok {
			return false
		}
		ref := c.refOf(id)
		if ref.Kind != VarScalar {
			return false
		}
		ivRef, lo = ref, a.RHS
	case *DeclStmt:
		ref := c.declRef(init)
		if ref.Kind != VarScalar || init.Type.Kind != Int {
			return false
		}
		ivRef, lo = ref, init.Init
	default:
		return false
	}
	if c.varKind(ivRef) != kInt {
		return false
	}
	cond, ok := stripParens(s.Cond).(*BinExpr)
	if !ok || (cond.Op != LT && cond.Op != LEQ) {
		return false
	}
	cid, ok := stripParens(cond.X).(*Ident)
	if !ok || !c.isIVIdent(cid, ivRef.Slot) {
		return false
	}
	hi := cond.Y
	hk := c.kindOf(hi)
	c.constKind(hi, &hk)
	if hk != kInt {
		return false
	}
	if !c.isUnitStep(s.Post, ivRef.Slot) {
		return false
	}
	lc := c.analyzeLoopBody(s.Body, ivRef.Slot)
	if lc == nil || lc.modScalars[ivRef.Slot] {
		return false
	}
	if !c.invariant(hi, lc) {
		return false
	}
	bl.emitCountedLoop(s, ivRef, lo, hi, cond.Op == LT, lc)
	return true
}

// emitCountedLoop lowers a recognized counted loop. Step parity with
// the closure backend (and walker): opStep2 charges the for statement
// and its init clause; opLoopNext charges one step per iteration after
// incrementing the induction register — the exact counter state the
// closure's fr.ec.step() sequence produces, fault-time values
// included.
func (bl *bcLower) emitCountedLoop(s *ForStmt, ivRef VarRef, lo, hi Expr, strict bool, lc *loopCtx) {
	ivSlot := int32(ivRef.Slot)
	bl.mutated[ivSlot] = true
	bl.emit(instr{op: opStep2, pos: s.P})
	if lo == nil {
		bl.emit(instr{op: opLdcI, d: ivSlot})
	} else if r := bl.asI(lo); r != ivSlot {
		bl.emit(instr{op: opMovI, d: ivSlot, a: r})
	}
	last := bl.newI()
	if rh := bl.asI(hi); rh != last {
		bl.emit(instr{op: opMovI, d: last, a: rh})
	}
	exit := bl.newLabel()
	if strict {
		// iv < hi becomes iv <= hi-1; MinInt64 cannot be decremented, and
		// the loop is empty in that case anyway.
		bl.patch(bl.emit(instr{op: opStrictDec, a: last}), 1, exit)
	}
	bl.patch(bl.emit(instr{op: opBrCI, sub: bcGT, a: ivSlot, b: last}), 2, exit)

	loop := &bcLoop{
		lc:        lc,
		ivSlot:    ivRef.Slot,
		ivReg:     ivSlot,
		lastReg:   last,
		arrCache:  map[int64]bcDims{},
		addrCache: map[bcAddrKey]bcAddr{},
	}
	fastL := bl.newLabel()
	safeL := bl.newLabel()
	proofsL := bl.newLabel()
	loop.safeLab = safeL
	bl.jmp(proofsL)

	bl.bind(fastL)
	bodyStart := len(bl.code)
	loop.fast = true
	bl.loops = append(bl.loops, loop)
	for _, st := range s.Body.Stmts {
		bl.stmt(st)
	}
	bl.loops = bl.loops[:len(bl.loops)-1]
	bl.backEdge(ivSlot, last, bodyStart, fastL, s.P)
	bl.jmp(exit)

	if len(loop.proofs) == 0 {
		// No classified accesses: the "fast" body is already fully
		// checked. The safe version would be identical, so skip it.
		bl.bind(proofsL)
		bl.bind(safeL)
		bl.jmp(fastL)
	} else {
		bl.bind(safeL)
		safeStart := len(bl.code)
		loop.fast = false
		bl.loops = append(bl.loops, loop)
		for _, st := range s.Body.Stmts {
			bl.stmt(st)
		}
		bl.loops = bl.loops[:len(bl.loops)-1]
		bl.backEdge(ivSlot, last, safeStart, safeL, s.P)
		bl.jmp(exit)
		bl.bind(proofsL)
		for _, pf := range loop.proofs {
			pf()
		}
		bl.jmp(fastL)
	}
	bl.bind(exit)
}

// backEdge closes a counted-loop body. When the body opens with the
// usual single-step charge, the back edge fuses it into opLoopNext2 —
// one budget check covers both the iteration charge and the next
// body's leading step, and the jump re-enters just past the opStep.
// Bodies that open with anything else (opStep2 from a nested for,
// or nothing at all) keep the plain opLoopNext.
func (bl *bcLower) backEdge(iv, last int32, bodyStart, bodyLab int, p Pos) {
	if bodyStart < len(bl.code) && bl.code[bodyStart].op == opStep {
		lab := bl.newLabel()
		bl.labels[lab] = bodyStart + 1
		bl.patch(bl.emit(instr{op: opLoopNext2, a: iv, b: last, pos: p}), 2, lab)
		return
	}
	bl.patch(bl.emit(instr{op: opLoopNext, a: iv, b: last, pos: p}), 2, bodyLab)
}

// ---- unchecked-access classification ----

// classifyFast classifies a subscript chain against the innermost
// counted loop's fast body, registering the preamble proofs that make
// the unchecked address valid for every iteration. Returns ok=false
// when the access must stay checked.
func (bl *bcLower) classifyFast(root *Ident, subs []Expr) (bcAddr, bool) {
	loop := bl.innermost()
	if loop == nil || !loop.fast || len(subs) < 1 || len(subs) > 2 {
		return bcAddr{}, false
	}
	c := bl.ca
	lc := loop.lc
	ref := c.refOf(root)
	var arr int32
	switch ref.Kind {
	case VarArray:
		// Local arrays declared inside the body rebind their slot each
		// iteration; the preamble proof would validate a stale binding.
		if lc.declArrays[ref.Slot] {
			return bcAddr{}, false
		}
		arr = int32(ref.Slot)
	case VarGlobalArray:
		arr = ^int32(ref.Slot)
	default:
		return bcAddr{}, false
	}
	type subClass struct {
		iv  bool
		off int64
	}
	cls := make([]subClass, len(subs))
	for i, sx := range subs {
		if off, ok := c.ivAffine(sx, loop.ivSlot); ok {
			cls[i] = subClass{iv: true, off: off}
			continue
		}
		if !c.invariant(sx, lc) {
			return bcAddr{}, false
		}
		k := c.kindOf(sx)
		c.constKind(sx, &k)
		if k == kDyn {
			return bcAddr{}, false
		}
	}
	if len(subs) == 1 {
		d := loop.dims(bl, arr, 1)
		if cls[0].iv {
			off := cls[0].off
			loop.addProof(func() {
				bl.patch(bl.emit(instr{op: opProveIV, a: loop.ivReg, b: loop.lastReg, imm: off, d: d.d0}), 2, loop.safeLab)
			})
			return bcAddr{mode: bcMode0, a: loop.ivReg, imm: off, ds: d.ds}, true
		}
		key, cacheable := bl.invKey(1, arr, subs[0], 0)
		if cacheable {
			if a, ok := loop.addrCache[key]; ok {
				return a, true
			}
		}
		rs := bl.newI()
		sx := subs[0]
		loop.addProof(func() {
			r := bl.asI(sx)
			bl.emit(instr{op: opMovI, d: rs, a: r})
			bl.patch(bl.emit(instr{op: opProveRng, a: rs, b: d.d0}), 2, loop.safeLab)
		})
		a := bcAddr{mode: bcMode0, a: rs, ds: d.ds}
		if cacheable {
			loop.addrCache[key] = a
		}
		return a, true
	}
	d := loop.dims(bl, arr, 2)
	switch {
	case !cls[0].iv && cls[1].iv:
		// A[inv][iv+off]: row*d1 hoisted to the preamble.
		off := cls[1].off
		key, cacheable := bl.invKey(2, arr, subs[0], off)
		if cacheable {
			if a, ok := loop.addrCache[key]; ok {
				return a, true
			}
		}
		rBase := bl.newI()
		sx := subs[0]
		loop.addProof(func() {
			r := bl.asI(sx)
			bl.emit(instr{op: opMovI, d: rBase, a: r})
			bl.patch(bl.emit(instr{op: opProveRng, a: rBase, b: d.d0}), 2, loop.safeLab)
			bl.emit(instr{op: opMulI, d: rBase, a: rBase, b: d.d1})
			bl.patch(bl.emit(instr{op: opProveIV, a: loop.ivReg, b: loop.lastReg, imm: off, d: d.d1}), 2, loop.safeLab)
		})
		a := bcAddr{mode: bcMode1, a: rBase, b: loop.ivReg, imm: off, ds: d.ds}
		if cacheable {
			loop.addrCache[key] = a
		}
		return a, true
	case cls[0].iv && !cls[1].iv:
		// A[iv+offR][inv]: ea = iv*d1 + (col + offR*d1). The decomposed
		// sum is congruent mod 2^64 to the proven in-range flat offset,
		// so any intermediate wrapping cancels.
		offR := cls[0].off
		key, cacheable := bl.invKey(3, arr, subs[1], offR)
		if cacheable {
			if a, ok := loop.addrCache[key]; ok {
				return a, true
			}
		}
		rAdj := bl.newI()
		sx := subs[1]
		loop.addProof(func() {
			rc := bl.asI(sx)
			bl.emit(instr{op: opMovI, d: rAdj, a: rc})
			bl.patch(bl.emit(instr{op: opProveRng, a: rAdj, b: d.d1}), 2, loop.safeLab)
			bl.patch(bl.emit(instr{op: opProveIV, a: loop.ivReg, b: loop.lastReg, imm: offR, d: d.d0}), 2, loop.safeLab)
			if offR != 0 {
				t := bl.newI()
				bl.emit(instr{op: opLdcI, d: t, imm: offR})
				bl.emit(instr{op: opMulI, d: t, a: t, b: d.d1})
				bl.emit(instr{op: opAddI, d: rAdj, a: rAdj, b: t})
			}
		})
		a := bcAddr{mode: bcMode2, a: loop.ivReg, e: d.d1, b: rAdj, ds: d.ds}
		if cacheable {
			loop.addrCache[key] = a
		}
		return a, true
	case cls[0].iv && cls[1].iv:
		// Diagonal A[iv+off0][iv+off1]: ea = iv*(d1+1) + off0*d1 + off1.
		rStride := bl.newI()
		rAdj := bl.newI()
		off0, off1 := cls[0].off, cls[1].off
		loop.addProof(func() {
			bl.patch(bl.emit(instr{op: opProveIV, a: loop.ivReg, b: loop.lastReg, imm: off0, d: d.d0}), 2, loop.safeLab)
			bl.patch(bl.emit(instr{op: opProveIV, a: loop.ivReg, b: loop.lastReg, imm: off1, d: d.d1}), 2, loop.safeLab)
			bl.emit(instr{op: opAddcI, d: rStride, a: d.d1, imm: 1})
			bl.emit(instr{op: opLdcI, d: rAdj, imm: off0})
			bl.emit(instr{op: opMulI, d: rAdj, a: rAdj, b: d.d1})
			bl.emit(instr{op: opAddcI, d: rAdj, a: rAdj, imm: off1})
		})
		return bcAddr{mode: bcMode2, a: loop.ivReg, e: rStride, b: rAdj, ds: d.ds}, true
	default:
		// A[inv][inv]: the whole flat offset is loop-invariant.
		rOff := bl.newI()
		s0, s1 := subs[0], subs[1]
		loop.addProof(func() {
			rr := bl.asI(s0)
			bl.emit(instr{op: opMovI, d: rOff, a: rr})
			bl.patch(bl.emit(instr{op: opProveRng, a: rOff, b: d.d0}), 2, loop.safeLab)
			rc := bl.asI(s1)
			rc2 := bl.newI()
			bl.emit(instr{op: opMovI, d: rc2, a: rc})
			bl.patch(bl.emit(instr{op: opProveRng, a: rc2, b: d.d1}), 2, loop.safeLab)
			bl.emit(instr{op: opMulI, d: rOff, a: rOff, b: d.d1})
			bl.emit(instr{op: opAddI, d: rOff, a: rOff, b: rc2})
		})
		return bcAddr{mode: bcMode0, a: rOff, ds: d.ds}, true
	}
}

// invKey builds the address-cache key for an invariant subscript when
// it is a plain scalar variable (possibly parenthesized): its value is
// fixed for the whole loop, so occurrences with equal (array, slot,
// offset) address the same element. Other invariant expressions are
// not cached — proving two of them equivalent would need a structural
// comparison the lowerer does not attempt.
func (bl *bcLower) invKey(shape uint8, arr int32, sx Expr, off int64) (bcAddrKey, bool) {
	id, ok := stripParens(sx).(*Ident)
	if !ok {
		return bcAddrKey{}, false
	}
	ref := bl.ca.refOf(id)
	if ref.Kind != VarScalar && ref.Kind != VarGlobalScalar {
		return bcAddrKey{}, false
	}
	return bcAddrKey{shape: shape, arr: arr, kind: ref.Kind, slot: ref.Slot, off: off}, true
}

// emitU emits one unchecked access instruction at a classified address;
// group is the mode-0 opcode of a *0/*1/*2 group.
func (bl *bcLower) emitU(group bcOp, addr bcAddr, sub uint8, d int32, pos Pos) {
	bl.emit(instr{op: group + bcOp(addr.mode), sub: sub, a: addr.a, b: addr.b,
		c: addr.ds, d: d, e: addr.e, imm: addr.imm, pos: pos})
}

// emitAcc emits a multiply-accumulate superinstruction dreg[ea] ±=
// float64(rx*ry); group is opFMAAcc0 (add) or opFMSAcc0 (subtract).
// Mode-2 addresses use e for the row stride, so ry rides in imm there
// (free: mode-2 immediates are folded into b).
func (bl *bcLower) emitAcc(group bcOp, addr bcAddr, rx, ry int32, pos Pos) {
	in := instr{op: group + bcOp(addr.mode), a: addr.a, b: addr.b,
		c: addr.ds, d: rx, e: addr.e, imm: addr.imm, pos: pos}
	if addr.mode == bcMode2 {
		in.imm = int64(ry)
	} else {
		in.e = ry
	}
	bl.emit(in)
}

// emitLdMul emits the load-multiply superinstruction freg[t] = x *
// dreg[ea], the hot "coefficient * A[...]" shape. Same mode-2 operand
// packing as emitFMA.
func (bl *bcLower) emitLdMul(addr bcAddr, x int32, pos Pos) int32 {
	t := bl.newF()
	in := instr{op: opLdMul0 + bcOp(addr.mode), a: addr.a, b: addr.b,
		c: addr.ds, d: t, e: addr.e, imm: addr.imm, pos: pos}
	if addr.mode == bcMode2 {
		in.imm = int64(x)
	} else {
		in.e = x
	}
	bl.emit(in)
	return t
}

// ---- element access ----

func (bl *bcLower) arrRefOf(root *Ident) int32 {
	ref := bl.ca.refOf(root)
	switch ref.Kind {
	case VarArray:
		return int32(ref.Slot)
	case VarGlobalArray:
		return ^int32(ref.Slot)
	}
	bl.bail()
	return 0
}

// lowerSubs evaluates subscripts left to right into index registers,
// protecting earlier results against writes in later subscripts.
func (bl *bcLower) lowerSubs(subs []Expr) []int32 {
	if len(subs) < 1 || len(subs) > 2 {
		bl.bail()
	}
	idx := make([]int32, len(subs))
	for i, sx := range subs {
		idx[i] = bl.asI(sx)
		if i+1 < len(subs) {
			idx[i] = bl.protectI(idx[i], subs[i+1:]...)
		}
	}
	return idx
}

// indexLoad lowers an element read in float expression position.
func (bl *bcLower) indexLoad(ix *IndexExpr) int32 {
	root, subs := splitIndexChain(ix)
	if root == nil {
		bl.bail()
	}
	t := bl.newF()
	if addr, ok := bl.classifyFast(root, subs); ok {
		bl.emitU(opLdU0, addr, 0, t, ix.P)
		return t
	}
	arr := bl.arrRefOf(root)
	idx := bl.lowerSubs(subs)
	if len(idx) == 1 {
		bl.emit(instr{op: opLdE1, a: idx[0], c: arr, d: t, pos: ix.P})
	} else {
		bl.emit(instr{op: opLdE2, a: idx[0], b: idx[1], c: arr, d: t, pos: ix.P})
	}
	return t
}

// storeElem lowers a plain element store of an already-evaluated float
// register (RHS first, then subscripts — walker evaluation order).
func (bl *bcLower) storeElem(ix *IndexExpr, fv int32) {
	root, subs := splitIndexChain(ix)
	if root == nil {
		bl.bail()
	}
	if addr, ok := bl.classifyFast(root, subs); ok {
		bl.emitU(opStU0, addr, 0, fv, ix.P)
		return
	}
	arr := bl.arrRefOf(root)
	fv = bl.protectF(fv, subs...)
	idx := bl.lowerSubs(subs)
	if len(idx) == 1 {
		bl.emit(instr{op: opStE1, a: idx[0], c: arr, d: fv, pos: ix.P})
	} else {
		bl.emit(instr{op: opStE2, a: idx[0], b: idx[1], c: arr, d: fv, pos: ix.P})
	}
}

// compoundElem lowers an element compound assignment in expression
// position, returning the stored value's register.
func (bl *bcLower) compoundElem(ix *IndexExpr, base TokenKind, rhs Expr) int32 {
	rv := bl.asF(rhs)
	root, subs := splitIndexChain(ix)
	if root == nil {
		bl.bail()
	}
	res := bl.newF()
	if addr, ok := bl.classifyFast(root, subs); ok {
		old := bl.newF()
		bl.emitU(opLdU0, addr, 0, old, ix.P)
		bl.emit(bl.fArith(base, res, old, rv))
		bl.emitU(opStU0, addr, 0, res, ix.P)
		return res
	}
	arr := bl.arrRefOf(root)
	rv = bl.protectF(rv, subs...)
	idx := bl.lowerSubs(subs)
	if len(idx) == 1 {
		bl.emit(instr{op: opCmE1, sub: bcArithCode(base), a: idx[0], c: arr, d: rv, e: res, pos: ix.P})
	} else {
		bl.emit(instr{op: opCmE2, sub: bcArithCode(base), a: idx[0], b: idx[1], c: arr, d: rv, e: res, pos: ix.P})
	}
	return res
}

// ---- expressions ----

// lowerI lowers a statically-int expression, returning its register.
func (bl *bcLower) lowerI(e Expr) int32 {
	if v, ok := constEval(e); ok {
		return bl.constI(v.Int())
	}
	switch e := e.(type) {
	case *Ident:
		ref := bl.ca.refOf(e)
		switch ref.Kind {
		case VarScalar:
			if bl.types.scalars[ref.Slot] != kInt {
				bl.bail()
			}
			return int32(ref.Slot)
		case VarGlobalScalar:
			if bl.ca.varKind(ref) != kInt {
				bl.bail()
			}
			t := bl.newI()
			bl.emit(instr{op: opLdGI, d: t, a: int32(ref.Slot)})
			return t
		}
	case *ParenExpr:
		return bl.lowerI(e.X)
	case *CastExpr:
		return bl.asI(e.X)
	case *UnExpr:
		switch e.Op {
		case MINUS:
			x := bl.lowerI(e.X)
			t := bl.newI()
			bl.emit(instr{op: opNegI, d: t, a: x})
			return t
		case NOT:
			return bl.boolNum(e.X, 0, 1)
		}
	case *BinExpr:
		switch e.Op {
		case ANDAND, OROR, EQ, NEQ, LT, GT, LEQ, GEQ:
			return bl.boolNum(e, 1, 0)
		}
		x := bl.lowerI(e.X)
		x = bl.protectI(x, e.Y)
		y := bl.lowerI(e.Y)
		t := bl.newI()
		bl.emit(bl.iArith(e.Op, t, x, y, e.P))
		return t
	case *CondExpr:
		t := bl.newI()
		els := bl.newLabel()
		end := bl.newLabel()
		bl.branchBool(e.Cond, els, false)
		r1 := bl.lowerI(e.Then)
		bl.emit(instr{op: opMovI, d: t, a: r1})
		bl.jmp(end)
		bl.bind(els)
		r2 := bl.lowerI(e.Else)
		bl.emit(instr{op: opMovI, d: t, a: r2})
		bl.bind(end)
		return t
	case *AssignExpr:
		return bl.intAssign(e)
	case *IncDecExpr:
		return bl.intIncDec(e)
	}
	bl.bail()
	return 0
}

// lowerF lowers a statically-double expression, returning its register.
func (bl *bcLower) lowerF(e Expr) int32 {
	if v, ok := constEval(e); ok {
		return bl.constF(v.Float())
	}
	switch e := e.(type) {
	case *Ident:
		ref := bl.ca.refOf(e)
		switch ref.Kind {
		case VarScalar:
			if bl.types.scalars[ref.Slot] != kFloat {
				bl.bail()
			}
			return int32(ref.Slot)
		case VarGlobalScalar:
			if bl.ca.varKind(ref) != kFloat {
				bl.bail()
			}
			t := bl.newF()
			bl.emit(instr{op: opLdGF, d: t, a: int32(ref.Slot)})
			return t
		}
	case *ParenExpr:
		return bl.lowerF(e.X)
	case *CastExpr:
		return bl.asF(e.X)
	case *UnExpr:
		if e.Op == MINUS {
			x := bl.lowerF(e.X)
			t := bl.newF()
			bl.emit(instr{op: opNegF, d: t, a: x})
			return t
		}
	case *BinExpr:
		// A statically-float binary op evaluates both operands as floats
		// (closure floatExpr parity). "x * A[...]" with a proven element
		// address fuses into the load-multiply superinstruction: X still
		// lowers first and the load rides inside the superinstruction, so
		// evaluation order is unchanged. The mirrored "A[...] * y" shape
		// is not fused — commuting the operands could flip which NaN
		// payload propagates.
		if e.Op == STAR {
			if ix, ok := stripParens(e.Y).(*IndexExpr); ok && bl.ca.kindOf(ix) == kFloat {
				if root, subs := splitIndexChain(ix); root != nil {
					if addr, ok := bl.classifyFast(root, subs); ok {
						x := bl.asF(e.X)
						return bl.emitLdMul(addr, x, ix.P)
					}
				}
			}
		}
		x := bl.asF(e.X)
		x = bl.protectF(x, e.Y)
		y := bl.asF(e.Y)
		t := bl.newF()
		bl.emit(bl.fArith(e.Op, t, x, y))
		return t
	case *CondExpr:
		t := bl.newF()
		els := bl.newLabel()
		end := bl.newLabel()
		bl.branchBool(e.Cond, els, false)
		r1 := bl.lowerF(e.Then)
		bl.emit(instr{op: opMovF, d: t, a: r1})
		bl.jmp(end)
		bl.bind(els)
		r2 := bl.lowerF(e.Else)
		bl.emit(instr{op: opMovF, d: t, a: r2})
		bl.bind(end)
		return t
	case *IndexExpr:
		return bl.indexLoad(e)
	case *AssignExpr:
		return bl.floatAssign(e)
	case *IncDecExpr:
		return bl.floatIncDec(e)
	case *CallExpr:
		if bl.ca.isBuiltin(e) {
			return bl.builtin(e)
		}
	}
	bl.bail()
	return 0
}

// asI lowers e to an int register with Value.Int() coercion semantics.
func (bl *bcLower) asI(e Expr) int32 {
	if v, ok := constEval(e); ok {
		return bl.constI(v.Int())
	}
	switch bl.ca.kindOf(e) {
	case kInt:
		return bl.lowerI(e)
	case kFloat:
		f := bl.lowerF(e)
		t := bl.newI()
		bl.emit(instr{op: opF2I, d: t, a: f})
		return t
	}
	bl.bail()
	return 0
}

// asF lowers e to a float register with Value.Float() semantics.
func (bl *bcLower) asF(e Expr) int32 {
	if v, ok := constEval(e); ok {
		return bl.constF(v.Float())
	}
	switch bl.ca.kindOf(e) {
	case kInt:
		i := bl.lowerI(e)
		t := bl.newF()
		bl.emit(instr{op: opI2F, d: t, a: i})
		return t
	case kFloat:
		return bl.lowerF(e)
	}
	bl.bail()
	return 0
}

// ---- branches ----

// branchBool emits a conditional jump to target taken when e's C
// truthiness equals jumpIf. Short-circuit operators lower to branch
// chains without materializing 0/1 (closure boolExpr parity).
func (bl *bcLower) branchBool(e Expr, target int, jumpIf bool) {
	if v, ok := constEval(e); ok {
		if v.Bool() == jumpIf {
			bl.jmp(target)
		}
		return
	}
	switch e := e.(type) {
	case *ParenExpr:
		bl.branchBool(e.X, target, jumpIf)
		return
	case *UnExpr:
		if e.Op == NOT {
			bl.branchBool(e.X, target, !jumpIf)
			return
		}
	case *BinExpr:
		switch e.Op {
		case ANDAND:
			if !jumpIf {
				bl.branchBool(e.X, target, false)
				bl.branchBool(e.Y, target, false)
			} else {
				skip := bl.newLabel()
				bl.branchBool(e.X, skip, false)
				bl.branchBool(e.Y, target, true)
				bl.bind(skip)
			}
			return
		case OROR:
			if jumpIf {
				bl.branchBool(e.X, target, true)
				bl.branchBool(e.Y, target, true)
			} else {
				skip := bl.newLabel()
				bl.branchBool(e.X, skip, true)
				bl.branchBool(e.Y, target, false)
				bl.bind(skip)
			}
			return
		case EQ, NEQ, LT, GT, LEQ, GEQ:
			bl.branchCmp(e, target, jumpIf)
			return
		}
	}
	switch bl.ca.kindOf(e) {
	case kInt:
		r := bl.lowerI(e)
		op := opBrNZI
		if !jumpIf {
			op = opBrZI
		}
		bl.patch(bl.emit(instr{op: op, a: r}), 1, target)
	case kFloat:
		r := bl.lowerF(e)
		op := opBrNZF
		if !jumpIf {
			op = opBrZF
		}
		bl.patch(bl.emit(instr{op: op, a: r}), 1, target)
	default:
		bl.bail()
	}
}

// branchCmp lowers a comparison branch. The runtime rule is "int
// compare iff both operands are statically int"; bcNegate inverts the
// evaluated predicate rather than rewriting the operator, so NaN
// branch behaviour matches the closure backend's !cond exactly.
func (bl *bcLower) branchCmp(e *BinExpr, target int, jumpIf bool) {
	c := bl.ca
	xk, yk := c.kindOf(e.X), c.kindOf(e.Y)
	c.constKind(e.X, &xk)
	c.constKind(e.Y, &yk)
	var code uint8
	switch e.Op {
	case EQ:
		code = bcEQ
	case NEQ:
		code = bcNEQ
	case LT:
		code = bcLT
	case GT:
		code = bcGT
	case LEQ:
		code = bcLEQ
	default:
		code = bcGEQ
	}
	if !jumpIf {
		code |= bcNegate
	}
	if xk == kInt && yk == kInt {
		x := bl.asI(e.X)
		x = bl.protectI(x, e.Y)
		y := bl.asI(e.Y)
		bl.patch(bl.emit(instr{op: opBrCI, sub: code, a: x, b: y}), 2, target)
		return
	}
	if xk == kFloat || yk == kFloat {
		x := bl.asF(e.X)
		x = bl.protectF(x, e.Y)
		y := bl.asF(e.Y)
		bl.patch(bl.emit(instr{op: opBrCF, sub: code, a: x, b: y}), 2, target)
		return
	}
	bl.bail()
}

// boolNum materializes e's truthiness as tv/fv in an int register.
func (bl *bcLower) boolNum(e Expr, tv, fv int64) int32 {
	t := bl.newI()
	fl := bl.newLabel()
	end := bl.newLabel()
	bl.branchBool(e, fl, false)
	bl.emit(instr{op: opLdcI, d: t, imm: tv})
	bl.jmp(end)
	bl.bind(fl)
	bl.emit(instr{op: opLdcI, d: t, imm: fv})
	bl.bind(end)
	return t
}

// ---- assignments, ++/--, builtins ----

// intAssign lowers an assignment whose value is statically int.
func (bl *bcLower) intAssign(e *AssignExpr) int32 {
	if ix, ok := stripParens(e.LHS).(*IndexExpr); ok {
		// A statically-int array store is always a plain assignment
		// (compound element stores are kinded float).
		if e.Op != ASSIGN {
			bl.bail()
		}
		rv := bl.asI(e.RHS)
		fv := bl.newF()
		bl.emit(instr{op: opI2F, d: fv, a: rv})
		bl.storeElem(ix, fv)
		return rv
	}
	id, ok := stripParens(e.LHS).(*Ident)
	if !ok {
		bl.bail()
	}
	ref := bl.ca.refOf(id)
	switch ref.Kind {
	case VarScalar:
		if bl.types.scalars[ref.Slot] != kInt {
			bl.bail()
		}
		slot := int32(ref.Slot)
		bl.mutated[slot] = true
		if e.Op == ASSIGN {
			rv := bl.asI(e.RHS)
			if rv != slot {
				bl.emit(instr{op: opMovI, d: slot, a: rv})
			}
			return slot
		}
		base, ok := compoundBase(e.Op)
		if !ok {
			bl.bail()
		}
		rk := bl.ca.kindOf(e.RHS)
		bl.ca.constKind(e.RHS, &rk)
		switch rk {
		case kInt:
			// RHS first, then the target's old value (closure parity).
			rv := bl.lowerI(e.RHS)
			t := bl.newI()
			bl.emit(bl.iArith(base, t, slot, rv, e.P))
			bl.emit(instr{op: opMovI, d: slot, a: t})
			return t
		case kFloat:
			// int var ⊕= float rhs: float arithmetic, truncating store.
			rv := bl.lowerF(e.RHS)
			t1 := bl.newF()
			bl.emit(instr{op: opI2F, d: t1, a: slot})
			t2 := bl.newF()
			bl.emit(bl.fArith(base, t2, t1, rv))
			t3 := bl.newI()
			bl.emit(instr{op: opF2I, d: t3, a: t2})
			bl.emit(instr{op: opMovI, d: slot, a: t3})
			return t3
		}
		bl.bail()
	case VarGlobalScalar:
		g := int32(ref.Slot)
		if e.Op == ASSIGN {
			rv := bl.asI(e.RHS)
			bl.emit(instr{op: opStGI, d: g, a: rv})
			return rv
		}
		base, ok := compoundBase(e.Op)
		if !ok {
			bl.bail()
		}
		rk := bl.ca.kindOf(e.RHS)
		bl.ca.constKind(e.RHS, &rk)
		switch rk {
		case kInt:
			rv := bl.lowerI(e.RHS)
			old := bl.newI()
			bl.emit(instr{op: opLdGI, d: old, a: g})
			t := bl.newI()
			bl.emit(bl.iArith(base, t, old, rv, e.P))
			bl.emit(instr{op: opStGI, d: g, a: t})
			return t
		case kFloat:
			rv := bl.lowerF(e.RHS)
			old := bl.newI()
			bl.emit(instr{op: opLdGI, d: old, a: g})
			of := bl.newF()
			bl.emit(instr{op: opI2F, d: of, a: old})
			t2 := bl.newF()
			bl.emit(bl.fArith(base, t2, of, rv))
			t3 := bl.newI()
			bl.emit(instr{op: opF2I, d: t3, a: t2})
			bl.emit(instr{op: opStGI, d: g, a: t3})
			return t3
		}
		bl.bail()
	}
	bl.bail()
	return 0
}

// floatAssign lowers an assignment whose value is statically double.
func (bl *bcLower) floatAssign(e *AssignExpr) int32 {
	if ix, ok := stripParens(e.LHS).(*IndexExpr); ok {
		if e.Op == ASSIGN {
			rv := bl.lowerF(e.RHS)
			bl.storeElem(ix, rv)
			return rv
		}
		base, ok := compoundBase(e.Op)
		if !ok {
			bl.bail()
		}
		return bl.compoundElem(ix, base, e.RHS)
	}
	id, ok := stripParens(e.LHS).(*Ident)
	if !ok {
		bl.bail()
	}
	ref := bl.ca.refOf(id)
	switch ref.Kind {
	case VarScalar:
		if bl.types.scalars[ref.Slot] != kFloat {
			bl.bail()
		}
		slot := int32(ref.Slot)
		bl.mutated[slot] = true
		if e.Op == ASSIGN {
			rv := bl.lowerF(e.RHS)
			if rv != slot {
				bl.emit(instr{op: opMovF, d: slot, a: rv})
			}
			return slot
		}
		base, ok := compoundBase(e.Op)
		if !ok {
			bl.bail()
		}
		rv := bl.asF(e.RHS)
		t := bl.newF()
		bl.emit(bl.fArith(base, t, slot, rv))
		bl.emit(instr{op: opMovF, d: slot, a: t})
		return t
	case VarGlobalScalar:
		g := int32(ref.Slot)
		if e.Op == ASSIGN {
			rv := bl.lowerF(e.RHS)
			bl.emit(instr{op: opStGF, d: g, a: rv})
			return rv
		}
		base, ok := compoundBase(e.Op)
		if !ok {
			bl.bail()
		}
		rv := bl.asF(e.RHS)
		old := bl.newF()
		bl.emit(instr{op: opLdGF, d: old, a: g})
		t := bl.newF()
		bl.emit(bl.fArith(base, t, old, rv))
		bl.emit(instr{op: opStGF, d: g, a: t})
		return t
	}
	bl.bail()
	return 0
}

// intIncDec lowers i++ / i-- on a statically-int scalar, returning the
// old value (postfix semantics).
func (bl *bcLower) intIncDec(e *IncDecExpr) int32 {
	id, ok := stripParens(e.X).(*Ident)
	if !ok {
		bl.bail()
	}
	delta := int64(1)
	if e.Op != INC {
		delta = -1
	}
	ref := bl.ca.refOf(id)
	switch ref.Kind {
	case VarScalar:
		if bl.types.scalars[ref.Slot] != kInt {
			bl.bail()
		}
		slot := int32(ref.Slot)
		bl.mutated[slot] = true
		old := bl.newI()
		bl.emit(instr{op: opMovI, d: old, a: slot})
		bl.emit(instr{op: opAddcI, d: slot, a: slot, imm: delta})
		return old
	case VarGlobalScalar:
		g := int32(ref.Slot)
		old := bl.newI()
		bl.emit(instr{op: opLdGI, d: old, a: g})
		t := bl.newI()
		bl.emit(instr{op: opAddcI, d: t, a: old, imm: delta})
		bl.emit(instr{op: opStGI, d: g, a: t})
		return old
	}
	bl.bail()
	return 0
}

// floatIncDec lowers x++ / x-- on a float scalar or array element.
func (bl *bcLower) floatIncDec(e *IncDecExpr) int32 {
	inc := e.Op == INC
	delta := 1.0
	if !inc {
		delta = -1.0
	}
	if ix, ok := stripParens(e.X).(*IndexExpr); ok {
		root, subs := splitIndexChain(ix)
		if root == nil {
			bl.bail()
		}
		old := bl.newF()
		if addr, ok := bl.classifyFast(root, subs); ok {
			nv := bl.newF()
			bl.emitU(opLdU0, addr, 0, old, ix.P)
			bl.emit(instr{op: opAddcF, d: nv, a: old, fv: delta})
			bl.emitU(opStU0, addr, 0, nv, ix.P)
			return old
		}
		var sub uint8
		if inc {
			sub = 1
		}
		arr := bl.arrRefOf(root)
		idx := bl.lowerSubs(subs)
		if len(idx) == 1 {
			bl.emit(instr{op: opIncE1, sub: sub, a: idx[0], c: arr, d: old, pos: ix.P})
		} else {
			bl.emit(instr{op: opIncE2, sub: sub, a: idx[0], b: idx[1], c: arr, d: old, pos: ix.P})
		}
		return old
	}
	id, ok := stripParens(e.X).(*Ident)
	if !ok {
		bl.bail()
	}
	ref := bl.ca.refOf(id)
	switch ref.Kind {
	case VarScalar:
		if bl.types.scalars[ref.Slot] != kFloat {
			bl.bail()
		}
		slot := int32(ref.Slot)
		bl.mutated[slot] = true
		old := bl.newF()
		bl.emit(instr{op: opMovF, d: old, a: slot})
		bl.emit(instr{op: opAddcF, d: slot, a: slot, fv: delta})
		return old
	case VarGlobalScalar:
		g := int32(ref.Slot)
		old := bl.newF()
		bl.emit(instr{op: opLdGF, d: old, a: g})
		t := bl.newF()
		bl.emit(instr{op: opAddcF, d: t, a: old, fv: delta})
		bl.emit(instr{op: opStGF, d: g, a: t})
		return old
	}
	bl.bail()
	return 0
}

// builtin lowers a math-builtin call.
func (bl *bcLower) builtin(e *CallExpr) int32 {
	args := make([]int32, len(e.Args))
	for i, a := range e.Args {
		args[i] = bl.asF(a)
		if i+1 < len(e.Args) {
			args[i] = bl.protectF(args[i], e.Args[i+1:]...)
		}
	}
	t := bl.newF()
	var sub uint8
	switch e.Fun {
	case "pow":
		bl.emit(instr{op: opPow, d: t, a: args[0], b: args[1]})
		return t
	case "sqrt":
		sub = bcSqrt
	case "fabs":
		sub = bcFabs
	case "exp":
		sub = bcExp
	case "log":
		sub = bcLog
	case "floor":
		sub = bcFloor
	case "ceil":
		sub = bcCeil
	default:
		bl.bail()
	}
	bl.emit(instr{op: opMath1, sub: sub, d: t, a: args[0]})
	return t
}

// ---- statement-position expressions ----

// exprVoid lowers e for statement position: stores are emitted
// store-only, and the hot accumulate shapes fuse into
// superinstructions.
func (bl *bcLower) exprVoid(e Expr) {
	switch e := e.(type) {
	case *ParenExpr:
		bl.exprVoid(e.X)
		return
	case *AssignExpr:
		if ix, ok := stripParens(e.LHS).(*IndexExpr); ok {
			bl.voidElemAssign(e, ix)
			return
		}
		if id, ok := stripParens(e.LHS).(*Ident); ok {
			ref := bl.ca.refOf(id)
			if ref.Kind == VarScalar && bl.types.scalars[ref.Slot] == kFloat {
				if mul := bl.fmasRHS(e, ref); mul != nil {
					slot := int32(ref.Slot)
					bl.mutated[slot] = true
					rx := bl.asF(mul.X)
					rx = bl.protectF(rx, mul.Y)
					ry := bl.asF(mul.Y)
					bl.emit(instr{op: opFMAS, d: slot, a: rx, b: ry})
					return
				}
			}
		}
	}
	if _, ok := constEval(e); ok {
		return // pure constant in statement position
	}
	switch bl.ca.kindOf(e) {
	case kInt:
		bl.lowerI(e)
	case kFloat:
		bl.lowerF(e)
	default:
		bl.bail()
	}
}

// fmasRHS recognizes the scalar fma-accumulate shapes "s += x*y" and
// "s = s + x*y" (float multiply, no writes hiding in the operands for
// the plain form, which reorders the read of s after x*y), returning
// the multiply node.
func (bl *bcLower) fmasRHS(e *AssignExpr, ref VarRef) *BinExpr {
	if e.Op == ADDASSIGN {
		if mul, ok := stripParens(e.RHS).(*BinExpr); ok && mul.Op == STAR && bl.ca.kindOf(mul) == kFloat {
			return mul
		}
		return nil
	}
	if e.Op != ASSIGN {
		return nil
	}
	add, ok := stripParens(e.RHS).(*BinExpr)
	if !ok || add.Op != PLUS {
		return nil
	}
	lhs, ok := stripParens(add.X).(*Ident)
	if !ok {
		return nil
	}
	r2 := bl.ca.refOf(lhs)
	if r2.Kind != VarScalar || r2.Slot != ref.Slot {
		return nil
	}
	mul, ok := stripParens(add.Y).(*BinExpr)
	if !ok || mul.Op != STAR || bl.ca.kindOf(mul) != kFloat {
		return nil
	}
	if exprWritesAny(add.Y) {
		return nil
	}
	return mul
}

// fmaPlainRHS matches "elem + x*y" and "elem - x*y" (the plain-form
// element multiply-accumulate RHS), returning the multiply, the loaded
// element, and the matching superinstruction group (opFMAAcc0 for +,
// opFMSAcc0 for -).
func fmaPlainRHS(rhs Expr) (*BinExpr, *IndexExpr, bcOp) {
	add, ok := stripParens(rhs).(*BinExpr)
	if !ok || (add.Op != PLUS && add.Op != MINUS) {
		return nil, nil, 0
	}
	group := opFMAAcc0
	if add.Op == MINUS {
		group = opFMSAcc0
	}
	lix, ok := stripParens(add.X).(*IndexExpr)
	if !ok {
		return nil, nil, 0
	}
	mul, ok := stripParens(add.Y).(*BinExpr)
	if !ok || mul.Op != STAR {
		return nil, nil, 0
	}
	return mul, lix, group
}

// voidElemAssign lowers an element assignment in statement position,
// fusing the proven accumulate shapes into opFMAAcc: "A[...] += x*y"
// unconditionally (the closure reads the element after the RHS too),
// and "A[...] = A[...] + x*y" when the load provably aliases the store
// and the RHS is write-free (the element read moves after x*y).
func (bl *bcLower) voidElemAssign(e *AssignExpr, ix *IndexExpr) {
	root, subs := splitIndexChain(ix)
	if root == nil {
		bl.bail()
	}
	addr, fast := bl.classifyFast(root, subs)
	if e.Op == ASSIGN {
		if fast && !exprWritesAny(e.RHS) {
			if mul, lix, group := fmaPlainRHS(e.RHS); mul != nil && bl.ca.kindOf(mul) == kFloat {
				lroot, lsubs := splitIndexChain(lix)
				if lroot != nil {
					if addr2, ok := bl.classifyFast(lroot, lsubs); ok && addr2 == addr {
						rx := bl.asF(mul.X)
						rx = bl.protectF(rx, mul.Y)
						ry := bl.asF(mul.Y)
						bl.emitAcc(group, addr, rx, ry, ix.P)
						return
					}
				}
			}
		}
		rv := bl.asF(e.RHS)
		if fast {
			bl.emitU(opStU0, addr, 0, rv, ix.P)
			return
		}
		arr := bl.arrRefOf(root)
		rv = bl.protectF(rv, subs...)
		idx := bl.lowerSubs(subs)
		if len(idx) == 1 {
			bl.emit(instr{op: opStE1, a: idx[0], c: arr, d: rv, pos: ix.P})
		} else {
			bl.emit(instr{op: opStE2, a: idx[0], b: idx[1], c: arr, d: rv, pos: ix.P})
		}
		return
	}
	base, ok := compoundBase(e.Op)
	if !ok {
		bl.bail()
	}
	if fast && (base == PLUS || base == MINUS) {
		if mul, ok := stripParens(e.RHS).(*BinExpr); ok && mul.Op == STAR && bl.ca.kindOf(mul) == kFloat {
			group := opFMAAcc0
			if base == MINUS {
				group = opFMSAcc0
			}
			rx := bl.asF(mul.X)
			rx = bl.protectF(rx, mul.Y)
			ry := bl.asF(mul.Y)
			bl.emitAcc(group, addr, rx, ry, ix.P)
			return
		}
	}
	rv := bl.asF(e.RHS)
	if fast {
		bl.emitU(opCmU0, addr, bcArithCode(base), rv, ix.P)
		return
	}
	arr := bl.arrRefOf(root)
	rv = bl.protectF(rv, subs...)
	idx := bl.lowerSubs(subs)
	res := bl.newF()
	if len(idx) == 1 {
		bl.emit(instr{op: opCmE1, sub: bcArithCode(base), a: idx[0], c: arr, d: rv, e: res, pos: ix.P})
	} else {
		bl.emit(instr{op: opCmE2, sub: bcArithCode(base), a: idx[0], b: idx[1], c: arr, d: rv, e: res, pos: ix.P})
	}
}
