package cminor

import (
	"context"
	"math"
	"strings"
	"testing"
)

// mustBytecode compiles src with the bytecode backend at O3 and fails the
// test if the frontend rejects it.
func mustBytecode(t *testing.T, file, src string) *Program {
	t.Helper()
	p, err := Compile(MustParse(file, src), WithBackend(BackendBytecode), WithOptLevel(O3))
	if err != nil {
		t.Fatalf("Compile(%s, bytecode): %v", file, err)
	}
	return p
}

// TestBytecodeKernelParity runs every benchmark kernel under the walker and
// the bytecode backend and demands bit-identical results: same return value,
// same step count, and the same Float64bits in every output array.
func TestBytecodeKernelParity(t *testing.T) {
	for _, k := range BenchKernels {
		t.Run(k.Name, func(t *testing.T) {
			f := MustParse(k.File, k.Src)
			p, err := Compile(f, WithBackend(BackendBytecode), WithOptLevel(O3))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			wArgs := k.Args()
			w := NewWalker(f)
			wv, werr := w.Call(k.Fn, wArgs...)
			bArgs := k.Args()
			ins := p.NewInstance()
			bv, berr := ins.Call(k.Fn, bArgs...)
			if (werr == nil) != (berr == nil) {
				t.Fatalf("error divergence: walker=%v bytecode=%v", werr, berr)
			}
			if !sameValue(wv, bv) {
				t.Fatalf("value divergence: walker=%+v bytecode=%+v", wv, bv)
			}
			if w.Steps != ins.LastCallSteps() {
				t.Errorf("step divergence: walker=%d bytecode=%d", w.Steps, ins.LastCallSteps())
			}
			for i := range wArgs {
				wa, ok := wArgs[i].(*Array)
				if !ok {
					continue
				}
				ba := bArgs[i].(*Array)
				for j := range wa.Data {
					if math.Float64bits(wa.Data[j]) != math.Float64bits(ba.Data[j]) {
						t.Fatalf("arg %d diverges at index %d: %g vs %g",
							i, j, wa.Data[j], ba.Data[j])
					}
				}
			}
		})
	}
}

// TestBytecodeFuncs checks the lowering introspection hook: in the norms
// program the driver calls a user function, which the lowerer does not
// support, so only the leaf sq must appear in the lowered set.
func TestBytecodeFuncs(t *testing.T) {
	var norms BenchKernel
	for _, k := range BenchKernels {
		if k.Name == "norms" {
			norms = k
		}
	}
	p := mustBytecode(t, norms.File, norms.Src)
	got := BytecodeFuncs(p)
	if len(got) != 1 || got[0] != "sq" {
		t.Fatalf("BytecodeFuncs = %v, want [sq] (driver has user calls and must bail)", got)
	}

	if got := BytecodeFuncs(mustBytecode(t, "dot.c", disGoldenSrc)); len(got) != 1 || got[0] != "dot" {
		t.Fatalf("BytecodeFuncs(dot) = %v, want [dot]", got)
	}
}

// stepParitySrc exercises the fused back edge (loopnext2), two-version
// counted loops, a scalar accumulator, and array writes — the shapes whose
// step accounting is most delicate under a tight budget.
const stepParitySrc = `
double mv(int n, double A[n][n], double x[n], double y[n]) {
  int i; int j;
  for (i = 0; i < n; i++) {
    y[i] = 0.0;
    for (j = 0; j < n; j++) {
      y[i] = y[i] + A[i][j] * x[j];
    }
  }
  double s = 0.0;
  for (i = 0; i < n; i++) {
    s = s + y[i];
  }
  return s;
}
`

func stepParityArgs(n int) []any {
	a, x, y := NewArray(n, n), NewArray(n), NewArray(n)
	for i := range a.Data {
		a.Data[i] = float64(i%11)*0.25 - 1.0
	}
	for i := range x.Data {
		x.Data[i] = float64(i%5) + 0.5
	}
	return []any{IntV(int64(n)), a, x, y}
}

// TestBytecodeStepBudgetParity sweeps the statement budget across every
// possible fault point of a matvec kernel and checks that the bytecode
// backend faults exactly where the walker does: same error text, same
// LastCallSteps, and the same partial output-array state. This pins down
// the loopnext2 rollback: the fused back edge charges two steps at once
// and must report the budget-crossing count, not the fused one.
func TestBytecodeStepBudgetParity(t *testing.T) {
	const n = 6
	f := MustParse("mv.c", stepParitySrc)
	p, err := Compile(f, WithBackend(BackendBytecode), WithOptLevel(O3))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	// Unbudgeted run to learn the total step count.
	w := NewWalker(f)
	if _, err := w.Call("mv", stepParityArgs(n)...); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	total := w.Steps

	for k := 1; k <= total+1; k++ {
		w := NewWalker(f)
		w.MaxSteps = k
		wArgs := stepParityArgs(n)
		wv, werr := w.Call("mv", wArgs...)

		ins := p.NewInstance()
		ins.SetMaxSteps(k)
		bArgs := stepParityArgs(n)
		bv, berr := ins.Call("mv", bArgs...)

		if (werr == nil) != (berr == nil) {
			t.Fatalf("k=%d: error divergence: walker=%v bytecode=%v", k, werr, berr)
		}
		if werr != nil && werr.Error() != berr.Error() {
			t.Fatalf("k=%d: fault text divergence: %q vs %q", k, werr, berr)
		}
		if werr == nil && !sameValue(wv, bv) {
			t.Fatalf("k=%d: value divergence: %+v vs %+v", k, wv, bv)
		}
		if w.Steps != ins.LastCallSteps() {
			t.Fatalf("k=%d: step divergence: walker=%d bytecode=%d", k, w.Steps, ins.LastCallSteps())
		}
		wy, by := wArgs[3].(*Array), bArgs[3].(*Array)
		for j := range wy.Data {
			if math.Float64bits(wy.Data[j]) != math.Float64bits(by.Data[j]) {
				t.Fatalf("k=%d: partial y diverges at %d: %g vs %g", k, j, wy.Data[j], by.Data[j])
			}
		}
	}
}

// TestBytecodeSafeBodyFaultParity calls the matvec kernel with arrays that
// are smaller than the loop bound, so the runtime proofs fail, the safe
// (bounds-checked) body runs, and the out-of-range access must fault
// exactly like the closure-tree backend (same positioned diagnostic) and
// like the walker (same step count and partial state; the walker's own
// diagnostic carries no position, so its text is compared by message).
func TestBytecodeSafeBodyFaultParity(t *testing.T) {
	const n = 6
	shortArgs := func() []any {
		a, x, y := NewArray(4, 4), NewArray(n), NewArray(n)
		for i := range a.Data {
			a.Data[i] = float64(i) * 0.5
		}
		for i := range x.Data {
			x.Data[i] = 1.0
		}
		return []any{IntV(int64(n)), a, x, y}
	}

	f := MustParse("mv.c", stepParitySrc)
	w := NewWalker(f)
	wArgs := shortArgs()
	_, werr := w.Call("mv", wArgs...)
	if werr == nil {
		t.Fatal("walker: expected out-of-range fault, got nil")
	}

	p, err := Compile(f, WithBackend(BackendBytecode), WithOptLevel(O3))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ins := p.NewInstance()
	bArgs := shortArgs()
	_, berr := ins.Call("mv", bArgs...)
	if berr == nil {
		t.Fatal("bytecode: expected out-of-range fault, got nil")
	}
	tree, err := Compile(f, WithOptLevel(O3))
	if err != nil {
		t.Fatalf("compile O3: %v", err)
	}
	_, cerr := tree.NewInstance().Call("mv", shortArgs()...)
	if cerr == nil {
		t.Fatal("closure tree: expected out-of-range fault, got nil")
	}
	if berr.Error() != cerr.Error() {
		t.Fatalf("fault divergence:\n  closure tree: %v\n  bytecode:     %v", cerr, berr)
	}
	const msg = "index 4 out of range [0,4) in dim 1"
	if !strings.Contains(werr.Error(), msg) || !strings.Contains(berr.Error(), msg) {
		t.Fatalf("fault message divergence:\n  walker:   %v\n  bytecode: %v", werr, berr)
	}
	if w.Steps != ins.LastCallSteps() {
		t.Fatalf("fault step divergence: walker=%d bytecode=%d", w.Steps, ins.LastCallSteps())
	}
	wy, by := wArgs[3].(*Array), bArgs[3].(*Array)
	for j := range wy.Data {
		if math.Float64bits(wy.Data[j]) != math.Float64bits(by.Data[j]) {
			t.Fatalf("partial y diverges at %d: %g vs %g", j, wy.Data[j], by.Data[j])
		}
	}
}

// TestBytecodeDivZeroFaultParity checks a second Diag class: integer
// division by zero inside a lowered loop body.
func TestBytecodeDivZeroFaultParity(t *testing.T) {
	src := `
int f(int n, double a[n]) {
  int i; int s = 0;
  for (i = 0; i < n; i++) {
    s = s + 100 / (2 - i);
  }
  return s;
}
`
	f := MustParse("div.c", src)
	w := NewWalker(f)
	_, werr := w.Call("f", IntV(8), NewArray(8))
	if werr == nil {
		t.Fatal("walker: expected division fault")
	}
	ins := mustBytecode(t, "div.c", src).NewInstance()
	_, berr := ins.Call("f", IntV(8), NewArray(8))
	if berr == nil {
		t.Fatal("bytecode: expected division fault")
	}
	if werr.Error() != berr.Error() {
		t.Fatalf("fault divergence:\n  walker:   %v\n  bytecode: %v", werr, berr)
	}
	if w.Steps != ins.LastCallSteps() {
		t.Fatalf("fault step divergence: walker=%d bytecode=%d", w.Steps, ins.LastCallSteps())
	}
}

// TestBytecodeCancellation checks that CallContext interrupts a bytecode
// loop when the context is cancelled mid-flight.
func TestBytecodeCancellation(t *testing.T) {
	src := `
double spin(int n, double a[n]) {
  double s = 0.0;
  int i; int r;
  for (r = 0; r < 1000000; r++) {
    for (i = 0; i < n; i++) {
      s = s + a[i];
    }
  }
  return s;
}
`
	ins := mustBytecode(t, "spin.c", src).NewInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ins.CallContext(ctx, "spin", IntV(64), NewArray(64)); err == nil {
		t.Fatal("expected cancellation error, got nil")
	} else if !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("error does not mention cancellation: %v", err)
	}
}

// TestBytecodeSuperinstructions pins the superinstruction coverage on the
// flagship shapes: the gemm update must fuse into the three-wide muldot
// triple, and the trisolv back-substitution into the subtracting row/vector
// triple, both riding the fused loopnext2 back edge.
func TestBytecodeSuperinstructions(t *testing.T) {
	want := map[string]string{
		"gemm":    "f3.muldot",
		"atax":    "f3.rowvec",
		"trisolv": "f3.rowvecs",
	}
	for _, k := range BenchKernels {
		su, ok := want[k.Name]
		if !ok {
			continue
		}
		p := mustBytecode(t, k.File, k.Src)
		out, err := Disassemble(p, k.Fn)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if !strings.Contains(out, su) {
			t.Errorf("%s: disassembly lacks %s:\n%s", k.Name, su, out)
		}
		if !strings.Contains(out, "loopnext2") {
			t.Errorf("%s: disassembly lacks fused back edge loopnext2", k.Name)
		}
	}
}

const disGoldenSrc = `
double dot(int n, double a[n], double x[n]) {
  double s = 0.0;
  int i;
  for (i = 0; i < n; i++) {
    s = s + a[i] * x[i];
  }
  return s;
}
`

// disGolden is the full Disassemble output for disGoldenSrc. It documents
// the two-version loop layout end to end: proof preamble (provearr/proveiv)
// choosing between the unchecked fast body (ldu0 + fmas + loopnext2) and
// the checked safe body (lde1 + fmas + loopnext2). Update deliberately when
// the lowering changes.
const disGolden = `func dot: 32 instrs, 7 int regs, 8 float regs, 2 data regs
   0  ldc.f      f3 = 0
   1  ldc.i      i3 = 0
   2  step                                    ; 3:10
   3  mov.f      f1 f3
   4  step                                    ; 4:7
   5  ldc.i      i2 = 0
   6  step2                                   ; 5:3
   7  mov.i      i2 i3
   8  mov.i      i4 i0
   9  strictdec  i4 @29
  10  brc.i      gt i2 i4 @29
  11  jmp        @24
  12  step                                    ; 6:7
  13  ldu0       f4 d0[i2]                    ; 6:14
  14  ldu0       f5 d1[i2]                    ; 6:21
  15  fmas       f1 += f4*f5
  16  loopnext2  i2<=i4 @13                   ; 5:3
  17  jmp        @29
  18  step                                    ; 6:7
  19  lde1       f6 a0[i2]                    ; 6:14
  20  lde1       f7 a1[i2]                    ; 6:21
  21  fmas       f1 += f6*f7
  22  loopnext2  i2<=i4 @19                   ; 5:3
  23  jmp        @29
  24  provearr   a0 rank=1 i5 d0 else @18
  25  proveiv    [i2+0, i4+0] < i5 else @18
  26  provearr   a1 rank=1 i6 d1 else @18
  27  proveiv    [i2+0, i4+0] < i6 else @18
  28  jmp        @12
  29  step                                    ; 8:3
  30  ret.f      f1
  31  ret
`

func TestDisassembleGolden(t *testing.T) {
	p := mustBytecode(t, "dot.c", disGoldenSrc)
	out, err := Disassemble(p, "dot")
	if err != nil {
		t.Fatal(err)
	}
	if out != disGolden {
		t.Fatalf("disassembly drifted from golden.\n--- got ---\n%s--- want ---\n%s", out, disGolden)
	}
}

func TestDisassembleErrors(t *testing.T) {
	bc := mustBytecode(t, "dot.c", disGoldenSrc)

	if _, err := Disassemble(bc, "nosuch"); err == nil {
		t.Fatal("unknown function: expected error")
	} else if got, want := err.Error(), `cminor: Disassemble: no function "nosuch"`; got != want {
		t.Fatalf("unknown function: got %q, want %q", got, want)
	}

	tree, err := Compile(MustParse("dot.c", disGoldenSrc), WithOptLevel(O3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Disassemble(tree, "dot"); err == nil {
		t.Fatal("closure-tree program: expected error")
	} else if !strings.Contains(err.Error(), "not bytecode") {
		t.Fatalf("closure-tree program: got %q, want a backend mismatch error", err)
	}

	bailed := mustBytecode(t, "call.c", `
double g(double x) { return x + 1.0; }
double f(double x) { return g(x) * 2.0; }
`)
	if _, err := Disassemble(bailed, "f"); err == nil {
		t.Fatal("bailed function: expected error")
	} else if !strings.Contains(err.Error(), "bailed to the closure fallback") {
		t.Fatalf("bailed function: got %q, want a bail error", err)
	}
}
