package cminor

import (
	"fmt"
	"math"
)

// The compiler is the third stage of the resolve → typecheck → compile →
// execute pipeline. It lowers each resolved function into a tree of
// closures ("closure compilation"): operator dispatch, identifier binding
// and subscript-chain shape are all decided once, at compile time, so the
// execute stage performs only array-indexed frame accesses and direct
// calls. Runtime faults (bad subscript, integer division by zero, step
// budget) surface as positioned *Diag errors instead of crashes.
//
// On top of the generic Value closures, the compiler emits *specialized
// evaluator families* driven by the typecheck pass: expressions with a
// static int/double kind compile to unboxed func(*frame) int64 /
// func(*frame) float64 / func(*frame) bool evaluators that never
// construct or branch on the tagged Value struct. Literal subtrees are
// constant-folded at compile time.
//
// The loop optimizer recognizes the canonical counted shape
// "for (i = lo; i < hi; i++)" over a statically-int induction variable
// and compiles it into a native Go loop with the bound hoisted (the
// bound must be a pure, loop-invariant expression). Inside such loops,
// rank-1/2 subscripts whose indices are affine in the induction variable
// are strength-reduced: row base offsets and bounds checks are hoisted
// into a per-entry preamble, and row-striding accesses get incremental
// offset updates. Safety is preserved by loop versioning — the preamble
// validates every hoisted access over the whole iteration range and
// falls back to a fully-checked body when anything is out of range, so
// faulting programs keep bit-for-bit walker parity.
//
// Each function is compiled twice: the specialized body (used for every
// internal call and every well-kinded entry call) and a generic body
// that entry calls fall back to when an argument binding breaks a
// declared parameter kind (e.g. a raw *Value of the wrong kind), which
// the old interpreter permitted. Which passes run is selected per
// Program variant by OptLevel (see engine.go): O0 uses only the generic
// body, O1 adds the typed specialization, O2 adds the loop optimizer.
//
// The compiler reads the AST and the resolver/typecheck side tables but
// writes neither: lowering the same resolved file repeatedly — even
// concurrently — is safe, which is what Program.Variant relies on.

// flow is the statement-level control-flow result.
type flow uint8

const (
	flowNormal flow = iota
	flowReturn
)

// evalFn is a compiled expression; the typed variants are the unboxed
// specializations; stmtFn is a compiled statement.
type evalFn func(fr *frame) Value
type evalIntFn func(fr *frame) int64
type evalFloatFn func(fr *frame) float64
type evalBoolFn func(fr *frame) bool
type evalVoidFn func(fr *frame)
type stmtFn func(fr *frame) flow

// hoistCell is one strength-reduced subscript's per-execution state: the
// array it resolved to and the (incrementally maintained) flat offset.
type hoistCell struct {
	arr  *Array
	base int
	step int
}

// frame is the slot-indexed activation record of one compiled call. The
// three slices are the storage classes assigned by the resolver; every
// variable access is a constant-index load/store. hoists holds the
// loop optimizer's strength-reduction state. Frames are pooled per
// Instance (its ec field) and recycled between calls.
type frame struct {
	ec      *Instance
	scalars []Value
	cells   []*Value
	arrays  []*Array
	hoists  []hoistCell
	// ireg/freg are the bytecode backend's register files (nil for
	// closure-compiled variants). Slots [0, NumScalars) shadow the
	// function's scalar variables by static kind; higher registers are
	// single-assignment temporaries.
	ireg []int64
	freg []float64
	// dreg holds array backing stores hoisted by opProveArr so fast-body
	// accesses index the data directly, like the closure backend's
	// hoisted row slices.
	dreg [][]float64
	ret  Value
}

// globalStore holds per-Instance storage for file-scope variables.
type globalStore struct {
	scalars []Value
	arrays  []*Array
}

// compiledFunc pairs a function's resolver summary with its compiled
// bodies. Bodies are filled in after all shells exist so (mutually)
// recursive calls can capture the shell pointer. body is the variant's
// best lowering; generic is the kind-agnostic fallback entry calls use
// when an argument binding violates a declared parameter kind. idx
// names the function's frame pool within an Instance.
type compiledFunc struct {
	info     *FuncInfo
	idx      int
	body     stmtFn
	generic  stmtFn
	numHoist int
	// Per-variant frame sizes. They start at the resolver's counts and
	// grow when the O3 inliner renumbers callee slots into this frame.
	nScalars int
	nCells   int
	nArrays  int
	// bc is the flat-bytecode lowering (BackendBytecode variants only);
	// nil when the function bailed to the closure fallback.
	bc *bcFunc
}

// rtPanic raises a positioned runtime diagnostic; Interp.Call recovers it
// into the returned error.
func rtPanic(file string, p Pos, format string, args ...any) {
	panic(diagf(file, p, format, args...))
}

type compiler struct {
	prog *Program
	// types/info are the typecheck results for the function being
	// compiled; both nil compiles the generic (kind-agnostic) body.
	types *fnTypes
	info  *typeInfo
	// opt gates the loop optimizer (O2 only); the generic body always
	// compiles as if O0. passes refines which O3 passes run (see
	// passOn); it is only consulted when opt >= O3.
	opt    OptLevel
	passes PassMask
	// numHoist counts strength-reduction slots handed out in this body.
	numHoist int
	// loops is the stack of active counted-loop contexts; elemFn
	// registers hoistable subscripts against the innermost one.
	loops []*loopCtx
	// plan is the O3 inlining plan for the function being compiled (nil
	// below O3 and for the generic body); remap is non-nil while an
	// inlined callee's body is being lowered, relocating its frame slots
	// into the caller's slot spaces.
	plan  *inlinePlan
	remap *inlineSite
}

// passOn reports whether one of the O3 passes is active in this
// lowering: the opt level must reach O3 AND the variant's pass mask
// must enable it. This is what makes the knob grid finer than the four
// -O points — an autotuner can toggle inlining, bounds-check
// elimination and unrolling independently.
func (c *compiler) passOn(m PassMask) bool { return c.opt >= O3 && c.passes&m != 0 }

// refOf reads an identifier's resolved slot from the side table,
// relocated into the caller's frame when an inlined body is active.
func (c *compiler) refOf(e *Ident) VarRef { return c.remap.apply(c.prog.res.refs[e.ID]) }

// declRef reads a declaration's resolved slot from the side table
// (relocated like refOf).
func (c *compiler) declRef(s *DeclStmt) VarRef { return c.remap.apply(c.prog.res.refs[s.ID]) }

// isBuiltin reports whether the resolver marked e as a math builtin.
func (c *compiler) isBuiltin(e *CallExpr) bool { return c.prog.res.builtins[e.ID] }

// kindOf returns the static kind the typechecker assigned to e (kDyn in
// generic mode or for untyped nodes).
func (c *compiler) kindOf(e Expr) kind {
	if c.types == nil {
		return kDyn
	}
	return c.types.expr[e]
}

// varKind returns the static kind of a scalar variable slot.
func (c *compiler) varKind(ref VarRef) kind {
	if c.types == nil {
		return kDyn
	}
	switch ref.Kind {
	case VarScalar:
		return c.types.scalars[ref.Slot]
	case VarGlobalScalar:
		return c.info.globals[ref.Slot]
	}
	return kDyn
}

// bug reports an internal inconsistency: the resolver accepted something
// the compiler cannot lower. It should be unreachable.
func (c *compiler) bug(p Pos, format string, args ...any) {
	panic(fmt.Sprintf("cminor: internal: %s: %s", p, fmt.Sprintf(format, args...)))
}

// ---- statements ----

func (c *compiler) block(b *Block) stmtFn {
	stmts := make([]stmtFn, len(b.Stmts))
	for i, s := range b.Stmts {
		stmts[i] = c.stmt(s)
	}
	if len(stmts) == 1 {
		return stmts[0]
	}
	return func(fr *frame) flow {
		for _, s := range stmts {
			if f := s(fr); f != flowNormal {
				return f
			}
		}
		return flowNormal
	}
}

func (c *compiler) stmt(s Stmt) stmtFn {
	switch s := s.(type) {
	case *Block:
		inner := c.block(s)
		return func(fr *frame) flow {
			fr.ec.step()
			return inner(fr)
		}
	case *DeclStmt:
		return c.declStmt(s)
	case *ExprStmt:
		x := c.exprVoid(s.X)
		return func(fr *frame) flow {
			fr.ec.step()
			x(fr)
			return flowNormal
		}
	case *ForStmt:
		return c.forStmt(s)
	case *WhileStmt:
		cond := c.boolExpr(s.Cond)
		body := c.block(s.Body)
		return func(fr *frame) flow {
			fr.ec.step()
			for cond(fr) {
				if f := body(fr); f != flowNormal {
					return f
				}
				fr.ec.step()
			}
			return flowNormal
		}
	case *IfStmt:
		cond := c.boolExpr(s.Cond)
		then := c.block(s.Then)
		var els stmtFn
		if s.Else != nil {
			els = c.stmt(s.Else)
		}
		return func(fr *frame) flow {
			fr.ec.step()
			if cond(fr) {
				return then(fr)
			}
			if els != nil {
				return els(fr)
			}
			return flowNormal
		}
	case *ReturnStmt:
		var x evalFn
		if s.X != nil {
			x = c.expr(s.X)
		}
		return func(fr *frame) flow {
			fr.ec.step()
			if x != nil {
				fr.ret = x(fr)
			} else {
				fr.ret = Value{}
			}
			return flowReturn
		}
	case *PragmaStmt:
		return func(fr *frame) flow {
			fr.ec.step()
			return flowNormal
		}
	}
	c.bug(s.Pos(), "unsupported statement %T", s)
	return nil
}

func (c *compiler) declStmt(s *DeclStmt) stmtFn {
	ref := c.declRef(s)
	if s.Type.IsArray() {
		slot := ref.Slot
		if ref.Kind != VarArray {
			c.bug(s.P, "array decl %q resolved as %s", s.Name, ref.Kind)
		}
		// Constant dimensions are folded at compile time; VLA-style dims
		// ("double tmp[n]") are evaluated at declaration time.
		if dims, ok := constDims(s.Type.Dims); ok {
			return func(fr *frame) flow {
				fr.ec.step()
				fr.arrays[slot] = NewArray(dims...)
				return flowNormal
			}
		}
		dimFns := make([]evalIntFn, len(s.Type.Dims))
		for i, d := range s.Type.Dims {
			dimFns[i] = c.asInt(d)
		}
		return func(fr *frame) flow {
			fr.ec.step()
			dims := make([]int, len(dimFns))
			for i, df := range dimFns {
				dims[i] = int(df(fr))
			}
			fr.arrays[slot] = NewArray(dims...)
			return flowNormal
		}
	}
	slot := ref.Slot
	switch ref.Kind {
	case VarScalar:
		// Declarations normalize to the declared kind (C initialisation
		// conversion), so the stores are emitted unboxed.
		if s.Type.Kind == Int {
			var init evalIntFn
			if s.Init != nil {
				init = c.asInt(s.Init)
			}
			return func(fr *frame) flow {
				fr.ec.step()
				var v int64
				if init != nil {
					v = init(fr)
				}
				fr.scalars[slot] = IntV(v)
				return flowNormal
			}
		}
		var init evalFloatFn
		if s.Init != nil {
			init = c.asFloat(s.Init)
		}
		return func(fr *frame) flow {
			fr.ec.step()
			var v float64
			if init != nil {
				v = init(fr)
			}
			fr.scalars[slot] = FloatV(v)
			return flowNormal
		}
	case VarCell:
		// A local declared "double *p" gets a fresh cell.
		var init evalFn
		if s.Init != nil {
			init = c.expr(s.Init)
		}
		kindC := s.Type.Kind
		return func(fr *frame) flow {
			fr.ec.step()
			var v Value
			if init != nil {
				v = init(fr)
			}
			cell := convertKind(v, kindC)
			fr.cells[slot] = &cell
			return flowNormal
		}
	}
	c.bug(s.P, "scalar decl %q resolved as %s", s.Name, ref.Kind)
	return nil
}

func constDims(dims []Expr) ([]int, bool) {
	out := make([]int, len(dims))
	for i, d := range dims {
		v, ok := constEval(d)
		if !ok {
			return nil, false
		}
		out[i] = int(v.Int())
	}
	return out, true
}

func (c *compiler) forStmt(s *ForStmt) stmtFn {
	if c.types != nil && c.opt >= O2 {
		if fn := c.countedLoop(s); fn != nil {
			return fn
		}
	}
	var init stmtFn
	if s.Init != nil {
		init = c.stmt(s.Init)
	}
	var cond evalBoolFn
	if s.Cond != nil {
		cond = c.boolExpr(s.Cond)
	}
	var post evalVoidFn
	if s.Post != nil {
		post = c.exprVoid(s.Post)
	}
	body := c.block(s.Body)
	return func(fr *frame) flow {
		fr.ec.step()
		if init != nil {
			if f := init(fr); f != flowNormal {
				return f
			}
		}
		for cond == nil || cond(fr) {
			if f := body(fr); f != flowNormal {
				return f
			}
			if post != nil {
				post(fr)
			}
			fr.ec.step()
		}
		return flowNormal
	}
}

// ---- expressions ----

// expr compiles e to a generic Value evaluator, wrapping the unboxed
// specialization when the static kind is known.
func (c *compiler) expr(e Expr) evalFn {
	if v, ok := constEval(e); ok {
		return func(*frame) Value { return v }
	}
	switch c.kindOf(e) {
	case kInt:
		f := c.intExpr(e)
		return func(fr *frame) Value { return IntV(f(fr)) }
	case kFloat:
		f := c.floatExpr(e)
		return func(fr *frame) Value { return FloatV(f(fr)) }
	}
	return c.dynExpr(e)
}

// asInt compiles e to an int64 evaluator with Value.Int() coercion
// semantics (exact for int expressions, C-truncating otherwise).
func (c *compiler) asInt(e Expr) evalIntFn {
	if v, ok := constEval(e); ok {
		n := v.Int()
		return func(*frame) int64 { return n }
	}
	switch c.kindOf(e) {
	case kInt:
		return c.intExpr(e)
	case kFloat:
		f := c.floatExpr(e)
		return func(fr *frame) int64 { return int64(f(fr)) }
	}
	x := c.dynExpr(e)
	return func(fr *frame) int64 { return x(fr).Int() }
}

// asFloat compiles e to a float64 evaluator with Value.Float()
// semantics (exact for both int and double expressions).
func (c *compiler) asFloat(e Expr) evalFloatFn {
	if v, ok := constEval(e); ok {
		f := v.Float()
		return func(*frame) float64 { return f }
	}
	switch c.kindOf(e) {
	case kInt:
		f := c.intExpr(e)
		return func(fr *frame) float64 { return float64(f(fr)) }
	case kFloat:
		return c.floatExpr(e)
	}
	x := c.dynExpr(e)
	return func(fr *frame) float64 { return x(fr).Float() }
}

// boolExpr compiles e to a bool evaluator with C truthiness; comparisons
// and logical operators compile directly to branches without
// materializing 0/1 values.
func (c *compiler) boolExpr(e Expr) evalBoolFn {
	if v, ok := constEval(e); ok {
		b := v.Bool()
		return func(*frame) bool { return b }
	}
	switch e := e.(type) {
	case *ParenExpr:
		return c.boolExpr(e.X)
	case *UnExpr:
		if e.Op == NOT {
			x := c.boolExpr(e.X)
			return func(fr *frame) bool { return !x(fr) }
		}
	case *BinExpr:
		switch e.Op {
		case ANDAND:
			x, y := c.boolExpr(e.X), c.boolExpr(e.Y)
			return func(fr *frame) bool { return x(fr) && y(fr) }
		case OROR:
			x, y := c.boolExpr(e.X), c.boolExpr(e.Y)
			return func(fr *frame) bool { return x(fr) || y(fr) }
		case EQ, NEQ, LT, GT, LEQ, GEQ:
			return c.cmpExpr(e)
		}
	}
	switch c.kindOf(e) {
	case kInt:
		f := c.intExpr(e)
		return func(fr *frame) bool { return f(fr) != 0 }
	case kFloat:
		f := c.floatExpr(e)
		return func(fr *frame) bool { return f(fr) != 0 }
	}
	x := c.dynExpr(e)
	return func(fr *frame) bool { return x(fr).Bool() }
}

// cmpExpr compiles a comparison to an unboxed bool evaluator. The
// runtime rule is "int compare iff both operands are int", so a
// statically-float operand forces the float compare and both-int picks
// the int compare; mixed dynamic operands fall back to the generic op.
func (c *compiler) cmpExpr(e *BinExpr) evalBoolFn {
	xk, yk := c.kindOf(e.X), c.kindOf(e.Y)
	c.constKind(e.X, &xk)
	c.constKind(e.Y, &yk)
	if xk == kInt && yk == kInt {
		x, y := c.asInt(e.X), c.asInt(e.Y)
		switch e.Op {
		case EQ:
			return func(fr *frame) bool { return x(fr) == y(fr) }
		case NEQ:
			return func(fr *frame) bool { return x(fr) != y(fr) }
		case LT:
			return func(fr *frame) bool { return x(fr) < y(fr) }
		case GT:
			return func(fr *frame) bool { return x(fr) > y(fr) }
		case LEQ:
			return func(fr *frame) bool { return x(fr) <= y(fr) }
		case GEQ:
			return func(fr *frame) bool { return x(fr) >= y(fr) }
		}
	}
	if xk == kFloat || yk == kFloat {
		x, y := c.asFloat(e.X), c.asFloat(e.Y)
		switch e.Op {
		case EQ:
			return func(fr *frame) bool { return x(fr) == y(fr) }
		case NEQ:
			return func(fr *frame) bool { return x(fr) != y(fr) }
		case LT:
			return func(fr *frame) bool { return x(fr) < y(fr) }
		case GT:
			return func(fr *frame) bool { return x(fr) > y(fr) }
		case LEQ:
			return func(fr *frame) bool { return x(fr) <= y(fr) }
		case GEQ:
			return func(fr *frame) bool { return x(fr) >= y(fr) }
		}
	}
	op := c.valueOp(e.Op, e.P)
	x, y := c.expr(e.X), c.expr(e.Y)
	return func(fr *frame) bool { return op(x(fr), y(fr)).I != 0 }
}

// constKind refines a dynamic operand kind using constant folding, so
// literal subtrees participate in unboxed comparisons even in generic
// mode (where kindOf reports kDyn for everything).
func (c *compiler) constKind(e Expr, k *kind) bool {
	if *k != kDyn {
		return false
	}
	v, ok := constEval(e)
	if !ok {
		return false
	}
	if v.IsInt {
		*k = kInt
	} else {
		*k = kFloat
	}
	return true
}

// intExpr compiles a statically-int expression to an unboxed int64
// evaluator. Callers must have checked kindOf(e) == kInt (or pass a
// constant-foldable int subtree).
func (c *compiler) intExpr(e Expr) evalIntFn {
	if v, ok := constEval(e); ok {
		n := v.Int()
		return func(*frame) int64 { return n }
	}
	switch e := e.(type) {
	case *IntLit:
		n := e.V
		return func(*frame) int64 { return n }
	case *Ident:
		ref := c.refOf(e)
		slot := ref.Slot
		switch ref.Kind {
		case VarScalar:
			return func(fr *frame) int64 { return fr.scalars[slot].I }
		case VarGlobalScalar:
			return func(fr *frame) int64 { return fr.ec.g.scalars[slot].I }
		}
	case *ParenExpr:
		return c.intExpr(e.X)
	case *CastExpr:
		return c.asInt(e.X)
	case *UnExpr:
		switch e.Op {
		case MINUS:
			x := c.intExpr(e.X)
			return func(fr *frame) int64 { return -x(fr) }
		case NOT:
			x := c.boolExpr(e.X)
			return func(fr *frame) int64 {
				if x(fr) {
					return 0
				}
				return 1
			}
		}
	case *BinExpr:
		return c.intBin(e)
	case *CondExpr:
		cond := c.boolExpr(e.Cond)
		then, els := c.intExpr(e.Then), c.intExpr(e.Else)
		return func(fr *frame) int64 {
			if cond(fr) {
				return then(fr)
			}
			return els(fr)
		}
	case *AssignExpr:
		return c.intAssign(e)
	case *IncDecExpr:
		id, ok := stripParens(e.X).(*Ident)
		if !ok {
			break
		}
		cell := c.cellRef(id)
		inc := e.Op == INC
		return func(fr *frame) int64 {
			cl := cell(fr)
			old := cl.I
			if inc {
				cl.I = old + 1
			} else {
				cl.I = old - 1
			}
			return old
		}
	case *CallExpr:
		call := c.call(e)
		return func(fr *frame) int64 { return call(fr).I }
	}
	c.bug(e.Pos(), "expression %T not compilable as int", e)
	return nil
}

func (c *compiler) intBin(e *BinExpr) evalIntFn {
	switch e.Op {
	case ANDAND, OROR, EQ, NEQ, LT, GT, LEQ, GEQ:
		b := c.boolExpr(e)
		return func(fr *frame) int64 {
			if b(fr) {
				return 1
			}
			return 0
		}
	}
	x, y := c.intExpr(e.X), c.intExpr(e.Y)
	file, pos := c.prog.fname, e.P
	switch e.Op {
	case PLUS:
		return func(fr *frame) int64 { return x(fr) + y(fr) }
	case MINUS:
		return func(fr *frame) int64 { return x(fr) - y(fr) }
	case STAR:
		return func(fr *frame) int64 { return x(fr) * y(fr) }
	case SLASH:
		return func(fr *frame) int64 {
			a, b := x(fr), y(fr)
			if b == 0 {
				rtPanic(file, pos, "integer division by zero")
			}
			return a / b
		}
	case PERCENT:
		return func(fr *frame) int64 {
			a, b := x(fr), y(fr)
			if b == 0 {
				rtPanic(file, pos, "integer modulo by zero")
			}
			return a % b
		}
	}
	c.bug(e.P, "unsupported int binary op %s", e.Op)
	return nil
}

// intAssign compiles an assignment whose value is statically int: an
// int-kinded store into an array element, or any store into an
// int-kinded scalar (stores into int slots always coerce to int).
func (c *compiler) intAssign(e *AssignExpr) evalIntFn {
	if ix, ok := stripParens(e.LHS).(*IndexExpr); ok {
		// Statically-int value with an array target implies plain
		// assignment of an int RHS: the typechecker kinds every compound
		// array store as float (it reads the float element first).
		if e.Op != ASSIGN {
			c.bug(e.P, "compound array store %s typed as int", e.Op)
		}
		rhs := c.asInt(e.RHS)
		p := c.elemPtr(ix)
		return func(fr *frame) int64 {
			v := rhs(fr)
			*p(fr) = float64(v)
			return v
		}
	}
	id, ok := stripParens(e.LHS).(*Ident)
	if !ok {
		c.bug(e.LHS.Pos(), "invalid assignment target %T", e.LHS)
	}
	cell := c.cellRef(id)
	if e.Op == ASSIGN {
		rhs := c.asInt(e.RHS)
		return func(fr *frame) int64 {
			v := rhs(fr)
			*cell(fr) = IntV(v)
			return v
		}
	}
	base, ok := compoundBase(e.Op)
	if !ok {
		c.bug(e.P, "unsupported assignment op %s", e.Op)
	}
	file, pos := c.prog.fname, e.P
	rk := c.kindOf(e.RHS)
	c.constKind(e.RHS, &rk)
	switch rk {
	case kInt:
		rhs := c.intExpr(e.RHS)
		return func(fr *frame) int64 {
			v := rhs(fr)
			cl := cell(fr)
			old := cl.I
			var nv int64
			switch base {
			case PLUS:
				nv = old + v
			case MINUS:
				nv = old - v
			case STAR:
				nv = old * v
			case SLASH:
				if v == 0 {
					rtPanic(file, pos, "integer division by zero")
				}
				nv = old / v
			case PERCENT:
				if v == 0 {
					rtPanic(file, pos, "integer modulo by zero")
				}
				nv = old % v
			}
			*cl = IntV(nv)
			return nv
		}
	case kFloat:
		// int var ⊕= float rhs: the arithmetic happens in float, then
		// the store truncates back to int (the walker's coercion rule).
		rhs := c.floatExpr(e.RHS)
		fop := floatArith(base)
		return func(fr *frame) int64 {
			v := rhs(fr)
			cl := cell(fr)
			nv := int64(fop(float64(cl.I), v))
			*cl = IntV(nv)
			return nv
		}
	}
	op := c.valueOp(base, e.P)
	rhs := c.dynExpr(e.RHS)
	return func(fr *frame) int64 {
		v := rhs(fr)
		cl := cell(fr)
		nv := op(*cl, v).Int()
		*cl = IntV(nv)
		return nv
	}
}

// floatExpr compiles a statically-double expression to an unboxed
// float64 evaluator.
func (c *compiler) floatExpr(e Expr) evalFloatFn {
	if v, ok := constEval(e); ok {
		f := v.Float()
		return func(*frame) float64 { return f }
	}
	switch e := e.(type) {
	case *FloatLit:
		f := e.V
		return func(*frame) float64 { return f }
	case *Ident:
		ref := c.refOf(e)
		slot := ref.Slot
		switch ref.Kind {
		case VarScalar:
			return func(fr *frame) float64 { return fr.scalars[slot].F }
		case VarGlobalScalar:
			return func(fr *frame) float64 { return fr.ec.g.scalars[slot].F }
		}
	case *ParenExpr:
		return c.floatExpr(e.X)
	case *CastExpr:
		return c.asFloat(e.X)
	case *UnExpr:
		if e.Op == MINUS {
			x := c.floatExpr(e.X)
			return func(fr *frame) float64 { return -x(fr) }
		}
	case *BinExpr:
		// A statically-float binary op evaluates both operands as
		// floats regardless of their runtime kinds (the "both int"
		// branch is statically unreachable).
		x, y := c.asFloat(e.X), c.asFloat(e.Y)
		switch e.Op {
		case PLUS:
			return func(fr *frame) float64 { return x(fr) + y(fr) }
		case MINUS:
			return func(fr *frame) float64 { return x(fr) - y(fr) }
		case STAR:
			return func(fr *frame) float64 { return x(fr) * y(fr) }
		case SLASH:
			return func(fr *frame) float64 { return x(fr) / y(fr) }
		case PERCENT:
			return func(fr *frame) float64 { return math.Mod(x(fr), y(fr)) }
		}
	case *CondExpr:
		cond := c.boolExpr(e.Cond)
		then, els := c.floatExpr(e.Then), c.floatExpr(e.Else)
		return func(fr *frame) float64 {
			if cond(fr) {
				return then(fr)
			}
			return els(fr)
		}
	case *IndexExpr:
		return c.floatIndexLoad(e)
	case *AssignExpr:
		return c.floatAssign(e)
	case *IncDecExpr:
		inc := e.Op == INC
		if ix, ok := stripParens(e.X).(*IndexExpr); ok {
			p := c.elemPtr(ix)
			return func(fr *frame) float64 {
				pp := p(fr)
				old := *pp
				if inc {
					*pp = old + 1
				} else {
					*pp = old - 1
				}
				return old
			}
		}
		id, ok := stripParens(e.X).(*Ident)
		if !ok {
			break
		}
		cell := c.cellRef(id)
		return func(fr *frame) float64 {
			cl := cell(fr)
			old := cl.F
			if inc {
				cl.F = old + 1
			} else {
				cl.F = old - 1
			}
			return old
		}
	case *CallExpr:
		if c.isBuiltin(e) {
			return c.floatBuiltin(e)
		}
		call := c.call(e)
		return func(fr *frame) float64 { return call(fr).F }
	}
	c.bug(e.Pos(), "expression %T not compilable as float", e)
	return nil
}

// floatArith returns the unboxed float implementation of an arithmetic
// operator (float division by zero yields ±Inf, not an error).
func floatArith(op TokenKind) func(a, b float64) float64 {
	switch op {
	case PLUS:
		return func(a, b float64) float64 { return a + b }
	case MINUS:
		return func(a, b float64) float64 { return a - b }
	case STAR:
		return func(a, b float64) float64 { return a * b }
	case SLASH:
		return func(a, b float64) float64 { return a / b }
	case PERCENT:
		return math.Mod
	}
	panic(fmt.Sprintf("cminor: internal: no float op %s", op))
}

// floatAssign compiles an assignment whose value is statically double.
func (c *compiler) floatAssign(e *AssignExpr) evalFloatFn {
	if ix, ok := stripParens(e.LHS).(*IndexExpr); ok {
		p := c.elemPtr(ix)
		if e.Op == ASSIGN {
			rhs := c.floatExpr(e.RHS)
			return func(fr *frame) float64 {
				// Match the tree-walker's evaluation order: RHS first,
				// then the target subscripts.
				v := rhs(fr)
				*p(fr) = v
				return v
			}
		}
		base, ok := compoundBase(e.Op)
		if !ok {
			c.bug(e.P, "unsupported assignment op %s", e.Op)
		}
		// Compound array stores read the float element first, so the
		// arithmetic is always float.
		rhs := c.asFloat(e.RHS)
		fop := floatArith(base)
		return func(fr *frame) float64 {
			v := rhs(fr)
			pp := p(fr)
			nv := fop(*pp, v)
			*pp = nv
			return nv
		}
	}
	id, ok := stripParens(e.LHS).(*Ident)
	if !ok {
		c.bug(e.LHS.Pos(), "invalid assignment target %T", e.LHS)
	}
	cell := c.cellRef(id)
	if e.Op == ASSIGN {
		rhs := c.floatExpr(e.RHS)
		return func(fr *frame) float64 {
			v := rhs(fr)
			*cell(fr) = FloatV(v)
			return v
		}
	}
	base, ok := compoundBase(e.Op)
	if !ok {
		c.bug(e.P, "unsupported assignment op %s", e.Op)
	}
	rhs := c.asFloat(e.RHS)
	fop := floatArith(base)
	return func(fr *frame) float64 {
		v := rhs(fr)
		cl := cell(fr)
		nv := fop(cl.F, v)
		*cl = FloatV(nv)
		return nv
	}
}

// exprVoid compiles e for statement position: assignment and ++/--
// side effects are emitted store-only, with no result materialized.
func (c *compiler) exprVoid(e Expr) evalVoidFn {
	switch e := e.(type) {
	case *ParenExpr:
		return c.exprVoid(e.X)
	case *AssignExpr:
		if ix, ok := stripParens(e.LHS).(*IndexExpr); ok {
			p := c.elemPtr(ix)
			rhs := c.asFloat(e.RHS)
			if e.Op == ASSIGN {
				return func(fr *frame) {
					v := rhs(fr)
					*p(fr) = v
				}
			}
			base, ok := compoundBase(e.Op)
			if !ok {
				c.bug(e.P, "unsupported assignment op %s", e.Op)
			}
			// The compound ops kernels live in compile to direct machine
			// arithmetic; % keeps the shared closure.
			switch base {
			case PLUS:
				return func(fr *frame) {
					v := rhs(fr)
					pp := p(fr)
					*pp += v
				}
			case MINUS:
				return func(fr *frame) {
					v := rhs(fr)
					pp := p(fr)
					*pp -= v
				}
			case STAR:
				return func(fr *frame) {
					v := rhs(fr)
					pp := p(fr)
					*pp *= v
				}
			case SLASH:
				return func(fr *frame) {
					v := rhs(fr)
					pp := p(fr)
					*pp /= v
				}
			}
			fop := floatArith(base)
			return func(fr *frame) {
				v := rhs(fr)
				pp := p(fr)
				*pp = fop(*pp, v)
			}
		}
	case *IncDecExpr:
		if ix, ok := stripParens(e.X).(*IndexExpr); ok {
			p := c.elemPtr(ix)
			inc := e.Op == INC
			return func(fr *frame) {
				pp := p(fr)
				if inc {
					*pp++
				} else {
					*pp--
				}
			}
		}
	}
	// Typed statement expressions run their unboxed evaluator directly,
	// skipping the Value-boxing wrapper a discarded c.expr would build.
	if _, ok := constEval(e); ok {
		return func(*frame) {} // pure constant in statement position
	}
	switch c.kindOf(e) {
	case kInt:
		f := c.intExpr(e)
		return func(fr *frame) { f(fr) }
	case kFloat:
		f := c.floatExpr(e)
		return func(fr *frame) { f(fr) }
	}
	x := c.dynExpr(e)
	return func(fr *frame) { x(fr) }
}

// dynExpr compiles e down the generic tagged-Value path (used for
// dynamic kinds and for the whole generic fallback body).
func (c *compiler) dynExpr(e Expr) evalFn {
	switch e := e.(type) {
	case *IntLit:
		v := IntV(e.V)
		return func(*frame) Value { return v }
	case *FloatLit:
		v := FloatV(e.V)
		return func(*frame) Value { return v }
	case *Ident:
		return c.identLoad(e)
	case *ParenExpr:
		return c.expr(e.X)
	case *CastExpr:
		if e.To.Kind == Int {
			x := c.asInt(e.X)
			return func(fr *frame) Value { return IntV(x(fr)) }
		}
		x := c.asFloat(e.X)
		return func(fr *frame) Value { return FloatV(x(fr)) }
	case *UnExpr:
		x := c.expr(e.X)
		switch e.Op {
		case MINUS:
			return func(fr *frame) Value {
				v := x(fr)
				if v.IsInt {
					return IntV(-v.I)
				}
				return FloatV(-v.F)
			}
		case NOT:
			return func(fr *frame) Value {
				if x(fr).Bool() {
					return IntV(0)
				}
				return IntV(1)
			}
		}
		c.bug(e.P, "unsupported unary op %s", e.Op)
	case *BinExpr:
		return c.bin(e)
	case *CondExpr:
		cond := c.boolExpr(e.Cond)
		then := c.expr(e.Then)
		els := c.expr(e.Else)
		return func(fr *frame) Value {
			if cond(fr) {
				return then(fr)
			}
			return els(fr)
		}
	case *IndexExpr:
		elem := c.elemFn(e)
		return func(fr *frame) Value {
			a, off := elem(fr)
			return FloatV(a.Data[off])
		}
	case *AssignExpr:
		return c.assign(e)
	case *IncDecExpr:
		return c.incDec(e)
	case *CallExpr:
		return c.call(e)
	}
	c.bug(e.Pos(), "unsupported expression %T", e)
	return nil
}

// identLoad compiles a scalar variable read to a direct slot access.
func (c *compiler) identLoad(e *Ident) evalFn {
	ref := c.refOf(e)
	slot := ref.Slot
	switch ref.Kind {
	case VarScalar:
		return func(fr *frame) Value { return fr.scalars[slot] }
	case VarCell:
		return func(fr *frame) Value { return *fr.cells[slot] }
	case VarGlobalScalar:
		return func(fr *frame) Value { return fr.ec.g.scalars[slot] }
	}
	c.bug(e.P, "%q (%s) read as a scalar", e.Name, ref.Kind)
	return nil
}

// cellRef compiles an addressable scalar variable to a cell accessor.
func (c *compiler) cellRef(e *Ident) func(fr *frame) *Value {
	ref := c.refOf(e)
	slot := ref.Slot
	switch ref.Kind {
	case VarScalar:
		return func(fr *frame) *Value { return &fr.scalars[slot] }
	case VarCell:
		return func(fr *frame) *Value { return fr.cells[slot] }
	case VarGlobalScalar:
		return func(fr *frame) *Value { return &fr.ec.g.scalars[slot] }
	}
	c.bug(e.P, "%q (%s) used as a scalar cell", e.Name, ref.Kind)
	return nil
}

// arrayRef compiles an array variable to an accessor for its *Array.
func (c *compiler) arrayRef(e *Ident) func(fr *frame) *Array {
	ref := c.refOf(e)
	slot := ref.Slot
	switch ref.Kind {
	case VarArray:
		return func(fr *frame) *Array { return fr.arrays[slot] }
	case VarGlobalArray:
		return func(fr *frame) *Array { return fr.ec.g.arrays[slot] }
	}
	c.bug(e.P, "%q (%s) used as an array", e.Name, ref.Kind)
	return nil
}

// elemFn compiles a full subscript chain to an (array, flat offset)
// accessor with bounds checks. Rank 1 and 2 — the shapes Polybench
// kernels live in — get unrolled fast paths, and inside a counted loop
// subscripts affine in the induction variable are strength-reduced to
// hoisted offsets (see tryHoist).
func (c *compiler) elemFn(e *IndexExpr) func(fr *frame) (*Array, int) {
	root, subs := splitIndexChain(e)
	if root == nil {
		c.bug(e.P, "indexed expression is not a variable")
	}
	if h := c.tryHoist(root, subs); h != nil {
		return c.hoistElem(h)
	}
	return c.checkedElem(e, root, subs)
}

// floatIndexLoad compiles an element read. Hoisted accesses fuse into a
// single closure (no accessor hop); everything else goes through the
// checked accessor.
func (c *compiler) floatIndexLoad(e *IndexExpr) evalFloatFn {
	root, subs := splitIndexChain(e)
	if root == nil {
		c.bug(e.P, "indexed expression is not a variable")
	}
	if h := c.tryHoist(root, subs); h != nil {
		return c.hoistFloatLoad(h)
	}
	elem := c.checkedElem(e, root, subs)
	return func(fr *frame) float64 {
		a, off := elem(fr)
		return a.Data[off]
	}
}

// elemPtr compiles an element access for store sites to a *float64
// accessor, fused for hoisted accesses. The pointer is materialized at
// exactly the point the checked path would evaluate its subscripts, so
// evaluation order (and faults) are unchanged.
func (c *compiler) elemPtr(e *IndexExpr) func(fr *frame) *float64 {
	root, subs := splitIndexChain(e)
	if root == nil {
		c.bug(e.P, "indexed expression is not a variable")
	}
	if h := c.tryHoist(root, subs); h != nil {
		return c.hoistElemPtr(h)
	}
	elem := c.checkedElem(e, root, subs)
	return func(fr *frame) *float64 {
		a, off := elem(fr)
		return &a.Data[off]
	}
}

// checkedElem is the fully-checked (array, offset) accessor.
func (c *compiler) checkedElem(e *IndexExpr, root *Ident, subs []Expr) func(fr *frame) (*Array, int) {
	arrGet := c.arrayRef(root)
	file := c.prog.fname
	pos := e.P
	idxFns := make([]evalIntFn, len(subs))
	for i, sx := range subs {
		idxFns[i] = c.asInt(sx)
	}
	switch len(idxFns) {
	case 1:
		i0 := idxFns[0]
		return func(fr *frame) (*Array, int) {
			a := arrGet(fr)
			if len(a.Dims) != 1 {
				rtPanic(file, pos, "array rank %d indexed with 1 subscript", len(a.Dims))
			}
			i := int(i0(fr))
			if uint(i) >= uint(a.Dims[0]) {
				rtPanic(file, pos, "index %d out of range [0,%d)", i, a.Dims[0])
			}
			return a, i
		}
	case 2:
		i0, i1 := idxFns[0], idxFns[1]
		return func(fr *frame) (*Array, int) {
			a := arrGet(fr)
			if len(a.Dims) != 2 {
				rtPanic(file, pos, "array rank %d indexed with 2 subscripts", len(a.Dims))
			}
			i := int(i0(fr))
			j := int(i1(fr))
			if uint(i) >= uint(a.Dims[0]) {
				rtPanic(file, pos, "index %d out of range [0,%d) in dim 0", i, a.Dims[0])
			}
			if uint(j) >= uint(a.Dims[1]) {
				rtPanic(file, pos, "index %d out of range [0,%d) in dim 1", j, a.Dims[1])
			}
			return a, i*a.Dims[1] + j
		}
	default:
		return func(fr *frame) (*Array, int) {
			a := arrGet(fr)
			if len(a.Dims) != len(idxFns) {
				rtPanic(file, pos, "array rank %d indexed with %d subscripts",
					len(a.Dims), len(idxFns))
			}
			off := 0
			for k, fn := range idxFns {
				i := int(fn(fr))
				if uint(i) >= uint(a.Dims[k]) {
					rtPanic(file, pos, "index %d out of range [0,%d) in dim %d", i, a.Dims[k], k)
				}
				off = off*a.Dims[k] + i
			}
			return a, off
		}
	}
}

func boolV(b bool) Value {
	if b {
		return IntV(1)
	}
	return IntV(0)
}

// compoundBase maps compound-assignment operators to their arithmetic op.
func compoundBase(op TokenKind) (TokenKind, bool) {
	switch op {
	case ADDASSIGN:
		return PLUS, true
	case SUBASSIGN:
		return MINUS, true
	case MULASSIGN:
		return STAR, true
	case DIVASSIGN:
		return SLASH, true
	case MODASSIGN:
		return PERCENT, true
	}
	return 0, false
}

// valueOp builds a two-operand arithmetic/comparison function with the
// operator dispatch resolved at compile time. Division faults report the
// given source position.
func (c *compiler) valueOp(op TokenKind, p Pos) func(Value, Value) Value {
	file := c.prog.fname
	switch op {
	case PLUS:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return IntV(x.I + y.I)
			}
			return FloatV(x.Float() + y.Float())
		}
	case MINUS:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return IntV(x.I - y.I)
			}
			return FloatV(x.Float() - y.Float())
		}
	case STAR:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return IntV(x.I * y.I)
			}
			return FloatV(x.Float() * y.Float())
		}
	case SLASH:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				if y.I == 0 {
					rtPanic(file, p, "integer division by zero")
				}
				return IntV(x.I / y.I)
			}
			return FloatV(x.Float() / y.Float())
		}
	case PERCENT:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				if y.I == 0 {
					rtPanic(file, p, "integer modulo by zero")
				}
				return IntV(x.I % y.I)
			}
			return FloatV(math.Mod(x.Float(), y.Float()))
		}
	case EQ:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I == y.I)
			}
			return boolV(x.Float() == y.Float())
		}
	case NEQ:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I != y.I)
			}
			return boolV(x.Float() != y.Float())
		}
	case LT:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I < y.I)
			}
			return boolV(x.Float() < y.Float())
		}
	case GT:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I > y.I)
			}
			return boolV(x.Float() > y.Float())
		}
	case LEQ:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I <= y.I)
			}
			return boolV(x.Float() <= y.Float())
		}
	case GEQ:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I >= y.I)
			}
			return boolV(x.Float() >= y.Float())
		}
	}
	c.bug(p, "unsupported binary op %s", op)
	return nil
}

func (c *compiler) bin(e *BinExpr) evalFn {
	switch e.Op {
	case ANDAND, OROR, EQ, NEQ, LT, GT, LEQ, GEQ:
		b := c.boolExpr(e)
		return func(fr *frame) Value { return boolV(b(fr)) }
	}
	x, y := c.expr(e.X), c.expr(e.Y)
	op := c.valueOp(e.Op, e.P)
	return func(fr *frame) Value { return op(x(fr), y(fr)) }
}

func (c *compiler) assign(e *AssignExpr) evalFn {
	rhs := c.expr(e.RHS)
	// Array-element target.
	if ix, ok := stripParens(e.LHS).(*IndexExpr); ok {
		elem := c.elemFn(ix)
		if e.Op == ASSIGN {
			return func(fr *frame) Value {
				// Match the tree-walker's evaluation order: RHS first,
				// then the target subscripts.
				nv := rhs(fr)
				a, off := elem(fr)
				a.Data[off] = nv.Float()
				return nv
			}
		}
		base, ok := compoundBase(e.Op)
		if !ok {
			c.bug(e.P, "unsupported assignment op %s", e.Op)
		}
		op := c.valueOp(base, e.P)
		return func(fr *frame) Value {
			v := rhs(fr)
			a, off := elem(fr)
			nv := op(FloatV(a.Data[off]), v)
			a.Data[off] = nv.Float()
			return nv
		}
	}
	// Scalar target.
	id, ok := stripParens(e.LHS).(*Ident)
	if !ok {
		c.bug(e.LHS.Pos(), "invalid assignment target %T", e.LHS)
	}
	cell := c.cellRef(id)
	if e.Op == ASSIGN {
		return func(fr *frame) Value {
			nv := rhs(fr)
			cl := cell(fr)
			if cl.IsInt {
				nv = IntV(nv.Int())
			}
			*cl = nv
			return nv
		}
	}
	base, ok := compoundBase(e.Op)
	if !ok {
		c.bug(e.P, "unsupported assignment op %s", e.Op)
	}
	op := c.valueOp(base, e.P)
	return func(fr *frame) Value {
		v := rhs(fr)
		cl := cell(fr)
		nv := op(*cl, v)
		if cl.IsInt {
			nv = IntV(nv.Int())
		}
		*cl = nv
		return nv
	}
}

func (c *compiler) incDec(e *IncDecExpr) evalFn {
	inc := e.Op == INC
	if ix, ok := stripParens(e.X).(*IndexExpr); ok {
		elem := c.elemFn(ix)
		return func(fr *frame) Value {
			a, off := elem(fr)
			old := a.Data[off]
			if inc {
				a.Data[off] = old + 1
			} else {
				a.Data[off] = old - 1
			}
			return FloatV(old)
		}
	}
	id, ok := stripParens(e.X).(*Ident)
	if !ok {
		c.bug(e.X.Pos(), "invalid %s target %T", e.Op, e.X)
	}
	cell := c.cellRef(id)
	return func(fr *frame) Value {
		cl := cell(fr)
		old := *cl
		if cl.IsInt {
			if inc {
				cl.I++
			} else {
				cl.I--
			}
		} else {
			if inc {
				cl.F++
			} else {
				cl.F--
			}
		}
		return old
	}
}

func stripParens(e Expr) Expr {
	for {
		pe, ok := e.(*ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// argBinder copies one evaluated argument from the caller's frame into
// the callee's.
type argBinder func(caller, callee *frame)

func (c *compiler) call(e *CallExpr) evalFn {
	if c.isBuiltin(e) {
		f := c.floatBuiltin(e)
		return func(fr *frame) Value { return FloatV(f(fr)) }
	}
	if site := c.siteFor(e); site != nil {
		return c.inlineCall(e, site)
	}
	cf := c.prog.funcs[e.Fun]
	if cf == nil {
		c.bug(e.P, "call to unresolved function %q", e.Fun)
	}
	binders := make([]argBinder, len(e.Args))
	for i, a := range e.Args {
		p := cf.info.Decl.Params[i]
		ref := cf.info.Params[i]
		switch ref.Kind {
		case VarArray:
			id, _ := stripArg(a)
			if id == nil {
				c.bug(a.Pos(), "array argument is not a variable")
			}
			src := c.arrayRef(id)
			slot := ref.Slot
			binders[i] = func(caller, callee *frame) { callee.arrays[slot] = src(caller) }
		case VarCell:
			id, _ := stripArg(a)
			if id == nil {
				c.bug(a.Pos(), "pointer argument is not a variable")
			}
			src := c.cellRef(id)
			slot := ref.Slot
			binders[i] = func(caller, callee *frame) { callee.cells[slot] = src(caller) }
		default:
			slot := ref.Slot
			// Internal call sites always normalize scalar arguments to
			// the declared parameter kind, so callee typed bodies are
			// safe regardless of the argument's kind.
			if p.Type.Kind == Int {
				v := c.asInt(a)
				binders[i] = func(caller, callee *frame) {
					callee.scalars[slot] = IntV(v(caller))
				}
			} else {
				v := c.asFloat(a)
				binders[i] = func(caller, callee *frame) {
					callee.scalars[slot] = FloatV(v(caller))
				}
			}
		}
	}
	return func(fr *frame) Value {
		ec := fr.ec
		callee := ec.getFrame(cf)
		for _, bind := range binders {
			bind(fr, callee)
		}
		cf.body(callee)
		ret := callee.ret
		ec.putFrame(cf, callee)
		return ret
	}
}

// floatBuiltin lowers a math-builtin call to a direct unboxed closure —
// no argument slice and no Value boxing, so builtins in inner loops stay
// allocation-free.
func (c *compiler) floatBuiltin(e *CallExpr) evalFloatFn {
	argFns := make([]evalFloatFn, len(e.Args))
	for i, a := range e.Args {
		argFns[i] = c.asFloat(a)
	}
	switch e.Fun {
	case "sqrt":
		a0 := argFns[0]
		return func(fr *frame) float64 { return math.Sqrt(a0(fr)) }
	case "fabs":
		a0 := argFns[0]
		return func(fr *frame) float64 { return math.Abs(a0(fr)) }
	case "pow":
		a0, a1 := argFns[0], argFns[1]
		return func(fr *frame) float64 { return math.Pow(a0(fr), a1(fr)) }
	case "exp":
		a0 := argFns[0]
		return func(fr *frame) float64 { return math.Exp(a0(fr)) }
	case "log":
		a0 := argFns[0]
		return func(fr *frame) float64 { return math.Log(a0(fr)) }
	case "floor":
		a0 := argFns[0]
		return func(fr *frame) float64 { return math.Floor(a0(fr)) }
	case "ceil":
		a0 := argFns[0]
		return func(fr *frame) float64 { return math.Ceil(a0(fr)) }
	}
	// Fallback for any future builtin without a fast path. Arguments are
	// passed as raw Values exactly as the walker does, so a builtin that
	// inspects argument kinds cannot diverge between the backends; the
	// builtin contract (see value.go) requires a float result.
	bf := builtins[e.Fun]
	if bf == nil {
		c.bug(e.P, "unknown builtin %q", e.Fun)
	}
	rawArgs := make([]evalFn, len(e.Args))
	for i, a := range e.Args {
		rawArgs[i] = c.expr(a)
	}
	return func(fr *frame) float64 {
		args := make([]Value, len(rawArgs))
		for i, fn := range rawArgs {
			args[i] = fn(fr)
		}
		return bf(args).Float()
	}
}

// stripArg unwraps parentheses and a leading & from a call argument,
// returning the root identifier (nil when there is none).
func stripArg(a Expr) (*Ident, Expr) {
	for {
		switch x := a.(type) {
		case *ParenExpr:
			a = x.X
			continue
		case *UnExpr:
			if x.Op == AMP {
				a = x.X
				continue
			}
		}
		break
	}
	id, _ := a.(*Ident)
	return id, a
}
