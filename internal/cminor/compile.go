package cminor

import (
	"fmt"
	"math"
)

// The compiler is the second stage of the resolve → compile → execute
// pipeline. It lowers each resolved function into a tree of closures
// ("closure compilation"): operator dispatch, identifier binding and
// subscript-chain shape are all decided once, at compile time, so the
// execute stage performs only array-indexed frame accesses and direct
// calls. Runtime faults (bad subscript, integer division by zero, step
// budget) surface as positioned *Diag errors instead of crashes.

// flow is the statement-level control-flow result.
type flow uint8

const (
	flowNormal flow = iota
	flowReturn
)

// evalFn is a compiled expression; stmtFn is a compiled statement.
type evalFn func(fr *frame) Value
type stmtFn func(fr *frame) flow

// frame is the slot-indexed activation record of one compiled call. The
// three slices are the storage classes assigned by the resolver; every
// variable access is a constant-index load/store.
type frame struct {
	in      *Interp
	scalars []Value
	cells   []*Value
	arrays  []*Array
	ret     Value
}

// globalStore holds per-Interp storage for file-scope variables.
type globalStore struct {
	scalars []Value
	arrays  []*Array
}

// compiledFunc pairs a function's resolver summary with its compiled
// body. Bodies are filled in after all shells exist so (mutually)
// recursive calls can capture the shell pointer.
type compiledFunc struct {
	info *FuncInfo
	body stmtFn
}

// Program is a compiled C-minor translation unit, reusable across
// interpreter instances.
type Program struct {
	res   *ResolvedFile
	fname string
	funcs map[string]*compiledFunc
}

// Compile resolves and lowers f. All diagnostics carry file:line:col.
// Resolution annotates f in place (Ident.Ref, DeclStmt.Ref,
// CallExpr.RBuiltin), so compiling the same *File from multiple
// goroutines is not safe — Clone the file first when sharing.
func Compile(f *File) (*Program, error) {
	res, err := Resolve(f)
	if err != nil {
		return nil, err
	}
	p := &Program{res: res, fname: f.Name, funcs: map[string]*compiledFunc{}}
	for name, info := range res.Funcs {
		p.funcs[name] = &compiledFunc{info: info}
	}
	for _, cf := range p.funcs {
		c := &compiler{prog: p}
		cf.body = c.block(cf.info.Decl.Body)
	}
	return p, nil
}

// newGlobals allocates and initialises a global store for one Interp.
func (p *Program) newGlobals() *globalStore {
	g := &globalStore{}
	for _, gs := range p.res.Scalars {
		g.scalars = append(g.scalars, gs.Init)
	}
	for _, ga := range p.res.Arrays {
		g.arrays = append(g.arrays, NewArray(ga.Dims...))
	}
	return g
}

func newFrame(in *Interp, cf *compiledFunc) *frame {
	return &frame{
		in:      in,
		scalars: make([]Value, cf.info.NumScalars),
		cells:   make([]*Value, cf.info.NumCells),
		arrays:  make([]*Array, cf.info.NumArrays),
	}
}

// rtPanic raises a positioned runtime diagnostic; Interp.Call recovers it
// into the returned error.
func rtPanic(file string, p Pos, format string, args ...any) {
	panic(diagf(file, p, format, args...))
}

type compiler struct {
	prog *Program
}

// bug reports an internal inconsistency: the resolver accepted something
// the compiler cannot lower. It should be unreachable.
func (c *compiler) bug(p Pos, format string, args ...any) {
	panic(fmt.Sprintf("cminor: internal: %s: %s", p, fmt.Sprintf(format, args...)))
}

// ---- statements ----

func (c *compiler) block(b *Block) stmtFn {
	stmts := make([]stmtFn, len(b.Stmts))
	for i, s := range b.Stmts {
		stmts[i] = c.stmt(s)
	}
	return func(fr *frame) flow {
		for _, s := range stmts {
			if f := s(fr); f != flowNormal {
				return f
			}
		}
		return flowNormal
	}
}

func (c *compiler) stmt(s Stmt) stmtFn {
	switch s := s.(type) {
	case *Block:
		inner := c.block(s)
		return func(fr *frame) flow {
			fr.in.step()
			return inner(fr)
		}
	case *DeclStmt:
		return c.declStmt(s)
	case *ExprStmt:
		x := c.expr(s.X)
		return func(fr *frame) flow {
			fr.in.step()
			x(fr)
			return flowNormal
		}
	case *ForStmt:
		return c.forStmt(s)
	case *WhileStmt:
		cond := c.expr(s.Cond)
		body := c.block(s.Body)
		return func(fr *frame) flow {
			fr.in.step()
			for cond(fr).Bool() {
				if f := body(fr); f != flowNormal {
					return f
				}
				fr.in.step()
			}
			return flowNormal
		}
	case *IfStmt:
		cond := c.expr(s.Cond)
		then := c.block(s.Then)
		var els stmtFn
		if s.Else != nil {
			els = c.stmt(s.Else)
		}
		return func(fr *frame) flow {
			fr.in.step()
			if cond(fr).Bool() {
				return then(fr)
			}
			if els != nil {
				return els(fr)
			}
			return flowNormal
		}
	case *ReturnStmt:
		var x evalFn
		if s.X != nil {
			x = c.expr(s.X)
		}
		return func(fr *frame) flow {
			fr.in.step()
			if x != nil {
				fr.ret = x(fr)
			} else {
				fr.ret = Value{}
			}
			return flowReturn
		}
	case *PragmaStmt:
		return func(fr *frame) flow {
			fr.in.step()
			return flowNormal
		}
	}
	c.bug(s.Pos(), "unsupported statement %T", s)
	return nil
}

func (c *compiler) declStmt(s *DeclStmt) stmtFn {
	if s.Type.IsArray() {
		slot := s.Ref.Slot
		if s.Ref.Kind != VarArray {
			c.bug(s.P, "array decl %q resolved as %s", s.Name, s.Ref.Kind)
		}
		// Constant dimensions are folded at compile time; VLA-style dims
		// ("double tmp[n]") are evaluated at declaration time.
		if dims, ok := constDims(s.Type.Dims); ok {
			return func(fr *frame) flow {
				fr.in.step()
				fr.arrays[slot] = NewArray(dims...)
				return flowNormal
			}
		}
		dimFns := make([]evalFn, len(s.Type.Dims))
		for i, d := range s.Type.Dims {
			dimFns[i] = c.expr(d)
		}
		return func(fr *frame) flow {
			fr.in.step()
			dims := make([]int, len(dimFns))
			for i, df := range dimFns {
				dims[i] = int(df(fr).Int())
			}
			fr.arrays[slot] = NewArray(dims...)
			return flowNormal
		}
	}
	slot := s.Ref.Slot
	isInt := s.Type.Kind == Int
	var init evalFn
	if s.Init != nil {
		init = c.expr(s.Init)
	}
	switch s.Ref.Kind {
	case VarScalar:
		return func(fr *frame) flow {
			fr.in.step()
			var v Value
			if init != nil {
				v = init(fr)
			}
			if isInt {
				fr.scalars[slot] = IntV(v.Int())
			} else {
				fr.scalars[slot] = FloatV(v.Float())
			}
			return flowNormal
		}
	case VarCell:
		// A local declared "double *p" gets a fresh cell.
		return func(fr *frame) flow {
			fr.in.step()
			var v Value
			if init != nil {
				v = init(fr)
			}
			cell := convertKind(v, s.Type.Kind)
			fr.cells[slot] = &cell
			return flowNormal
		}
	}
	c.bug(s.P, "scalar decl %q resolved as %s", s.Name, s.Ref.Kind)
	return nil
}

func constDims(dims []Expr) ([]int, bool) {
	out := make([]int, len(dims))
	for i, d := range dims {
		v, ok := constEval(d)
		if !ok {
			return nil, false
		}
		out[i] = int(v.Int())
	}
	return out, true
}

func (c *compiler) forStmt(s *ForStmt) stmtFn {
	var init stmtFn
	if s.Init != nil {
		init = c.stmt(s.Init)
	}
	cond := evalFn(nil)
	if s.Cond != nil {
		cond = c.expr(s.Cond)
	}
	var post evalFn
	if s.Post != nil {
		post = c.expr(s.Post)
	}
	body := c.block(s.Body)
	return func(fr *frame) flow {
		fr.in.step()
		if init != nil {
			if f := init(fr); f != flowNormal {
				return f
			}
		}
		for cond == nil || cond(fr).Bool() {
			if f := body(fr); f != flowNormal {
				return f
			}
			if post != nil {
				post(fr)
			}
			fr.in.step()
		}
		return flowNormal
	}
}

// ---- expressions ----

func (c *compiler) expr(e Expr) evalFn {
	switch e := e.(type) {
	case *IntLit:
		v := IntV(e.V)
		return func(*frame) Value { return v }
	case *FloatLit:
		v := FloatV(e.V)
		return func(*frame) Value { return v }
	case *Ident:
		return c.identLoad(e)
	case *ParenExpr:
		return c.expr(e.X)
	case *CastExpr:
		x := c.expr(e.X)
		if e.To.Kind == Int {
			return func(fr *frame) Value { return IntV(x(fr).Int()) }
		}
		return func(fr *frame) Value { return FloatV(x(fr).Float()) }
	case *UnExpr:
		x := c.expr(e.X)
		switch e.Op {
		case MINUS:
			return func(fr *frame) Value {
				v := x(fr)
				if v.IsInt {
					return IntV(-v.I)
				}
				return FloatV(-v.F)
			}
		case NOT:
			return func(fr *frame) Value {
				if x(fr).Bool() {
					return IntV(0)
				}
				return IntV(1)
			}
		}
		c.bug(e.P, "unsupported unary op %s", e.Op)
	case *BinExpr:
		return c.bin(e)
	case *CondExpr:
		cond := c.expr(e.Cond)
		then := c.expr(e.Then)
		els := c.expr(e.Else)
		return func(fr *frame) Value {
			if cond(fr).Bool() {
				return then(fr)
			}
			return els(fr)
		}
	case *IndexExpr:
		elem := c.elemFn(e)
		return func(fr *frame) Value {
			a, off := elem(fr)
			return FloatV(a.Data[off])
		}
	case *AssignExpr:
		return c.assign(e)
	case *IncDecExpr:
		return c.incDec(e)
	case *CallExpr:
		return c.call(e)
	}
	c.bug(e.Pos(), "unsupported expression %T", e)
	return nil
}

// identLoad compiles a scalar variable read to a direct slot access.
func (c *compiler) identLoad(e *Ident) evalFn {
	slot := e.Ref.Slot
	switch e.Ref.Kind {
	case VarScalar:
		return func(fr *frame) Value { return fr.scalars[slot] }
	case VarCell:
		return func(fr *frame) Value { return *fr.cells[slot] }
	case VarGlobalScalar:
		return func(fr *frame) Value { return fr.in.g.scalars[slot] }
	}
	c.bug(e.P, "%q (%s) read as a scalar", e.Name, e.Ref.Kind)
	return nil
}

// cellRef compiles an addressable scalar variable to a cell accessor.
func (c *compiler) cellRef(e *Ident) func(fr *frame) *Value {
	slot := e.Ref.Slot
	switch e.Ref.Kind {
	case VarScalar:
		return func(fr *frame) *Value { return &fr.scalars[slot] }
	case VarCell:
		return func(fr *frame) *Value { return fr.cells[slot] }
	case VarGlobalScalar:
		return func(fr *frame) *Value { return &fr.in.g.scalars[slot] }
	}
	c.bug(e.P, "%q (%s) used as a scalar cell", e.Name, e.Ref.Kind)
	return nil
}

// arrayRef compiles an array variable to an accessor for its *Array.
func (c *compiler) arrayRef(e *Ident) func(fr *frame) *Array {
	slot := e.Ref.Slot
	switch e.Ref.Kind {
	case VarArray:
		return func(fr *frame) *Array { return fr.arrays[slot] }
	case VarGlobalArray:
		return func(fr *frame) *Array { return fr.in.g.arrays[slot] }
	}
	c.bug(e.P, "%q (%s) used as an array", e.Name, e.Ref.Kind)
	return nil
}

// elemFn compiles a full subscript chain to an (array, flat offset)
// accessor with bounds checks. Rank 1 and 2 — the shapes Polybench
// kernels live in — get unrolled fast paths.
func (c *compiler) elemFn(e *IndexExpr) func(fr *frame) (*Array, int) {
	root, subs := splitIndexChain(e)
	if root == nil {
		c.bug(e.P, "indexed expression is not a variable")
	}
	arrGet := c.arrayRef(root)
	file := c.prog.fname
	pos := e.P
	idxFns := make([]evalFn, len(subs))
	for i, sx := range subs {
		idxFns[i] = c.expr(sx)
	}
	switch len(idxFns) {
	case 1:
		i0 := idxFns[0]
		return func(fr *frame) (*Array, int) {
			a := arrGet(fr)
			if len(a.Dims) != 1 {
				rtPanic(file, pos, "array rank %d indexed with 1 subscript", len(a.Dims))
			}
			i := int(i0(fr).Int())
			if uint(i) >= uint(a.Dims[0]) {
				rtPanic(file, pos, "index %d out of range [0,%d)", i, a.Dims[0])
			}
			return a, i
		}
	case 2:
		i0, i1 := idxFns[0], idxFns[1]
		return func(fr *frame) (*Array, int) {
			a := arrGet(fr)
			if len(a.Dims) != 2 {
				rtPanic(file, pos, "array rank %d indexed with 2 subscripts", len(a.Dims))
			}
			i := int(i0(fr).Int())
			j := int(i1(fr).Int())
			if uint(i) >= uint(a.Dims[0]) {
				rtPanic(file, pos, "index %d out of range [0,%d) in dim 0", i, a.Dims[0])
			}
			if uint(j) >= uint(a.Dims[1]) {
				rtPanic(file, pos, "index %d out of range [0,%d) in dim 1", j, a.Dims[1])
			}
			return a, i*a.Dims[1] + j
		}
	default:
		return func(fr *frame) (*Array, int) {
			a := arrGet(fr)
			if len(a.Dims) != len(idxFns) {
				rtPanic(file, pos, "array rank %d indexed with %d subscripts",
					len(a.Dims), len(idxFns))
			}
			off := 0
			for k, fn := range idxFns {
				i := int(fn(fr).Int())
				if uint(i) >= uint(a.Dims[k]) {
					rtPanic(file, pos, "index %d out of range [0,%d) in dim %d", i, a.Dims[k], k)
				}
				off = off*a.Dims[k] + i
			}
			return a, off
		}
	}
}

func boolV(b bool) Value {
	if b {
		return IntV(1)
	}
	return IntV(0)
}

// compoundBase maps compound-assignment operators to their arithmetic op.
func compoundBase(op TokenKind) (TokenKind, bool) {
	switch op {
	case ADDASSIGN:
		return PLUS, true
	case SUBASSIGN:
		return MINUS, true
	case MULASSIGN:
		return STAR, true
	case DIVASSIGN:
		return SLASH, true
	case MODASSIGN:
		return PERCENT, true
	}
	return 0, false
}

// valueOp builds a two-operand arithmetic/comparison function with the
// operator dispatch resolved at compile time. Division faults report the
// given source position.
func (c *compiler) valueOp(op TokenKind, p Pos) func(Value, Value) Value {
	file := c.prog.fname
	switch op {
	case PLUS:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return IntV(x.I + y.I)
			}
			return FloatV(x.Float() + y.Float())
		}
	case MINUS:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return IntV(x.I - y.I)
			}
			return FloatV(x.Float() - y.Float())
		}
	case STAR:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return IntV(x.I * y.I)
			}
			return FloatV(x.Float() * y.Float())
		}
	case SLASH:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				if y.I == 0 {
					rtPanic(file, p, "integer division by zero")
				}
				return IntV(x.I / y.I)
			}
			return FloatV(x.Float() / y.Float())
		}
	case PERCENT:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				if y.I == 0 {
					rtPanic(file, p, "integer modulo by zero")
				}
				return IntV(x.I % y.I)
			}
			return FloatV(math.Mod(x.Float(), y.Float()))
		}
	case EQ:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I == y.I)
			}
			return boolV(x.Float() == y.Float())
		}
	case NEQ:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I != y.I)
			}
			return boolV(x.Float() != y.Float())
		}
	case LT:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I < y.I)
			}
			return boolV(x.Float() < y.Float())
		}
	case GT:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I > y.I)
			}
			return boolV(x.Float() > y.Float())
		}
	case LEQ:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I <= y.I)
			}
			return boolV(x.Float() <= y.Float())
		}
	case GEQ:
		return func(x, y Value) Value {
			if x.IsInt && y.IsInt {
				return boolV(x.I >= y.I)
			}
			return boolV(x.Float() >= y.Float())
		}
	}
	c.bug(p, "unsupported binary op %s", op)
	return nil
}

func (c *compiler) bin(e *BinExpr) evalFn {
	switch e.Op {
	case ANDAND:
		x, y := c.expr(e.X), c.expr(e.Y)
		return func(fr *frame) Value {
			if !x(fr).Bool() {
				return IntV(0)
			}
			if y(fr).Bool() {
				return IntV(1)
			}
			return IntV(0)
		}
	case OROR:
		x, y := c.expr(e.X), c.expr(e.Y)
		return func(fr *frame) Value {
			if x(fr).Bool() || y(fr).Bool() {
				return IntV(1)
			}
			return IntV(0)
		}
	}
	x, y := c.expr(e.X), c.expr(e.Y)
	op := c.valueOp(e.Op, e.P)
	return func(fr *frame) Value { return op(x(fr), y(fr)) }
}

func (c *compiler) assign(e *AssignExpr) evalFn {
	rhs := c.expr(e.RHS)
	// Array-element target.
	if ix, ok := stripParens(e.LHS).(*IndexExpr); ok {
		elem := c.elemFn(ix)
		if e.Op == ASSIGN {
			return func(fr *frame) Value {
				// Match the tree-walker's evaluation order: RHS first,
				// then the target subscripts.
				nv := rhs(fr)
				a, off := elem(fr)
				a.Data[off] = nv.Float()
				return nv
			}
		}
		base, ok := compoundBase(e.Op)
		if !ok {
			c.bug(e.P, "unsupported assignment op %s", e.Op)
		}
		op := c.valueOp(base, e.P)
		return func(fr *frame) Value {
			v := rhs(fr)
			a, off := elem(fr)
			nv := op(FloatV(a.Data[off]), v)
			a.Data[off] = nv.Float()
			return nv
		}
	}
	// Scalar target.
	id, ok := stripParens(e.LHS).(*Ident)
	if !ok {
		c.bug(e.LHS.Pos(), "invalid assignment target %T", e.LHS)
	}
	cell := c.cellRef(id)
	if e.Op == ASSIGN {
		return func(fr *frame) Value {
			nv := rhs(fr)
			cl := cell(fr)
			if cl.IsInt {
				nv = IntV(nv.Int())
			}
			*cl = nv
			return nv
		}
	}
	base, ok := compoundBase(e.Op)
	if !ok {
		c.bug(e.P, "unsupported assignment op %s", e.Op)
	}
	op := c.valueOp(base, e.P)
	return func(fr *frame) Value {
		v := rhs(fr)
		cl := cell(fr)
		nv := op(*cl, v)
		if cl.IsInt {
			nv = IntV(nv.Int())
		}
		*cl = nv
		return nv
	}
}

func (c *compiler) incDec(e *IncDecExpr) evalFn {
	inc := e.Op == INC
	if ix, ok := stripParens(e.X).(*IndexExpr); ok {
		elem := c.elemFn(ix)
		return func(fr *frame) Value {
			a, off := elem(fr)
			old := a.Data[off]
			if inc {
				a.Data[off] = old + 1
			} else {
				a.Data[off] = old - 1
			}
			return FloatV(old)
		}
	}
	id, ok := stripParens(e.X).(*Ident)
	if !ok {
		c.bug(e.X.Pos(), "invalid %s target %T", e.Op, e.X)
	}
	cell := c.cellRef(id)
	return func(fr *frame) Value {
		cl := cell(fr)
		old := *cl
		if cl.IsInt {
			if inc {
				cl.I++
			} else {
				cl.I--
			}
		} else {
			if inc {
				cl.F++
			} else {
				cl.F--
			}
		}
		return old
	}
}

func stripParens(e Expr) Expr {
	for {
		pe, ok := e.(*ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// argBinder copies one evaluated argument from the caller's frame into
// the callee's.
type argBinder func(caller, callee *frame)

func (c *compiler) call(e *CallExpr) evalFn {
	if e.RBuiltin {
		return c.builtinCall(e)
	}
	cf := c.prog.funcs[e.Fun]
	if cf == nil {
		c.bug(e.P, "call to unresolved function %q", e.Fun)
	}
	binders := make([]argBinder, len(e.Args))
	for i, a := range e.Args {
		p := cf.info.Decl.Params[i]
		ref := cf.info.Params[i]
		switch ref.Kind {
		case VarArray:
			id, _ := stripArg(a)
			if id == nil {
				c.bug(a.Pos(), "array argument is not a variable")
			}
			src := c.arrayRef(id)
			slot := ref.Slot
			binders[i] = func(caller, callee *frame) { callee.arrays[slot] = src(caller) }
		case VarCell:
			id, _ := stripArg(a)
			if id == nil {
				c.bug(a.Pos(), "pointer argument is not a variable")
			}
			src := c.cellRef(id)
			slot := ref.Slot
			binders[i] = func(caller, callee *frame) { callee.cells[slot] = src(caller) }
		default:
			v := c.expr(a)
			slot := ref.Slot
			isInt := p.Type.Kind == Int
			binders[i] = func(caller, callee *frame) {
				val := v(caller)
				if isInt {
					callee.scalars[slot] = IntV(val.Int())
				} else {
					callee.scalars[slot] = FloatV(val.Float())
				}
			}
		}
	}
	return func(fr *frame) Value {
		callee := newFrame(fr.in, cf)
		for _, bind := range binders {
			bind(fr, callee)
		}
		cf.body(callee)
		return callee.ret
	}
}

// builtinCall lowers a math-builtin call to a direct typed closure — no
// argument slice, so builtins in inner loops stay allocation-free.
func (c *compiler) builtinCall(e *CallExpr) evalFn {
	argFns := make([]evalFn, len(e.Args))
	for i, a := range e.Args {
		argFns[i] = c.expr(a)
	}
	switch e.Fun {
	case "sqrt":
		a0 := argFns[0]
		return func(fr *frame) Value { return FloatV(math.Sqrt(a0(fr).Float())) }
	case "fabs":
		a0 := argFns[0]
		return func(fr *frame) Value { return FloatV(math.Abs(a0(fr).Float())) }
	case "pow":
		a0, a1 := argFns[0], argFns[1]
		return func(fr *frame) Value { return FloatV(math.Pow(a0(fr).Float(), a1(fr).Float())) }
	case "exp":
		a0 := argFns[0]
		return func(fr *frame) Value { return FloatV(math.Exp(a0(fr).Float())) }
	case "log":
		a0 := argFns[0]
		return func(fr *frame) Value { return FloatV(math.Log(a0(fr).Float())) }
	case "floor":
		a0 := argFns[0]
		return func(fr *frame) Value { return FloatV(math.Floor(a0(fr).Float())) }
	case "ceil":
		a0 := argFns[0]
		return func(fr *frame) Value { return FloatV(math.Ceil(a0(fr).Float())) }
	}
	// Fallback for any future builtin without a fast path.
	bf := builtins[e.Fun]
	if bf == nil {
		c.bug(e.P, "unknown builtin %q", e.Fun)
	}
	return func(fr *frame) Value {
		args := make([]Value, len(argFns))
		for i, fn := range argFns {
			args[i] = fn(fr)
		}
		return bf(args)
	}
}

// stripArg unwraps parentheses and a leading & from a call argument,
// returning the root identifier (nil when there is none).
func stripArg(a Expr) (*Ident, Expr) {
	for {
		switch x := a.(type) {
		case *ParenExpr:
			a = x.X
			continue
		case *UnExpr:
			if x.Op == AMP {
				a = x.X
				continue
			}
		}
		break
	}
	id, _ := a.(*Ident)
	return id, a
}
