package cminor

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// engine abstracts the two execution backends so parity cases run the
// exact same call against each.
type engine interface {
	Call(name string, args ...any) (Value, error)
}

// parityCase is one golden differential test: build fresh arguments, run
// the named function, and expose every output array for comparison.
type parityCase struct {
	name string
	src  string
	fn   string
	// args builds a fresh argument list (arrays are per-engine so
	// mutations don't leak across backends).
	args func() []any
}

func axpyArgs() []any {
	n := 8
	x, y := NewArray(n), NewArray(n)
	for i := 0; i < n; i++ {
		x.Set(float64(i)*1.25, i)
		y.Set(1.0/float64(i+1), i)
	}
	return []any{IntV(int64(n)), FloatV(2.5), x, y}
}

var parityCases = []parityCase{
	{"axpy", miniKernel, "kernel_axpy", axpyArgs},
	{
		"matmul",
		`void matmul(int n, double A[n][n], double B[n][n], double C[n][n]) {
  int i, j, k;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      C[i][j] = 0.0;
      for (k = 0; k < n; k++) {
        C[i][j] += A[i][k] * B[k][j];
      }
    }
  }
}`,
		"matmul",
		func() []any {
			n := 5
			A, B, C := NewArray(n, n), NewArray(n, n), NewArray(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					A.Set(float64(i+j)/3.0, i, j)
					B.Set(float64(i*j+1)*0.7, i, j)
				}
			}
			return []any{IntV(int64(n)), A, B, C}
		},
	},
	{
		"int-division", "int f(int a, int b) { return a / b - a % b; }", "f",
		func() []any { return []any{IntV(-17), IntV(5)} },
	},
	{
		"ternary-max", "double f(double a, double b) { return a >= b ? a : b; }", "f",
		func() []any { return []any{FloatV(2.5), FloatV(9.0)} },
	},
	{
		"builtins",
		`double f(double x) { return sqrt(x) + fabs(0.0 - x) + pow(x, 2.0) + exp(x) + log(x) + floor(x) + ceil(x); }`,
		"f",
		func() []any { return []any{FloatV(1.75)} },
	},
	{
		"nested-call",
		`double square(double x) { return x * x; }
double f(double x) { return square(x) + square(2.0); }`,
		"f",
		func() []any { return []any{FloatV(3.0)} },
	},
	{
		"array-by-reference",
		`void fill(int n, double a[n], double v) {
  int i;
  for (i = 0; i < n; i++) { a[i] = v; }
}
void f(int n, double a[n]) { fill(n, a, 7.0); }`,
		"f",
		func() []any { return []any{IntV(3), NewArray(3)} },
	},
	{
		"while-compound",
		`int f(int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s += i;
    i++;
  }
  return s;
}`,
		"f",
		func() []any { return []any{IntV(10)} },
	},
	{
		"local-vla",
		`double f(int n) {
  double tmp[n];
  int i;
  double s = 0.0;
  for (i = 0; i < n; i++) { tmp[i] = (double)i * 1.5; }
  for (i = 0; i < n; i++) { s += tmp[i]; }
  return s;
}`,
		"f",
		func() []any { return []any{IntV(6)} },
	},
	{
		"incdec",
		`int f() {
  int i = 5;
  int a = i++;
  int b = i--;
  return a * 100 + b * 10 + i;
}`,
		"f",
		func() []any { return []any{} },
	},
	{
		"incdec-array",
		`void f(int n, double a[n]) {
  int i;
  for (i = 0; i < n; i++) { a[i]++; }
  a[0]--;
}`,
		"f",
		func() []any {
			a := NewArray(4)
			for i := 0; i < 4; i++ {
				a.Set(float64(i)*0.5, i)
			}
			return []any{IntV(4), a}
		},
	},
	{
		"compound-array-ops",
		`void f(int n, double a[n]) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] += 1.5;
    a[i] *= 2.0;
    a[i] -= 0.25;
    a[i] /= 3.0;
  }
}`,
		"f",
		func() []any {
			a := NewArray(5)
			for i := 0; i < 5; i++ {
				a.Set(float64(i*i), i)
			}
			return []any{IntV(5), a}
		},
	},
	{
		"logic-and-not",
		`int f(int a, int b) {
  int r = 0;
  if (a > 0 && b > 0) { r = r + 1; }
  if (a > 0 || b > 0) { r = r + 2; }
  if (!a) { r = r + 4; }
  return r;
}`,
		"f",
		func() []any { return []any{IntV(0), IntV(3)} },
	},
	{
		"pointer-out-param",
		`void mean(int n, double a[n], double *out) {
  int i;
  double s = 0.0;
  for (i = 0; i < n; i++) { s += a[i]; }
  out = s / n;
}
void f(int n, double a[n], double *out) { mean(n, a, out); }`,
		"f",
		func() []any {
			a := NewArray(4)
			for i := 0; i < 4; i++ {
				a.Set(float64(i+1), i)
			}
			out := FloatV(0)
			return []any{IntV(4), a, &out}
		},
	},
	{
		"address-of-local",
		`void bump(double *p) { p = p + 1.0; }
double f() {
  double x = 41.0;
  bump(&x);
  return x;
}`,
		"f",
		func() []any { return []any{} },
	},
	{
		"stencil",
		`void jacobi(int n, int steps, double A[n][n], double B[n][n]) {
  int t, i, j;
  for (t = 0; t < steps; t++) {
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i - 1][j] + A[i + 1][j]);
      }
    }
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        A[i][j] = B[i][j];
      }
    }
  }
}`,
		"jacobi",
		func() []any {
			n := 8
			A, B := NewArray(n, n), NewArray(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					A.Set(float64(i*n+j)/7.0, i, j)
				}
			}
			return []any{IntV(int64(n)), IntV(3), A, B}
		},
	},
	{
		"2mm", bench2mmSrc, "mm2",
		func() []any {
			n := 6
			mk := func() *Array {
				a := NewArray(n, n)
				for i := range a.Data {
					a.Data[i] = float64(i%11) * 0.31
				}
				return a
			}
			return []any{IntV(int64(n)), IntV(int64(n)), IntV(int64(n)), IntV(int64(n)),
				FloatV(1.5), FloatV(0.5), mk(), mk(), mk(), mk(), mk()}
		},
	},
	{
		"seidel-2d", benchSeidelSrc, "seidel2d",
		func() []any {
			n := 10
			a := NewArray(n, n)
			for i := range a.Data {
				a.Data[i] = float64(i%17) * 0.5
			}
			return []any{IntV(3), IntV(int64(n)), a}
		},
	},
	{
		"atax", benchAtaxSrc, "atax",
		func() []any {
			n := 9
			a := NewArray(n, n)
			for i := range a.Data {
				a.Data[i] = float64(i%13) * 0.7
			}
			v := func() *Array {
				x := NewArray(n)
				for i := range x.Data {
					x.Data[i] = float64(i%5) * 1.3
				}
				return x
			}
			return []any{IntV(int64(n)), IntV(int64(n)), a, v(), v(), v()}
		},
	},
	{
		"mvt", benchMvtSrc, "mvt",
		func() []any {
			n := 9
			vec := func(s float64) *Array {
				x := NewArray(n)
				for i := range x.Data {
					x.Data[i] = float64(i%5)*s + 0.25
				}
				return x
			}
			A := NewArray(n, n)
			for i := range A.Data {
				A.Data[i] = float64(i%7) * 0.4
			}
			return []any{IntV(int64(n)), vec(1.1), vec(0.7), vec(1.3), vec(0.9), A}
		},
	},
	{
		"trisolv", benchTrisolvSrc, "trisolv",
		func() []any {
			n := 8
			L := NewArray(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					L.Set(float64(i+j)/5.0+1.0, i, j)
				}
			}
			b := NewArray(n)
			for i := range b.Data {
				b.Data[i] = float64(i%4) + 0.5
			}
			return []any{IntV(int64(n)), L, NewArray(n), b}
		},
	},
	{
		"cholesky", benchCholeskySrc, "cholesky",
		func() []any {
			n := 7
			A := NewArray(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := 0.05 * float64((i*j)%5)
					if i == j {
						v = float64(n) + 1.5
					}
					A.Set(v, i, j)
				}
			}
			return []any{IntV(int64(n)), A}
		},
	},
	{
		"mixed-int-float-assign",
		`double f(double z) {
  double s = 0.0;
  s = 1;
  s += 0.5;
  int k = 3.9;
  return s + k + z;
}`,
		"f",
		func() []any { return []any{FloatV(0.25)} },
	},
	{
		"cast-and-negate",
		`double f(int a) { return (double)(0 - a) / 4 + (int)2.75; }`,
		"f",
		func() []any { return []any{IntV(7)} },
	},
}

// mustVariant derives a Program variant or fails the test.
func mustVariant(t *testing.T, p *Program, opts ...Option) *Program {
	t.Helper()
	v, err := p.Variant(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func sameValue(a, b Value) bool {
	if a.IsInt != b.IsInt {
		return false
	}
	if a.IsInt {
		return a.I == b.I
	}
	return math.Float64bits(a.F) == math.Float64bits(b.F)
}

// TestCompiledParityWithWalker runs every golden program through the
// tree-walker and every engine entry point — the historical Interp
// wrapper plus Instances of the O2/O1/O0 Program variants — and
// requires bit-identical results: same returned Value and same bits in
// every array argument.
func TestCompiledParityWithWalker(t *testing.T) {
	for _, tc := range parityCases {
		t.Run(tc.name, func(t *testing.T) {
			f := MustParse("t.c", tc.src)
			prog, perr := Compile(f)
			if perr != nil {
				t.Fatal(perr)
			}
			engines := []struct {
				name string
				e    engine
			}{
				{"interp", NewInterp(f)},
				{"instance-O2", prog.NewInstance()},
				{"variant-O3", mustVariant(t, prog, WithOptLevel(O3)).NewInstance()},
				{"variant-O1", mustVariant(t, prog, WithOptLevel(O1)).NewInstance()},
				{"variant-O0", mustVariant(t, prog, WithOptLevel(O0)).NewInstance()},
				{"variant-bc", mustVariant(t, prog, WithBackend(BackendBytecode), WithOptLevel(O3)).NewInstance()},
			}
			wArgs := tc.args()
			wv, werr := NewWalker(f).Call(tc.fn, wArgs...)
			for _, eng := range engines {
				cArgs := tc.args()
				cv, cerr := eng.e.Call(tc.fn, cArgs...)
				if (werr == nil) != (cerr == nil) {
					t.Fatalf("%s: error divergence: walker=%v compiled=%v", eng.name, werr, cerr)
				}
				if werr != nil {
					continue
				}
				if !sameValue(wv, cv) {
					t.Fatalf("%s: return value divergence: walker=%+v compiled=%+v", eng.name, wv, cv)
				}
				for i := range wArgs {
					wa, ok := wArgs[i].(*Array)
					if !ok {
						if wp, isPtr := wArgs[i].(*Value); isPtr {
							cp := cArgs[i].(*Value)
							if !sameValue(*wp, *cp) {
								t.Errorf("%s: out-param %d divergence: walker=%+v compiled=%+v",
									eng.name, i, *wp, *cp)
							}
						}
						continue
					}
					ca := cArgs[i].(*Array)
					for k := range wa.Data {
						if math.Float64bits(wa.Data[k]) != math.Float64bits(ca.Data[k]) {
							t.Fatalf("%s: array arg %d diverges at flat index %d: walker=%g compiled=%g",
								eng.name, i, k, wa.Data[k], ca.Data[k])
						}
					}
				}
			}
		})
	}
}

func TestCompiledOutOfBoundsPositioned(t *testing.T) {
	src := "void f(int n, double a[n]) {\n  a[n] = 1.0;\n}"
	in := NewInterp(MustParse("oob.c", src))
	_, err := in.Call("f", IntV(3), NewArray(3))
	if err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	if !strings.Contains(err.Error(), "oob.c:2:") {
		t.Errorf("error should carry file:line position, got %q", err)
	}
}

func TestCompiledDivByZeroPositioned(t *testing.T) {
	in := NewInterp(MustParse("div.c", "int f(int a) { return 1 / a; }"))
	_, err := in.Call("f", IntV(0))
	if err == nil {
		t.Fatal("expected division-by-zero error")
	}
	if !strings.Contains(err.Error(), "div.c:1:") {
		t.Errorf("error should carry file:line position, got %q", err)
	}
}

// TestDivByZeroPositionedEverywhere pins the *Diag contract for integer
// division faults across every execution path: the tree-walker's
// arith/applyCompound (which used to panic with bare strings), the
// compiled compound-assignment path, and the compiled typed int path.
func TestDivByZeroPositionedEverywhere(t *testing.T) {
	cases := []struct {
		name, src, fn string
	}{
		{"binary-div", "int f(int a) { return 1 / a; }", "f"},
		{"binary-mod", "int f(int a) { return 1 % a; }", "f"},
		{"compound-div", "int f(int a) {\n  int s = 7;\n  s /= a;\n  return s;\n}", "f"},
		{"compound-mod", "int f(int a) {\n  int s = 7;\n  s %= a;\n  return s;\n}", "f"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := MustParse("dz.c", tc.src)
			for _, eng := range []struct {
				name string
				e    engine
			}{{"walker", NewWalker(f)}, {"compiled", NewInterp(f)}} {
				_, err := eng.e.Call(tc.fn, IntV(0))
				if err == nil {
					t.Fatalf("%s: expected a division fault", eng.name)
				}
				if !strings.Contains(err.Error(), "dz.c:") {
					t.Errorf("%s: fault should carry file:line:col, got %q", eng.name, err)
				}
			}
		})
	}
}

func TestCompiledGlobals(t *testing.T) {
	src := `
int scale = 3;
double acc[4];
void f(int n) {
  int i;
  for (i = 0; i < n; i++) {
    acc[i] = (double)(i * scale);
  }
  scale = scale + 1;
}
double get(int i) { return acc[i]; }
`
	in := NewInterp(MustParse("g.c", src))
	if _, err := in.Call("f", IntV(4)); err != nil {
		t.Fatal(err)
	}
	// Globals persist across calls: the second call sees scale == 4.
	if _, err := in.Call("f", IntV(4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		v, err := in.Call("get", IntV(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(i * 4); v.Float() != want {
			t.Errorf("acc[%d] = %g, want %g", i, v.Float(), want)
		}
	}
}

func TestCompiledGlobalPersistence(t *testing.T) {
	src := `
int counter = 0;
int next() {
  counter = counter + 1;
  return counter;
}
`
	in := NewInterp(MustParse("g.c", src))
	for want := int64(1); want <= 3; want++ {
		v, err := in.Call("next")
		if err != nil {
			t.Fatal(err)
		}
		if v.Int() != want {
			t.Fatalf("next() = %d, want %d", v.Int(), want)
		}
	}
	// A fresh Interp over the same program starts from scratch.
	prog, err := Compile(MustParse("g.c", src))
	if err != nil {
		t.Fatal(err)
	}
	in2 := prog.NewInterp()
	v, err := in2.Call("next")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 1 {
		t.Errorf("fresh interp next() = %d, want 1", v.Int())
	}
}

func TestCompiledRuntimePanicBecomesError(t *testing.T) {
	// A VLA so large that allocation faults must surface as an error
	// from Call, never a process crash (the historical contract). Since
	// the containment layer (resilience.go) the error is a structured
	// *InternalFault carrying the variant's knob coordinates.
	src := "void f(int n) {\n  double t[n][n];\n  t[0][0] = 1.0;\n}"
	in := NewInterp(MustParse("big.c", src))
	_, err := in.Call("f", IntV(1<<31))
	if err == nil {
		t.Fatal("expected an allocation error")
	}
	var fault *InternalFault
	if !errors.As(err, &fault) {
		t.Fatalf("error is %T (%v), want *InternalFault", err, err)
	}
	if fault.Fn != "f" || fault.Backend != BackendCompiled {
		t.Errorf("fault coordinates = %s/%s, want compiled/f", fault.Backend, fault.Fn)
	}
	if !strings.Contains(err.Error(), "internal fault in f") {
		t.Errorf("unexpected error text: %v", err)
	}
}

func TestCompiledPtrValueToByValueParamCopiesBack(t *testing.T) {
	// The old interpreter shared the cell when a *Value was bound to a
	// by-value scalar parameter; the compiled pipeline copies the slot
	// back on return. Both engines must leave the caller's cell equal.
	src := "int bump(int n) {\n  n = n + 1;\n  return n;\n}"
	f := MustParse("t.c", src)
	wv, cv := IntV(5), IntV(5)
	if _, err := NewWalker(f).Call("bump", &wv); err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterp(f).Call("bump", &cv); err != nil {
		t.Fatal(err)
	}
	if !sameValue(wv, cv) {
		t.Fatalf("caller cell divergence: walker=%+v compiled=%+v", wv, cv)
	}
	if cv.Int() != 6 {
		t.Errorf("caller cell = %d, want 6 (shared-cell semantics)", cv.Int())
	}
	// Kind-mismatched *Value args are shared unconverted, like the old
	// interpreter: a FloatV reaching an int parameter stays a float.
	idSrc := "int id(int n) { return n; }"
	fid := MustParse("t.c", idSrc)
	wf, cf := FloatV(2.5), FloatV(2.5)
	wr, err := NewWalker(fid).Call("id", &wf)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := NewInterp(fid).Call("id", &cf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameValue(wr, cr) || !sameValue(wf, cf) {
		t.Errorf("kind-mismatch divergence: walker ret=%+v cell=%+v, compiled ret=%+v cell=%+v",
			wr, wf, cr, cf)
	}
}

// TestSameValueTwoByValueParams pins the documented copyback caveat:
// the walker binds the same *Value for two by-value parameters as ONE
// aliased cell, while the compiled engine copies it into two
// independent slots and copies back in parameter order (last write
// wins). This divergence is deliberate — the test keeps it from
// shifting silently in either direction.
func TestSameValueTwoByValueParams(t *testing.T) {
	src := "int f(int a, int b) {\n  a = a + 1;\n  b = b + 10;\n  return a * 100 + b;\n}"
	f := MustParse("t.c", src)

	wcell := IntV(0)
	wv, err := NewWalker(f).Call("f", &wcell, &wcell)
	if err != nil {
		t.Fatal(err)
	}
	// Walker: a and b alias one cell: a=a+1 → 1, b=b+10 → 11, a reads 11.
	if wv.Int() != 1111 || wcell.Int() != 11 {
		t.Errorf("walker: ret=%d cell=%d, want 1111/11 (aliased cell)", wv.Int(), wcell.Int())
	}

	ccell := IntV(0)
	cv, err := NewInterp(f).Call("f", &ccell, &ccell)
	if err != nil {
		t.Fatal(err)
	}
	// Compiled: independent slots (a=1, b=10); copybacks run in
	// parameter order, so b's value lands last in the caller's cell.
	if cv.Int() != 110 || ccell.Int() != 10 {
		t.Errorf("compiled: ret=%d cell=%d, want 110/10 (independent slots, last copyback wins)",
			cv.Int(), ccell.Int())
	}
}

func TestCompileErrorDeferredToCall(t *testing.T) {
	in := NewInterp(MustParse("bad.c", "void f() { x = 1; }"))
	_, err := in.Call("f")
	if err == nil {
		t.Fatal("expected resolve error from Call")
	}
	if !strings.Contains(err.Error(), "undeclared identifier") {
		t.Errorf("unexpected error: %v", err)
	}
}
