package cminor

import (
	"fmt"
	"strings"
)

// Diag is a positioned diagnostic produced by the lexer, parser, resolver
// or the compiled executor. It implements error and renders as
// "file:line:col: message" so a bad kernel points at the offending source
// location instead of crashing the process.
type Diag struct {
	File string
	P    Pos
	Msg  string
}

// Error renders the diagnostic with its source position.
func (d *Diag) Error() string {
	if d.File == "" {
		if d.P == (Pos{}) {
			return d.Msg
		}
		return fmt.Sprintf("%s: %s", d.P, d.Msg)
	}
	if d.P == (Pos{}) {
		return fmt.Sprintf("%s: %s", d.File, d.Msg)
	}
	return fmt.Sprintf("%s:%s: %s", d.File, d.P, d.Msg)
}

// diagf builds a Diag with a formatted message.
func diagf(file string, p Pos, format string, args ...any) *Diag {
	return &Diag{File: file, P: p, Msg: fmt.Sprintf(format, args...)}
}

// DiagList is an ordered collection of diagnostics. A non-empty list
// implements error; use Err to convert a possibly-empty list into a
// nil-able error value.
type DiagList []*Diag

// Error renders every diagnostic on its own line.
func (dl DiagList) Error() string {
	if len(dl) == 0 {
		return "no diagnostics"
	}
	parts := make([]string, len(dl))
	for i, d := range dl {
		parts[i] = d.Error()
	}
	return strings.Join(parts, "\n")
}

// Err returns the list as an error, or nil when the list is empty.
func (dl DiagList) Err() error {
	if len(dl) == 0 {
		return nil
	}
	return dl
}
