package cminor

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The engine API splits execution into an immutable, shareable *Program
// and lightweight per-goroutine *Instance sessions — the runtime shape
// SOCRATES assumes: kernels are compiled once (possibly into several
// variants under different optimization configurations) and then called
// many times, concurrently, with per-call control.
//
//	prog, err := Compile(file)                   // resolve+typecheck+lower once
//	o3, err := prog.Variant(WithOptLevel(O3))    // another knob setting, shared front end
//	inst := prog.NewInstance()                   // one per goroutine
//	v, err := inst.CallContext(ctx, "gemm", args...)
//
// A Program holds only read-only state (the AST is never written after
// parse; resolver/typecheck results live in NodeID-indexed side
// tables), so any number of goroutines may share one Program — or
// several variants of it — each through its own Instance. An Instance
// owns the mutable execution state: global-variable storage, the step
// budget, and a frame freelist that keeps steady-state calls
// allocation-free. Instances are NOT safe for concurrent use; they are
// cheap, so create one per goroutine.

// DefaultMaxSteps is the default statement budget of a fresh Instance,
// Interp, or Walker — a cheap runaway guard for untrusted kernels.
const DefaultMaxSteps = 500_000_000

// Backend selects the execution strategy of a compiled Program.
type Backend uint8

// Execution backends.
const (
	// BackendCompiled is the closure-compiled pipeline (the default).
	BackendCompiled Backend = iota
	// BackendWalker executes via the original tree-walking interpreter
	// — the slow, name-resolving semantics oracle, useful for
	// differential runs.
	BackendWalker
	// BackendBytecode lowers typed functions to a flat register-machine
	// bytecode run by a single dispatch loop (bytecode.go). Functions
	// the lowerer cannot prove equivalent keep their closure-compiled
	// body, so a bytecode variant is always whole-program correct.
	BackendBytecode

	// maxBackend is the highest backend Compile/Variant accept.
	maxBackend = BackendBytecode
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendWalker:
		return "walker"
	case BackendBytecode:
		return "bytecode"
	}
	return "compiled"
}

// OptLevel selects how aggressively the compiled backend specializes,
// mirroring a compiler's -O axis so one source can be lowered into
// several variants and compared.
type OptLevel uint8

// Optimization levels.
const (
	// O0 compiles only the generic tagged-Value closures.
	O0 OptLevel = iota
	// O1 adds the typecheck-driven unboxed int64/float64 evaluators.
	O1
	// O2 adds the loop optimizer: native counted loops and
	// strength-reduced affine subscripts (the default).
	O2
	// O3 adds user-function inlining (inline.go), value-range analysis
	// with bounds-check elimination (rangeanal.go), and store-loop
	// unrolling for scalar reductions (loopopt.go). Semantics stay
	// bit-identical to the walker; O3 widens the knob space the
	// autotuning layer selects over.
	O3

	// maxOptLevel is the highest level Compile/Variant accept.
	maxOptLevel = O3
)

// String renders the level in -O spelling.
func (l OptLevel) String() string { return fmt.Sprintf("O%d", uint8(l)) }

// PassMask gates the individual O3 passes, refining the opt-level axis
// into a finer knob grid: a variant at O3 may enable any subset of the
// passes, so an autotuning layer can explore 2^3 grid points between O2
// and full O3 instead of a single one. Below O3 the mask is inert.
type PassMask uint8

// The O3 passes. Each is independently gate-able; O3 with all bits
// cleared behaves exactly like O2.
const (
	// PassInline splices small leaf callees into their callers
	// (inline.go), which also unlocks the loop fast paths for bodies
	// whose only calls were inlined.
	PassInline PassMask = 1 << iota
	// PassBCE is value-range bounds-check elimination (rangeanal.go).
	PassBCE
	// PassUnroll is 4-wide store-loop/reduction unrolling (loopopt.go).
	PassUnroll

	// AllPasses enables every O3 pass (the default).
	AllPasses PassMask = PassInline | PassBCE | PassUnroll
)

// String names the enabled passes ("inline+bce+unroll", "none").
func (m PassMask) String() string {
	if m == 0 {
		return "none"
	}
	s := ""
	add := func(on PassMask, name string) {
		if m&on != 0 {
			if s != "" {
				s += "+"
			}
			s += name
		}
	}
	add(PassInline, "inline")
	add(PassBCE, "bce")
	add(PassUnroll, "unroll")
	return s
}

// config is the resolved option set of one Program variant.
type config struct {
	backend  Backend
	opt      OptLevel
	passes   PassMask
	maxSteps int
	// fallback enables snapshot/rollback + trusted re-execution on
	// internal faults (resilience.go, WithFallback).
	fallback bool
	// inject is the deterministic fault-injection seam (faultinject.go,
	// WithFaultInjector); nil in production.
	inject FaultInjector
}

func defaultConfig() config {
	return config{backend: BackendCompiled, opt: O2, passes: AllPasses, maxSteps: DefaultMaxSteps}
}

// Option configures Compile and Program.Variant.
type Option func(*config)

// WithBackend selects the execution backend.
func WithBackend(b Backend) Option { return func(c *config) { c.backend = b } }

// WithOptLevel selects the compiled backend's optimization level.
// Unknown levels are rejected with a positioned diagnostic by Compile
// and Program.Variant rather than silently degrading.
func WithOptLevel(l OptLevel) Option {
	return func(c *config) { c.opt = l }
}

// WithPasses selects which O3 passes a variant enables; it has no
// effect below O3. Unknown bits are rejected with a diagnostic by
// Compile and Program.Variant, like an unknown opt level.
func WithPasses(m PassMask) Option {
	return func(c *config) { c.passes = m }
}

// validate rejects option combinations the engine cannot honour.
func (c config) validate(file string) error {
	if c.backend > maxBackend {
		return diagf(file, Pos{}, "unknown backend %d (supported: 0–%d)",
			uint8(c.backend), uint8(maxBackend))
	}
	if c.opt > maxOptLevel {
		return diagf(file, Pos{}, "unknown optimization level O%d (supported: O0–O%d)",
			uint8(c.opt), uint8(maxOptLevel))
	}
	if bad := c.passes &^ AllPasses; bad != 0 {
		return diagf(file, Pos{}, "unknown O3 pass bits 0x%x (supported: 0x%x)",
			uint8(bad), uint8(AllPasses))
	}
	return nil
}

// WithMaxSteps sets the default statement budget inherited by every
// Instance (and Interp) of the program. n <= 0 restores DefaultMaxSteps.
func WithMaxSteps(n int) Option {
	return func(c *config) {
		if n <= 0 {
			n = DefaultMaxSteps
		}
		c.maxSteps = n
	}
}

// Program is a compiled C-minor translation unit: one variant of the
// source under a particular option set. It is immutable and safe to
// share across any number of goroutines; all mutable run state lives in
// the Instances created from it.
type Program struct {
	res   *ResolvedFile
	ti    *typeInfo
	fname string
	cfg   config
	funcs map[string]*compiledFunc
	nfun  int
	// ref is the lazily-built trusted tier (generic O0, injector-free)
	// that fallback re-execution and audits run on (resilience.go).
	refOnce sync.Once
	ref     *Program
}

// Compile resolves, typechecks and lowers f under the given options
// (default: compiled backend, O2, DefaultMaxSteps). All diagnostics
// carry file:line:col. f is not modified — semantic results live in
// side tables — so the same *File may be compiled repeatedly, and
// concurrently, into independent Programs.
func Compile(f *File, opts ...Option) (*Program, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(f.Name); err != nil {
		return nil, err
	}
	res, err := Resolve(f)
	if err != nil {
		return nil, err
	}
	return lower(f.Name, res, typecheck(res), cfg), nil
}

// Variant lowers the same resolved source under a modified option set,
// sharing the resolve/typecheck results with p. Options not overridden
// keep p's values. This is the compile-time exploration hook: build
// O0–O3 (or walker) variants of one kernel and select among them at
// run time. Unknown option values (e.g. an out-of-range opt level) are
// reported as a diagnostic, never silently clamped.
func (p *Program) Variant(opts ...Option) (*Program, error) {
	cfg := p.cfg
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(p.fname); err != nil {
		return nil, err
	}
	return lower(p.fname, p.res, p.ti, cfg), nil
}

// CheckOptions validates an option set against p without lowering a
// variant: the same diagnostics Variant would return, at none of the
// cost. Selection layers with large knob grids use it to fail fast on
// a malformed grid while still materializing variants lazily.
func (p *Program) CheckOptions(opts ...Option) error {
	cfg := p.cfg
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.validate(p.fname)
}

// HasFunc reports whether the program defines the named function.
// Selection layers use it to reject unknown names before allocating
// any per-function tuning state.
func (p *Program) HasFunc(name string) bool {
	_, ok := p.res.Funcs[name]
	return ok
}

// Funcs returns the names of the program's functions, sorted. Serving
// layers use it to build their routing tables without re-parsing the
// source.
func (p *Program) Funcs() []string {
	names := make([]string, 0, len(p.res.Funcs))
	for name := range p.res.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Backend reports the variant's execution backend.
func (p *Program) Backend() Backend { return p.cfg.backend }

// OptLevel reports the variant's optimization level.
func (p *Program) OptLevel() OptLevel { return p.cfg.opt }

// Passes reports the variant's O3 pass mask (meaningful at O3; inert
// below it).
func (p *Program) Passes() PassMask { return p.cfg.passes }

// lower builds one Program variant from shared front-end results.
func lower(fname string, res *ResolvedFile, ti *typeInfo, cfg config) *Program {
	p := &Program{res: res, ti: ti, fname: fname, cfg: cfg,
		funcs: map[string]*compiledFunc{}}
	if cfg.backend == BackendWalker {
		return p // execution delegates to a per-instance Walker
	}
	for name, info := range res.Funcs {
		p.funcs[name] = &compiledFunc{info: info, idx: p.nfun,
			nScalars: info.NumScalars, nCells: info.NumCells, nArrays: info.NumArrays}
		p.nfun++
	}
	// At O3 the inliner plans which call sites splice their callee into
	// the caller's frame; inlined callees get fresh slot blocks, so the
	// per-variant frame sizes grow past the resolver's counts.
	var plans map[string]*inlinePlan
	if cfg.opt >= O3 && cfg.passes&PassInline != 0 {
		plans = planInlining(res, ti)
		for name, pl := range plans {
			cf := p.funcs[name]
			cf.nScalars, cf.nCells, cf.nArrays = pl.numScalars, pl.numCells, pl.numArrays
		}
	}
	for name, cf := range p.funcs {
		cg := &compiler{prog: p}
		cf.generic = cg.block(cf.info.Decl.Body)
		if cfg.opt == O0 {
			cf.body = cf.generic
			continue
		}
		types := ti.funcs[name]
		plan := plans[name]
		if plan != nil {
			types = plan.types // caller kinds extended over the inlined slots
		}
		ct := &compiler{prog: p, types: types, info: ti, opt: cfg.opt, passes: cfg.passes, plan: plan}
		cf.body = ct.block(cf.info.Decl.Body)
		cf.numHoist = ct.numHoist
	}
	// The bytecode backend replaces eligible closure bodies with a flat
	// dispatch loop; ineligible functions keep the closure body built
	// above, so mixed programs still execute end to end.
	if cfg.backend == BackendBytecode {
		for name, cf := range p.funcs {
			if bc := lowerBCFunc(p, name, cf); bc != nil {
				cf.bc = bc
				bcf := bc
				cf.body = func(fr *frame) flow {
					execBC(fr, bcf)
					return flowNormal
				}
			}
		}
	}
	return p
}

// newGlobals allocates and initialises global storage for one session.
func (p *Program) newGlobals() *globalStore {
	g := &globalStore{}
	for _, gs := range p.res.Scalars {
		g.scalars = append(g.scalars, gs.Init)
	}
	for _, ga := range p.res.Arrays {
		g.arrays = append(g.arrays, NewArray(ga.Dims...))
	}
	return g
}

// Instance is one execution session over a shared Program: it owns the
// program's global-variable storage, the statement budget, and a frame
// freelist. Creating an Instance is cheap; it is not safe for
// concurrent use — give each goroutine its own.
type Instance struct {
	prog     *Program
	g        *globalStore
	wk       *Walker // lazily built for BackendWalker
	maxSteps int
	steps    int
	// lastSteps is the step count of the most recent call — the
	// measurement tap autotuning layers read (see LastCallSteps).
	lastSteps int
	// limit is the steps value past which step() faults. It normally
	// holds the budget; a CallContext cancellation watcher drops it to
	// -1, so the single hot-path comparison covers both the runaway
	// guard and cancellation. Atomic because the watcher fires from
	// another goroutine; everything else on Instance is owner-only.
	limit atomic.Int64
	ctx   context.Context
	// watchDone flags that the current call's cancellation watcher has
	// finished, so call teardown can drain it (see call).
	watchDone atomic.Bool
	// pools holds reusable frames per compiled function, so steady-state
	// calls allocate nothing.
	pools [][]*frame
	// Resilience state (resilience.go): fb is the session's trusted-tier
	// twin sharing this session's globals; snap is the reusable pre-call
	// snapshot WithFallback captures; lastFault/degraded are the
	// introspection taps of the most recent call; poisoned flags globals
	// left unrecovered by an internal fault with no snapshot to roll
	// back to.
	fb        *Instance
	snap      stateSnapshot
	lastFault *InternalFault
	degraded  bool
	poisoned  bool
}

// NewInstance creates an execution session over p with fresh globals
// and the program's configured step budget.
func (p *Program) NewInstance() *Instance {
	s := &Instance{prog: p, maxSteps: p.cfg.maxSteps}
	s.limit.Store(int64(s.maxSteps))
	if p.cfg.backend != BackendWalker {
		s.g = p.newGlobals()
		s.pools = make([][]*frame, p.nfun)
	}
	return s
}

// SetMaxSteps replaces the session's statement budget (n <= 0 restores
// DefaultMaxSteps). Steps accumulate across calls, as they always have.
//
// The budget is strictly per-Instance: no other session of the same
// Program observes the change. When Instances are recycled through an
// InstancePool, Put discards both the accumulated step count and any
// SetMaxSteps override, so a budget adjusted on one checkout can never
// leak into — or starve — the next.
func (s *Instance) SetMaxSteps(n int) {
	if n <= 0 {
		n = DefaultMaxSteps
	}
	s.maxSteps = n
}

// Steps reports the statements executed by this session so far.
func (s *Instance) Steps() int { return s.steps }

// LastCallSteps reports how many statements the most recent
// Call/CallContext executed, including a call that faulted mid-kernel.
// Unlike wall time it is deterministic and machine-independent, which
// makes it a useful cost measurement tap for autotuning layers.
func (s *Instance) LastCallSteps() int { return s.lastSteps }

// InstancePool is a concurrency-safe free list of Instances of one
// Program variant. It exists for selection layers (see
// internal/cminor/autotune) that route concurrent calls through
// whichever variant a policy picks: Get hands out a ready session, Put
// recycles it with a restored budget. Checked-out Instances follow the
// usual rule — one goroutine at a time.
//
// An Instance is a session: its global-variable storage persists across
// checkouts. Pool stateless kernels (the common case); a kernel that
// accumulates state in globals needs dedicated Instances instead.
type InstancePool struct {
	prog *Program
	mu   sync.Mutex
	free []*Instance
	// Checkout accounting (see Stats). A pool in front of a bounded
	// worker set must be provably bounded itself: created never exceeds
	// the peak number of concurrently checked-out sessions, and
	// created - dropped always equals free + in-use.
	created  int64
	inuse    int64
	dropped  int64
	repaired int64
}

// PoolStats is a point-in-time accounting snapshot of an InstancePool.
type PoolStats struct {
	Created  int64 // Instances this pool has ever materialized
	Free     int64 // currently pooled, ready for checkout
	InUse    int64 // checked out and not yet returned
	Dropped  int64 // Put rejections (nil or foreign-Program instances)
	Repaired int64 // poisoned sessions rebuilt with fresh globals by Put
}

// Stats reports the pool's checkout accounting. The invariant a healthy
// pool maintains — and the leak tests assert under churn — is
// Created == Free + InUse: every session this pool made is either
// pooled or checked out, and Created itself never exceeds the peak
// number of concurrent checkouts. (Dropped counts rejected Puts of
// sessions that were never this pool's to begin with.)
func (ip *InstancePool) Stats() PoolStats {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	return PoolStats{
		Created:  ip.created,
		Free:     int64(len(ip.free)),
		InUse:    ip.inuse,
		Dropped:  ip.dropped,
		Repaired: ip.repaired,
	}
}

// NewPool returns an empty Instance pool over p.
func (p *Program) NewPool() *InstancePool { return &InstancePool{prog: p} }

// Get returns a ready Instance of the pool's variant: a recycled one
// when available, a fresh one otherwise.
func (ip *InstancePool) Get() *Instance {
	ip.mu.Lock()
	ip.inuse++
	if n := len(ip.free) - 1; n >= 0 {
		inst := ip.free[n]
		ip.free = ip.free[:n]
		ip.mu.Unlock()
		return inst
	}
	ip.created++
	ip.mu.Unlock()
	return ip.prog.NewInstance()
}

// Put recycles inst into the pool. The session's budget is restored to
// the Program's configured maximum and its accumulated step count is
// zeroed: budgets are per-checkout, so a long-lived pool cycling
// millions of calls never trips the runaway guard on inherited steps,
// and a SetMaxSteps applied during one checkout is not observable in
// the next (see SetMaxSteps). A poisoned session — one whose globals an
// internal fault left half-written with no snapshot to roll back
// (see Instance.Poisoned) — is rebuilt with fresh global storage before
// pooling, so corrupted state can never leak into the next checkout.
// Instances belonging to a different Program are dropped rather than
// pooled.
func (ip *InstancePool) Put(inst *Instance) {
	if inst == nil || inst.prog != ip.prog {
		ip.mu.Lock()
		ip.dropped++
		ip.mu.Unlock()
		return
	}
	inst.steps = 0
	inst.lastSteps = 0
	inst.maxSteps = ip.prog.cfg.maxSteps
	inst.lastFault = nil
	inst.degraded = false
	repaired := false
	if inst.poisoned {
		inst.poisoned = false
		repaired = true
		if inst.g != nil {
			inst.g = ip.prog.newGlobals()
			if inst.fb != nil {
				// The trusted-tier twin aliases the session's global frame;
				// re-alias it to the rebuilt one.
				inst.fb.g = inst.g
			}
		}
		// A poisoned walker session's globals live in the Walker itself;
		// drop it so the next checkout rebuilds from the initializers.
		inst.wk = nil
	}
	if inst.wk != nil {
		inst.wk.Steps = 0
		inst.wk.MaxSteps = inst.maxSteps
	}
	ip.mu.Lock()
	ip.inuse--
	if repaired {
		ip.repaired++
	}
	ip.free = append(ip.free, inst)
	ip.mu.Unlock()
}

// ctxPollStride is how many statements the walker backend runs between
// context polls: large enough that the poll vanishes from hot loops,
// small enough that cancellation lands within tens of microseconds.
// (The compiled backend doesn't poll at all — a cancellation watcher
// drops the step limit instead.)
const ctxPollStride = 1 << 14

// ctxDone carries a context error through the panic-based fault path so
// the recovered error still wraps context.Canceled/DeadlineExceeded.
type ctxDone struct{ err error }

// step charges one executed statement. This is the hottest function in
// the engine — it runs once per interpreted statement — so the slow
// path must be a panic: a no-return branch keeps the register
// allocator from spilling loop state around every inlined call site.
// faultCause is only evaluated on the way into the panic.
func (s *Instance) step() {
	s.steps++
	if int64(s.steps) > s.limit.Load() {
		panic(s.faultCause())
	}
}

// faultCause names why the limit was crossed: a cancelled/expired
// context (the watcher dropped the limit) or the step budget itself.
func (s *Instance) faultCause() any {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return ctxDone{err}
		}
	}
	return &Diag{Msg: "interpreter step budget exceeded"}
}

// getFrame pops a pooled frame for cf, or allocates the first one.
func (s *Instance) getFrame(cf *compiledFunc) *frame {
	pool := &s.pools[cf.idx]
	if n := len(*pool) - 1; n >= 0 {
		fr := (*pool)[n]
		*pool = (*pool)[:n]
		// A body without a return statement leaves ret untouched; a
		// recycled frame must yield the zero Value then, like a fresh one.
		fr.ret = Value{}
		return fr
	}
	fr := &frame{
		ec:      s,
		scalars: make([]Value, cf.nScalars),
		cells:   make([]*Value, cf.nCells),
		arrays:  make([]*Array, cf.nArrays),
	}
	if cf.numHoist > 0 {
		fr.hoists = make([]hoistCell, cf.numHoist)
	}
	if cf.bc != nil {
		fr.ireg = make([]int64, cf.bc.nI)
		fr.freg = make([]float64, cf.bc.nF)
		fr.dreg = make([][]float64, cf.bc.nD)
	}
	return fr
}

// putFrame returns a frame to cf's pool. Pointer slots are cleared so a
// pooled frame does not retain caller arrays/cells; scalar slots may
// stay stale because every scalar is written (param bind or its
// declaration statement) before any read. Frames still live when a call
// faults are simply dropped to the GC.
func (s *Instance) putFrame(cf *compiledFunc, fr *frame) {
	clear(fr.cells)
	clear(fr.arrays)
	clear(fr.dreg)
	for i := range fr.hoists {
		fr.hoists[i].arr = nil
	}
	s.pools[cf.idx] = append(s.pools[cf.idx], fr)
}

// Call invokes the named function. Args must be *Array for array
// parameters, Value (or int/float64) for scalar parameters, and *Value
// for pointer parameters (shared cell). Runtime faults — bad subscript,
// integer division by zero, step budget — are returned as positioned
// errors rather than crashing.
func (s *Instance) Call(name string, args ...any) (Value, error) {
	return s.call(nil, name, args)
}

// CallContext is Call with cancellation: when ctx is cancelled or its
// deadline passes, a watcher drops the session's step limit and the
// very next statement's budget check aborts the kernel — typically
// within microseconds, at zero per-statement cost. The returned error
// wraps ctx.Err(); partial writes to argument arrays and globals may
// have happened, exactly as with any mid-kernel fault.
func (s *Instance) CallContext(ctx context.Context, name string, args ...any) (Value, error) {
	return s.call(ctx, name, args)
}

// resolveCall looks up the callee and checks arity — the failures that
// happen before any state is touched.
func (s *Instance) resolveCall(name string, args []any) (*compiledFunc, error) {
	cf, ok := s.prog.funcs[name]
	if !ok {
		return nil, fmt.Errorf("cminor: no function %q", name)
	}
	if params := cf.info.Decl.Params; len(args) != len(params) {
		return nil, fmt.Errorf("cminor: %s expects %d args, got %d",
			name, len(params), len(args))
	}
	return cf, nil
}

// call is the supervisor tier of one invocation: it resolves the
// callee, consults the fault injector, optionally snapshots the mutable
// state (WithFallback), runs the attempt inside the containment
// boundary, and on an internal fault either rolls back and re-executes
// on the trusted tier or surfaces the fault and poisons the session
// (resilience.go).
func (s *Instance) call(ctx context.Context, name string, args []any) (v Value, err error) {
	// A call that fails before executing anything (unknown function,
	// arity mismatch, pre-cancelled ctx) must not leave the previous
	// call's state in the introspection taps.
	s.lastSteps = 0
	s.degraded = false
	s.lastFault = nil
	if s.prog.cfg.backend == BackendWalker {
		return s.walkerCall(ctx, name, args)
	}
	cf, err := s.resolveCall(name, args)
	if err != nil {
		return Value{}, err
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Value{}, fmt.Errorf("cminor: calling %s: %w", name, cerr)
		}
	}
	var inj *Fault
	if fi := s.prog.cfg.inject; fi != nil {
		inj = fi.Decide(s.prog.cfg.backend, s.prog.cfg.opt, name)
	}
	snapped := false
	if s.prog.cfg.fallback {
		snapped = s.snap.capture(s, args)
	}
	startSteps := s.steps
	v, err, fault := s.attempt(ctx, cf, name, args, inj)
	if fault == nil {
		return v, err
	}
	s.lastFault = fault
	if !snapped {
		// No snapshot to roll back to: the session's globals may hold the
		// attempt's partial writes. Surface the fault and mark the state.
		s.poisoned = true
		return Value{}, fault
	}
	// Contained: restore the pre-call state (globals, argument arrays and
	// cells), discard the attempt's step charge, and re-execute once on
	// the trusted tier. The caller sees a correct result plus the
	// LastCallDegraded flag — never the panic.
	s.snap.restore(s)
	s.steps = startSteps
	s.degraded = true
	return s.runFallback(ctx, name, args)
}

// attempt executes one call on the session's own backend inside the
// containment boundary: any panic that is not a positioned *Diag or a
// context fault is returned as a structured *InternalFault rather than
// escaping — the process never dies on an engine bug. inj, when
// non-nil, is the fault the injector chose for this call; every
// injection point fires inside the boundary.
func (s *Instance) attempt(ctx context.Context, cf *compiledFunc, name string, args []any, inj *Fault) (v Value, err error, fault *InternalFault) {
	fr := s.getFrame(cf)
	// copybacks approximate the historical shared-cell behaviour of
	// *Value arguments bound to by-value scalar parameters: the raw
	// Value is copied in and copied back when the call finishes (or
	// faults). Caveat vs the old interpreter: passing the same *Value
	// for two by-value parameters no longer aliases them to one cell.
	var copybacks []func()
	// The typed body trusts that every by-value scalar slot holds a
	// Value of its declared kind. Raw *Value / int / float64 arguments
	// may violate that (the historical interpreter binds them
	// unconverted); such calls run the generically-compiled body.
	mistyped := false
	for i, p := range cf.info.Decl.Params {
		ref := cf.info.Params[i]
		if arr, isArr := args[i].(*Array); isArr || ref.Kind == VarArray {
			if !isArr || ref.Kind != VarArray {
				s.putFrame(cf, fr)
				return Value{}, fmt.Errorf("cminor: %s: array/parameter mismatch for %s", name, p.Name), nil
			}
			fr.arrays[ref.Slot] = arr
			continue
		}
		wantInt := p.Type.Kind == Int
		switch a := args[i].(type) {
		case *Value:
			if ref.Kind == VarCell {
				fr.cells[ref.Slot] = a
			} else {
				// The historical interpreter shared the cell unconverted;
				// copy the raw Value in and back out to match.
				if a.IsInt != wantInt {
					mistyped = true
				}
				fr.scalars[ref.Slot] = *a
				slot, dst := ref.Slot, a
				copybacks = append(copybacks, func() { *dst = fr.scalars[slot] })
			}
		case Value:
			bindScalar(fr, ref, convertKind(a, p.Type.Kind))
		case int:
			if !wantInt && ref.Kind == VarScalar {
				mistyped = true
			}
			bindScalar(fr, ref, IntV(int64(a)))
		case float64:
			if wantInt && ref.Kind == VarScalar {
				mistyped = true
			}
			bindScalar(fr, ref, FloatV(a))
		default:
			s.putFrame(cf, fr)
			return Value{}, fmt.Errorf("cminor: unsupported argument type %T for %s", a, p.Name), nil
		}
	}
	s.ctx = ctx
	startSteps := s.steps
	s.limit.Store(int64(s.maxSteps))
	// Cancellation costs nothing per statement: a watcher drops the
	// limit when ctx fires, and the ordinary budget comparison faults.
	var stopWatch func() bool
	if ctx != nil {
		s.watchDone.Store(false)
		stopWatch = context.AfterFunc(ctx, func() {
			s.limit.Store(-1)
			s.watchDone.Store(true)
		})
	}
	defer func() {
		// Recover FIRST, then tear down: teardown runs inside its own
		// recover boundary, so a panic racing the AfterFunc stop/drain (or
		// a copyback) can neither escape CallContext nor clobber the
		// in-flight kernel fault.
		r := recover()
		if tr := s.teardown(startSteps, stopWatch, copybacks); r == nil {
			r = tr
		}
		if r == nil {
			return
		}
		switch d := r.(type) {
		case *Diag:
			err = fmt.Errorf("cminor: interpreting %s: %w", name, d)
		case ctxDone:
			err = fmt.Errorf("cminor: interpreting %s: %w", name, d.err)
		default:
			// An internal engine fault — anything that is not a positioned
			// program-level diagnostic. Contain it as a structured error;
			// the supervisor (call) decides between fallback and poisoning.
			fault = s.internalFault(name, r)
		}
	}()
	if inj != nil {
		switch inj.Kind {
		case FaultLatency:
			if inj.Latency > 0 {
				time.Sleep(inj.Latency)
			}
		case FaultPanic:
			if inj.Point == FaultAtEntry {
				panic(&injectedFault{s.prog.cfg.backend, s.prog.cfg.opt, name, FaultAtEntry})
			}
		}
	}
	body := cf.body
	if mistyped {
		body = cf.generic
	}
	body(fr)
	if inj != nil && inj.Kind == FaultPanic {
		// FaultAtExit — and, on backends without a mid-kernel poll
		// checkpoint, FaultAtPoll — fires after the body completed, when
		// globals and argument arrays hold the attempt's full mutations.
		panic(&injectedFault{s.prog.cfg.backend, s.prog.cfg.opt, name, inj.Point})
	}
	// Copybacks read only scalar slots, which putFrame leaves intact;
	// run them eagerly anyway so the frame is logically dead when pooled.
	for _, cb := range copybacks {
		cb()
	}
	copybacks = nil
	ret := fr.ret
	s.putFrame(cf, fr)
	if inj != nil && inj.Kind == FaultWrongResult {
		ret = corruptValue(ret)
	}
	return ret, nil, nil
}

// teardown restores the session invariants after an attempt: detach the
// context, settle the measurement tap, drain the cancellation watcher,
// and commit copybacks. It runs under its own recover so a panic here
// is reported to the containment boundary instead of escaping.
func (s *Instance) teardown(startSteps int, stopWatch func() bool, copybacks []func()) (r any) {
	defer func() { r = recover() }()
	s.ctx = nil
	s.lastSteps = s.steps - startSteps
	if stopWatch != nil && !stopWatch() {
		// The watcher ran (or is running). Drain it so it cannot
		// clobber a later call's limit.
		for !s.watchDone.Load() {
			runtime.Gosched()
		}
	}
	for _, cb := range copybacks {
		cb()
	}
	return nil
}

// internalFault packages a recovered panic with the variant's full knob
// coordinates and the goroutine stack at the recover point.
func (s *Instance) internalFault(fn string, r any) *InternalFault {
	buf := make([]byte, 16<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return &InternalFault{
		Backend:   s.prog.cfg.backend,
		Opt:       s.prog.cfg.opt,
		Passes:    s.prog.cfg.passes,
		Fn:        fn,
		Recovered: r,
		Stack:     buf,
	}
}

// corruptValue deterministically flips the low bit of a result — the
// injected "silent miscompile" (FaultWrongResult) audits must catch.
func corruptValue(v Value) Value {
	if v.IsInt {
		v.I ^= 1
		return v
	}
	v.F = math.Float64frombits(math.Float64bits(v.F) ^ 1)
	return v
}

// bindScalar places a by-value scalar argument into the frame, boxing a
// fresh cell when the parameter was declared as a pointer.
func bindScalar(fr *frame, ref VarRef, v Value) {
	if ref.Kind == VarCell {
		cell := v
		fr.cells[ref.Slot] = &cell
		return
	}
	fr.scalars[ref.Slot] = v
}

// walkerCall runs a BackendWalker variant through a per-session Walker,
// keeping the session's step accounting and context observation. The
// whole exchange — entry injection, the walker body with its 16k-step
// cancellation polls, teardown — runs inside a containment boundary, so
// a panic racing the poll/teardown path surfaces as an *InternalFault
// from CallContext, never an escaped panic. The walker is the reference
// semantics, so there is no tier to fall back to: an internal fault
// here poisons the session (its globals live in the Walker and may hold
// the aborted attempt's partial writes).
func (s *Instance) walkerCall(ctx context.Context, name string, args []any) (v Value, err error) {
	if s.wk == nil {
		s.wk = NewWalker(s.prog.res.File)
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Value{}, fmt.Errorf("cminor: calling %s: %w", name, cerr)
		}
	}
	var inj *Fault
	if fi := s.prog.cfg.inject; fi != nil {
		inj = fi.Decide(BackendWalker, s.prog.cfg.opt, name)
	}
	start := s.steps
	s.wk.MaxSteps = s.maxSteps
	s.wk.Steps = start
	s.wk.ctx = ctx
	defer func() {
		r := recover()
		s.wk.ctx = nil
		s.wk.pollPanic = nil
		s.lastSteps = s.wk.Steps - start
		s.steps = s.wk.Steps
		if r != nil {
			fault := s.internalFault(name, r)
			s.lastFault = fault
			s.poisoned = true
			v, err = Value{}, fault
			return
		}
		var ifault *InternalFault
		if errors.As(err, &ifault) {
			// The walker's own boundary contained an unexpected panic (e.g.
			// an injected poll-point fault mid-teardown race): record it on
			// the session's taps too.
			s.lastFault = ifault
			s.poisoned = true
		}
	}()
	if inj != nil {
		switch inj.Kind {
		case FaultLatency:
			if inj.Latency > 0 {
				time.Sleep(inj.Latency)
			}
		case FaultPanic:
			sentinel := &injectedFault{BackendWalker, s.prog.cfg.opt, name, inj.Point}
			if inj.Point == FaultAtEntry {
				panic(sentinel)
			}
			// FaultAtPoll arms the walker's next 16k-step cancellation
			// checkpoint; FaultAtExit fires after Call returns, below.
			if inj.Point == FaultAtPoll {
				s.wk.pollPanic = sentinel
			}
		}
	}
	v, err = s.wk.Call(name, args...)
	if inj != nil && inj.Kind == FaultPanic && inj.Point == FaultAtExit {
		panic(&injectedFault{BackendWalker, s.prog.cfg.opt, name, FaultAtExit})
	}
	if inj != nil && inj.Kind == FaultWrongResult && err == nil {
		v = corruptValue(v)
	}
	return v, err
}
