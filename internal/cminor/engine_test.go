package cminor

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

const engineDotSrc = `
double dot(int n, double a[n], double b[n]) {
  int i;
  double s = 0.0;
  for (i = 0; i < n; i++) {
    s += a[i] * b[i];
  }
  return s;
}
`

func dotArgs(n int) (args []any, want float64) {
	a, b := NewArray(n), NewArray(n)
	for i := 0; i < n; i++ {
		a.Data[i] = float64(i) * 0.5
		b.Data[i] = float64(i%7) + 1.0
		want += a.Data[i] * b.Data[i]
	}
	return []any{IntV(int64(n)), a, b}, want
}

// TestCompileDoesNotMutateAST pins the immutability contract: compiling
// (twice, plus variants at every opt level and backend) leaves the
// input *File bit-identical to a freshly parsed one.
func TestCompileDoesNotMutateAST(t *testing.T) {
	src := engineDotSrc + `
int g = 3;
double withGlobals(int n, double a[n]) {
  int i;
  for (i = 0; i < n; i++) { a[i] += sqrt((double)g); }
  return a[0];
}`
	f := MustParse("t.c", src)
	pristine := MustParse("t.c", src)
	if !reflect.DeepEqual(f, pristine) {
		t.Fatal("parser is not deterministic; immutability check is void")
	}
	p1, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(f); err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{
		{WithOptLevel(O0)},
		{WithOptLevel(O1)},
		{WithOptLevel(O3)},
		{WithBackend(BackendWalker)},
		{WithMaxSteps(123)},
	} {
		if _, err := p1.Variant(opts...); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(f, pristine) {
		t.Error("Compile/Variant modified the input AST")
	}
	// And both compilations of the same *File actually execute.
	args, want := dotArgs(8)
	v, err := p1.NewInstance().Call("dot", args...)
	if err != nil || v.Float() != want {
		t.Errorf("dot = %v (%v), want %g", v, err, want)
	}
}

// TestConcurrentInstancesShareProgram runs many goroutines over one
// Program (each with its own Instance) and requires every call to agree
// with the sequential result. Run under -race this also proves the
// Program is read-only after Compile.
func TestConcurrentInstancesShareProgram(t *testing.T) {
	src := engineDotSrc + `
int calls = 0;
int count() {
  calls = calls + 1;
  return calls;
}`
	prog, err := Compile(MustParse("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	_, want := dotArgs(64)
	const goroutines = 12
	const callsPer = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst := prog.NewInstance()
			args, _ := dotArgs(64)
			for k := 0; k < callsPer; k++ {
				v, err := inst.Call("dot", args...)
				if err != nil {
					errs <- err
					return
				}
				if v.Float() != want {
					errs <- fmt.Errorf("dot = %g, want %g", v.Float(), want)
					return
				}
			}
			// Globals are per-instance: this session's counter counts
			// only its own calls.
			for k := int64(1); k <= 3; k++ {
				v, err := inst.Call("count")
				if err != nil || v.Int() != k {
					errs <- fmt.Errorf("count = %v (%v), want %d", v, err, k)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// spinSrc runs far past any reasonable budget so cancellation tests
// have something to interrupt.
const spinSrc = `
double spin() {
  double acc = 0.0;
  while (1) { acc += 1.0; }
  return acc;
}`

func TestCallContextCancelMidKernel(t *testing.T) {
	prog, err := Compile(MustParse("spin.c", spinSrc), WithMaxSteps(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = prog.NewInstance().CallContext(ctx, "spin")
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; checkpoints are not being polled", elapsed)
	}
}

func TestCallContextDeadline(t *testing.T) {
	prog, err := Compile(MustParse("spin.c", spinSrc), WithMaxSteps(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if _, err := prog.NewInstance().CallContext(ctx, "spin"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

func TestCallContextAlreadyCancelled(t *testing.T) {
	prog, err := Compile(MustParse("t.c", engineDotSrc))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	args, _ := dotArgs(4)
	inst := prog.NewInstance()
	if _, err := inst.CallContext(ctx, "dot", args...); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if inst.Steps() != 0 {
		t.Errorf("a pre-cancelled context must not execute anything (ran %d steps)", inst.Steps())
	}
	// The same instance stays usable with a live context afterwards.
	v, err := inst.CallContext(context.Background(), "dot", args...)
	if err != nil {
		t.Fatal(err)
	}
	if _, want := dotArgs(4); v.Float() != want {
		t.Errorf("dot = %g, want %g", v.Float(), want)
	}
}

// TestVariantsAgree compiles one source into every knob combination and
// requires identical results — the SOCRATES premise that variants trade
// speed, not semantics. The source includes a file-scope global so the
// walker backend's global support is exercised too.
func TestVariantsAgree(t *testing.T) {
	src := engineDotSrc + `
double bias = 0.5;
double biasedDot(int n, double a[n], double b[n]) {
  bias = bias * 2.0;
  return dot(n, a, b) + bias;
}`
	prog, err := Compile(MustParse("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Backend() != BackendCompiled || prog.OptLevel() != O2 {
		t.Fatalf("default variant = %s/%s, want compiled/O2", prog.Backend(), prog.OptLevel())
	}
	variants := []*Program{
		prog,
		mustVariant(t, prog, WithOptLevel(O3)),
		mustVariant(t, prog, WithOptLevel(O1)),
		mustVariant(t, prog, WithOptLevel(O0)),
		mustVariant(t, prog, WithBackend(BackendWalker)),
		mustVariant(t, prog, WithBackend(BackendBytecode), WithOptLevel(O3)),
	}
	_, want := dotArgs(16)
	for _, p := range variants {
		name := fmt.Sprintf("%s-%s", p.Backend(), p.OptLevel())
		inst := p.NewInstance()
		args, _ := dotArgs(16)
		v, err := inst.CallContext(context.Background(), "dot", args...)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if v.Float() != want {
			t.Errorf("%s: dot = %g, want %g", name, v.Float(), want)
		}
		// Globals behave identically on every backend: per-session
		// storage, persisting across calls (bias doubles each call).
		for k, wantBias := range []float64{1.0, 2.0} {
			args, _ := dotArgs(16)
			v, err := inst.CallContext(context.Background(), "biasedDot", args...)
			if err != nil {
				t.Errorf("%s: biasedDot: %v", name, err)
				break
			}
			if v.Float() != want+wantBias {
				t.Errorf("%s: biasedDot call %d = %g, want %g", name, k, v.Float(), want+wantBias)
			}
		}
	}
}

// TestWithOptLevelRejectsUnknown pins the option-validation contract:
// an out-of-range level is a diagnostic at Compile/Variant time, not a
// silent clamp to the nearest supported level.
func TestWithOptLevelRejectsUnknown(t *testing.T) {
	f := MustParse("opt.c", engineDotSrc)
	if _, err := Compile(f, WithOptLevel(OptLevel(7))); err == nil ||
		!strings.Contains(err.Error(), "unknown optimization level O7") {
		t.Errorf("Compile err = %v, want unknown-level diagnostic", err)
	}
	prog, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	_, verr := prog.Variant(WithOptLevel(maxOptLevel + 1))
	if verr == nil || !strings.Contains(verr.Error(), "unknown optimization level") {
		t.Errorf("Variant err = %v, want unknown-level diagnostic", verr)
	}
	var d *Diag
	if !errors.As(verr, &d) || !strings.Contains(verr.Error(), "opt.c") {
		t.Errorf("Variant err = %v, want a *Diag positioned at the translation unit", verr)
	}
	// Every supported level still works.
	for lvl := O0; lvl <= maxOptLevel; lvl++ {
		if _, err := prog.Variant(WithOptLevel(lvl)); err != nil {
			t.Errorf("Variant(%s): %v", lvl, err)
		}
	}
}

func TestWithMaxStepsOption(t *testing.T) {
	prog, err := Compile(MustParse("spin.c", spinSrc), WithMaxSteps(1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.NewInstance().Call("spin"); err == nil ||
		!strings.Contains(err.Error(), "step budget") {
		t.Errorf("err = %v, want step-budget fault from WithMaxSteps", err)
	}
	// Interps created from the program inherit the configured budget.
	if _, err := prog.NewInterp().Call("spin"); err == nil ||
		!strings.Contains(err.Error(), "step budget") {
		t.Errorf("Interp err = %v, want step-budget fault", err)
	}
	// Per-instance override.
	inst := prog.NewInstance()
	inst.SetMaxSteps(0) // restores DefaultMaxSteps; way more than 1000 spins
	done := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		inst.CallContext(ctx, "spin")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SetMaxSteps(0) instance neither finished nor honoured its context")
	}
}

// TestWalkerBackendContext proves the cancellation checkpoints reach
// the oracle backend too.
func TestWalkerBackendContext(t *testing.T) {
	prog, err := Compile(MustParse("spin.c", spinSrc),
		WithBackend(BackendWalker), WithMaxSteps(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if _, err := prog.NewInstance().CallContext(ctx, "spin"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestSteadyStateCallsAllocationFree pins the frame-pooling goal: after
// warm-up, repeated calls on one Instance allocate nothing.
func TestSteadyStateCallsAllocationFree(t *testing.T) {
	src := engineDotSrc + `
double wrap(int n, double a[n], double b[n]) { return dot(n, a, b) * 2.0; }`
	prog, err := Compile(MustParse("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.NewInstance()
	inst.SetMaxSteps(1 << 60)
	args, _ := dotArgs(32)
	// Warm the frame pools (entry frame + internal call frame).
	if _, err := inst.Call("wrap", args...); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := inst.Call("wrap", args...); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Call allocates %.1f objects/op, want 0", avg)
	}
	// The bytecode backend pools its register files with the frames, so
	// the same guarantee holds there.
	bp, err := prog.Variant(WithBackend(BackendBytecode), WithOptLevel(O3))
	if err != nil {
		t.Fatal(err)
	}
	binst := bp.NewInstance()
	binst.SetMaxSteps(1 << 60)
	if _, err := binst.Call("wrap", args...); err != nil {
		t.Fatal(err)
	}
	avg = testing.AllocsPerRun(50, func() {
		if _, err := binst.Call("wrap", args...); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("bytecode steady-state Call allocates %.1f objects/op, want 0", avg)
	}
}

// TestInstancePoolBudgetPerCheckout is the SetMaxSteps / pool
// interaction pin: budgets are per-Instance and per-checkout. A
// SetMaxSteps applied during one checkout must not leak into the next,
// and the step count accumulated by one checkout must not starve later
// ones — the two ways a shared pool could silently corrupt the
// runaway guard.
func TestInstancePoolBudgetPerCheckout(t *testing.T) {
	prog, err := Compile(MustParse("t.c", engineDotSrc), WithMaxSteps(5000))
	if err != nil {
		t.Fatal(err)
	}
	pool := prog.NewPool()
	args, want := dotArgs(32)

	// Checkout 1 shrinks its budget below one call's need and faults.
	inst := pool.Get()
	inst.SetMaxSteps(10)
	if _, err := inst.Call("dot", args...); err == nil {
		t.Fatal("10-step budget did not fault")
	}
	pool.Put(inst)

	// Checkout 2 gets the SAME object back with the program's budget
	// restored: the override must not leak.
	inst2 := pool.Get()
	if inst2 != inst {
		t.Fatal("pool did not recycle the instance")
	}
	if v, err := inst2.Call("dot", args...); err != nil {
		t.Fatalf("restored budget still faults: %v", err)
	} else if v.F != want {
		t.Fatalf("dot = %v, want %v", v.F, want)
	}
	pool.Put(inst2)

	// Many checkouts, each consuming a fair fraction of the budget:
	// without the per-checkout reset the accumulated steps would trip
	// the guard after a handful of cycles.
	for i := 0; i < 200; i++ {
		inst := pool.Get()
		if _, err := inst.Call("dot", args...); err != nil {
			t.Fatalf("checkout %d: accumulated steps leaked across the pool: %v", i, err)
		}
		pool.Put(inst)
	}

	// A foreign instance is dropped, not pooled.
	other, err := prog.Variant(WithOptLevel(O0))
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(other.NewInstance())
	if got := pool.Get(); got.prog != prog {
		t.Fatal("pool handed out an instance of a different program")
	}
}

// TestInstancePoolWalkerBackend: pooling works for the oracle backend
// too, including its budget restore.
func TestInstancePoolWalkerBackend(t *testing.T) {
	prog, err := Compile(MustParse("t.c", engineDotSrc),
		WithBackend(BackendWalker), WithMaxSteps(5000))
	if err != nil {
		t.Fatal(err)
	}
	pool := prog.NewPool()
	args, want := dotArgs(32)
	for i := 0; i < 50; i++ {
		inst := pool.Get()
		v, err := inst.Call("dot", args...)
		if err != nil {
			t.Fatalf("walker checkout %d: %v", i, err)
		}
		if v.F != want {
			t.Fatalf("walker checkout %d: dot = %v, want %v", i, v.F, want)
		}
		pool.Put(inst)
	}
}

// TestLastCallSteps pins the measurement tap: the per-call step count
// equals the Steps() delta, survives pooling, covers faulting calls,
// and agrees between backends (the step semantics are shared).
func TestLastCallSteps(t *testing.T) {
	prog, err := Compile(MustParse("t.c", engineDotSrc), WithMaxSteps(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.NewInstance()
	args, _ := dotArgs(32)
	before := inst.Steps()
	if _, err := inst.Call("dot", args...); err != nil {
		t.Fatal(err)
	}
	first := inst.LastCallSteps()
	if first <= 0 || first != inst.Steps()-before {
		t.Fatalf("LastCallSteps = %d, Steps delta = %d", first, inst.Steps()-before)
	}
	// Steps are deterministic: a second identical call costs the same.
	if _, err := inst.Call("dot", args...); err != nil {
		t.Fatal(err)
	}
	if inst.LastCallSteps() != first {
		t.Fatalf("second call cost %d steps, first cost %d", inst.LastCallSteps(), first)
	}
	// The walker charges identical step counts (bit-exact parity).
	wv, err := prog.Variant(WithBackend(BackendWalker))
	if err != nil {
		t.Fatal(err)
	}
	winst := wv.NewInstance()
	if _, err := winst.Call("dot", args...); err != nil {
		t.Fatal(err)
	}
	if winst.LastCallSteps() != first {
		t.Fatalf("walker call cost %d steps, compiled cost %d", winst.LastCallSteps(), first)
	}
	// And so does the bytecode backend, fused back edges included.
	bv, err := prog.Variant(WithBackend(BackendBytecode), WithOptLevel(O3))
	if err != nil {
		t.Fatal(err)
	}
	binst := bv.NewInstance()
	if _, err := binst.Call("dot", args...); err != nil {
		t.Fatal(err)
	}
	if binst.LastCallSteps() != first {
		t.Fatalf("bytecode call cost %d steps, compiled cost %d", binst.LastCallSteps(), first)
	}
	// A faulting call still reports the steps it executed on the way in.
	tight := prog.NewInstance()
	tight.SetMaxSteps(7)
	if _, err := tight.Call("dot", args...); err == nil {
		t.Fatal("7-step budget did not fault")
	}
	if got := tight.LastCallSteps(); got != tight.Steps() {
		t.Fatalf("faulting call: LastCallSteps = %d, Steps = %d", got, tight.Steps())
	}
	// A call rejected before execution (unknown function) reports zero,
	// not the previous call's count — and a pooled recycle clears the
	// tap too, so no checkout sees the prior tenant's measurement.
	if _, err := inst.Call("no_such_fn"); err == nil {
		t.Fatal("unknown function did not error")
	}
	if got := inst.LastCallSteps(); got != 0 {
		t.Fatalf("failed lookup: LastCallSteps = %d, want 0", got)
	}
	pool := prog.NewPool()
	if _, err := inst.Call("dot", args...); err != nil {
		t.Fatal(err)
	}
	pool.Put(inst)
	if got := pool.Get().LastCallSteps(); got != 0 {
		t.Fatalf("recycled checkout: LastCallSteps = %d, want 0", got)
	}
}
