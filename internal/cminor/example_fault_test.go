package cminor_test

import (
	"fmt"

	cm "socrates/internal/cminor"
)

// ExampleWithFaultInjector demonstrates the fault-containment pipeline
// end to end: a scripted injector panics inside the optimized backend
// on the second call, and with WithFallback enabled the caller still
// receives the correct result — the engine rolls the session state
// back and re-executes the call on the trusted reference tier, marking
// it degraded.
func ExampleWithFaultInjector() {
	file := cm.MustParse("demo.c", `
int calls;
int fib(int n) {
  calls = calls + 1;
  int a = 0;
  int b = 1;
  for (int i = 0; i < n; i++) { int t = a + b; a = b; b = t; }
  return a;
}
`)
	inj := cm.NewScriptedInjector(cm.FaultRule{
		Backend: cm.BackendCompiled, AnyOpt: true, Fn: "fib", Call: 2,
		Kind: cm.FaultPanic, Point: cm.FaultAtExit,
	})
	prog, err := cm.Compile(file,
		cm.WithOptLevel(cm.O3),
		cm.WithFaultInjector(inj),
		cm.WithFallback(true))
	if err != nil {
		panic(err)
	}
	inst := prog.NewInstance()
	for call := 1; call <= 3; call++ {
		v, err := inst.Call("fib", cm.IntV(10))
		if err != nil {
			panic(err)
		}
		fmt.Printf("call %d: fib(10)=%d degraded=%v\n", call, v.Int(), inst.LastCallDegraded())
	}
	calls, _ := inst.GlobalScalar("calls")
	fmt.Printf("calls=%d poisoned=%v\n", calls.Int(), inst.Poisoned())
	// Output:
	// call 1: fib(10)=55 degraded=false
	// call 2: fib(10)=55 degraded=true
	// call 3: fib(10)=55 degraded=false
	// calls=3 poisoned=false
}
