package cminor

import (
	"context"
	"fmt"
)

// ExampleCompile walks the engine API end to end: compile a kernel
// once, derive a de-optimized variant of the same source, and execute
// both through per-session Instances with context-aware calls.
func ExampleCompile() {
	f := MustParse("axpy.c", `
void axpy(int n, double alpha, double x[n], double y[n]) {
  int i;
  for (i = 0; i < n; i++) {
    y[i] = y[i] + alpha * x[i];
  }
}`)

	prog, err := Compile(f) // default variant: compiled backend, O2
	if err != nil {
		fmt.Println(err)
		return
	}
	o0, err := prog.Variant(WithOptLevel(O0)) // same source, generic lowering
	if err != nil {
		fmt.Println(err)
		return
	}

	ctx := context.Background()
	for _, p := range []*Program{prog, o0} {
		inst := p.NewInstance() // one lightweight session per goroutine
		x, y := NewArray(4), NewArray(4)
		for i := 0; i < 4; i++ {
			x.Set(float64(i), i)
			y.Set(1.0, i)
		}
		if _, err := inst.CallContext(ctx, "axpy", IntV(4), FloatV(2.0), x, y); err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: y = %v\n", p.OptLevel(), y.Data)
	}
	// Output:
	// O2: y = [1 3 5 7]
	// O0: y = [1 3 5 7]
}
