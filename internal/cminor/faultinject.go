package cminor

import (
	"fmt"
	"sync"
	"time"
)

// Deterministic fault injection: the test seam of the fault-containment
// layer (resilience.go). A FaultInjector decides, once per call on an
// injection-enabled variant, whether to sabotage that call — panic at a
// chosen point, corrupt the returned value, or add a latency spike — so
// the entire detect → contain → rollback → fallback → quarantine
// pipeline can be driven deterministically in tests, the same way the
// autotuner's simulations drive convergence with a fake clock. A
// production Program simply never sets WithFaultInjector; the injector
// check is a single nil comparison per call.

// FaultKind selects what an injected fault does to the call.
type FaultKind uint8

const (
	// FaultPanic raises a non-*Diag panic inside the call, at the
	// point selected by Fault.Point — exactly the signature of an
	// internal engine bug, so containment classifies it as an
	// InternalFault.
	FaultPanic FaultKind = iota
	// FaultWrongResult lets the call complete but corrupts the
	// returned Value — a silent miscompile, detectable only by
	// re-execution on the trusted backend (Instance.CallAudited).
	FaultWrongResult
	// FaultLatency lets the call complete correctly but sleeps for
	// Fault.Latency first — a tail-latency spike for driving the
	// autotuner's drift/winsorization machinery with real clocks.
	FaultLatency
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultWrongResult:
		return "wrong-result"
	case FaultLatency:
		return "latency"
	}
	return "panic"
}

// FaultPoint selects where inside the call a FaultPanic fires.
type FaultPoint uint8

const (
	// FaultAtEntry panics before the body executes: no state has been
	// mutated yet, the cheapest containment case.
	FaultAtEntry FaultPoint = iota
	// FaultAtExit panics after the body completed: globals and argument
	// arrays hold the attempt's full mutations, so rollback (not just
	// re-execution) is what keeps the caller's state correct.
	FaultAtExit
	// FaultAtPoll panics at the walker's next 16k-step cancellation
	// poll checkpoint — mid-kernel, racing the CallContext teardown
	// path. On backends without a poll it behaves like FaultAtExit.
	FaultAtPoll
)

// String names the point.
func (p FaultPoint) String() string {
	switch p {
	case FaultAtExit:
		return "exit"
	case FaultAtPoll:
		return "poll"
	}
	return "entry"
}

// Fault is one injection decision: what to do to the call it was
// returned for.
type Fault struct {
	Kind    FaultKind
	Point   FaultPoint    // FaultPanic only
	Latency time.Duration // FaultLatency only
}

// FaultInjector is consulted once at the entry of every Call /
// CallContext on a variant configured with WithFaultInjector. Returning
// nil leaves the call alone. Implementations must be safe for
// concurrent use: one injector is typically shared by every Instance
// of a variant (and, through the autotuner's passthrough, by every arm
// of a grid).
type FaultInjector interface {
	Decide(backend Backend, opt OptLevel, fn string) *Fault
}

// FaultRule is one trigger of a ScriptedInjector: it matches calls by
// (backend, opt level, function) and fires deterministically by the
// per-rule count of matching calls.
type FaultRule struct {
	Backend Backend
	Opt     OptLevel
	AnyOpt  bool   // match every opt level of Backend
	Fn      string // function name; "" matches every function
	// Call selects the Nth matching call (1-based) — the rule fires
	// exactly once, on that call. Call == 0 fires on every matching
	// call.
	Call    int64
	Kind    FaultKind
	Point   FaultPoint
	Latency time.Duration
}

func (r FaultRule) String() string {
	fn := r.Fn
	if fn == "" {
		fn = "*"
	}
	opt := r.Opt.String()
	if r.AnyOpt {
		opt = "O*"
	}
	return fmt.Sprintf("%s/%s/%s call=%d %s@%s", r.Backend, opt, fn, r.Call, r.Kind, r.Point)
}

// ScriptedInjector is the deterministic FaultInjector tests use: a
// fixed rule list, each rule counting its own matching calls, so the
// same call sequence always faults at the same places. Safe for
// concurrent use.
type ScriptedInjector struct {
	mu    sync.Mutex
	rules []FaultRule
	seen  []int64 // matching calls observed per rule
	fired []int64 // faults injected per rule
}

// NewScriptedInjector builds an injector over the given rules. Rules
// are evaluated in order; the first rule that fires wins the call.
func NewScriptedInjector(rules ...FaultRule) *ScriptedInjector {
	return &ScriptedInjector{
		rules: append([]FaultRule{}, rules...),
		seen:  make([]int64, len(rules)),
		fired: make([]int64, len(rules)),
	}
}

// Decide implements FaultInjector.
func (si *ScriptedInjector) Decide(backend Backend, opt OptLevel, fn string) *Fault {
	si.mu.Lock()
	defer si.mu.Unlock()
	var hit *Fault
	for i := range si.rules {
		r := &si.rules[i]
		if r.Backend != backend || (!r.AnyOpt && r.Opt != opt) || (r.Fn != "" && r.Fn != fn) {
			continue
		}
		si.seen[i]++
		if hit == nil && (r.Call == 0 || r.Call == si.seen[i]) {
			si.fired[i]++
			hit = &Fault{Kind: r.Kind, Point: r.Point, Latency: r.Latency}
		}
	}
	return hit
}

// Fired reports how many faults rule i has injected so far.
func (si *ScriptedInjector) Fired(i int) int64 {
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.fired[i]
}

// TotalFired reports the injector-wide injected-fault count.
func (si *ScriptedInjector) TotalFired() int64 {
	si.mu.Lock()
	defer si.mu.Unlock()
	var n int64
	for _, f := range si.fired {
		n += f
	}
	return n
}

// WithFaultInjector arms a variant with a fault injector: every Call /
// CallContext on its Instances consults inj once at entry and applies
// the returned Fault. nil disarms injection (the default). Variants
// derived with Program.Variant inherit the injector unless overridden;
// the trusted reference variant that fallback re-execution and audits
// run on is always injector-free.
func WithFaultInjector(inj FaultInjector) Option {
	return func(c *config) { c.inject = inj }
}

// injectedFault is the panic value FaultPanic raises. It is not a
// *Diag, so the containment boundary classifies it — like any
// unexpected panic inside an optimized backend — as an InternalFault.
type injectedFault struct {
	backend Backend
	opt     OptLevel
	fn      string
	point   FaultPoint
}

func (f *injectedFault) String() string {
	return fmt.Sprintf("injected panic at %s of %s [%s %s]", f.point, f.fn, f.backend, f.opt)
}
