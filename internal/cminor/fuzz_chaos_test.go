package cminor_test

import (
	"fmt"
	"math"
	"testing"

	. "socrates/internal/cminor"
)

// Chaos leg of the differential fuzz corpus: the same generated kernels
// as fuzz_diff_test.go, but every optimized run is sabotaged by an
// injected panic — at the worst possible point (after the body fully
// committed its global and argument-array mutations) and at entry —
// and must still be bit-identical to the untouched walker oracle:
// same returned value, same argument arrays, and same file-scope
// globals (gtick/gacc/gbuf, restored by snapshot rollback before the
// trusted-fallback re-execution).
func TestChaosInjectedFaultsStayBitExact(t *testing.T) {
	const corpus = 60
	type leg struct {
		name    string
		backend Backend
		point   FaultPoint
	}
	legs := []leg{
		{"compiled_exit", BackendCompiled, FaultAtExit},
		{"compiled_entry", BackendCompiled, FaultAtEntry},
		{"bytecode_exit", BackendBytecode, FaultAtExit},
		{"bytecode_entry", BackendBytecode, FaultAtEntry},
	}
	for seed := int64(0); seed < corpus; seed++ {
		src := generateDiffKernel(seed)
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			f, err := Parse(fmt.Sprintf("chaos%d.c", seed), src)
			if err != nil {
				t.Fatalf("unparsable kernel:\n%s\n%v", src, err)
			}
			w := NewWalker(f)
			w.MaxSteps = 1 << 30
			wArgs := diffArgs(8, seed)
			wv, werr := w.Call("k", wArgs...)
			if werr != nil {
				// Erroring kernels never reach the injection point; the
				// plain differential test already pins their error parity.
				return
			}
			for _, lg := range legs {
				inj := NewScriptedInjector(FaultRule{
					Backend: lg.backend, AnyOpt: true, Fn: "k", Call: 1,
					Kind: FaultPanic, Point: lg.point,
				})
				prog, perr := Compile(f,
					WithMaxSteps(1<<30),
					WithBackend(lg.backend), WithOptLevel(O3),
					WithFaultInjector(inj), WithFallback(true))
				if perr != nil {
					t.Fatalf("%s: Compile: %v", lg.name, perr)
				}
				inst := prog.NewInstance()
				args := diffArgs(8, seed)
				v, err := inst.Call("k", args...)
				if err != nil {
					t.Fatalf("%s: faulted call escaped containment on:\n%s\n%v", lg.name, src, err)
				}
				if inj.TotalFired() != 1 {
					t.Fatalf("%s: injector fired %d times, want 1", lg.name, inj.TotalFired())
				}
				if !inst.LastCallDegraded() || inst.LastCallFault() == nil {
					t.Fatalf("%s: fallback taps not set (degraded=%v fault=%v)",
						lg.name, inst.LastCallDegraded(), inst.LastCallFault())
				}
				if inst.Poisoned() {
					t.Fatalf("%s: session poisoned despite successful fallback", lg.name)
				}
				if !sameValue(wv, v) {
					t.Fatalf("%s: return divergence on:\n%s\nwalker=%+v got=%+v", lg.name, src, wv, v)
				}
				for i := 1; i < len(wArgs); i++ {
					wa, ga := wArgs[i].(*Array), args[i].(*Array)
					for k := range wa.Data {
						if math.Float64bits(wa.Data[k]) != math.Float64bits(ga.Data[k]) {
							t.Fatalf("%s: array %d diverges at flat index %d on:\n%s\nwalker=%g got=%g",
								lg.name, i, k, src, wa.Data[k], ga.Data[k])
						}
					}
				}
				// Globals: the rolled-back-then-re-executed session must hold
				// exactly one committed execution's worth of mutations,
				// bit-identical to the oracle's.
				for _, name := range []string{"gtick", "gacc"} {
					wg, ok1 := w.GlobalScalar(name)
					gg, ok2 := inst.GlobalScalar(name)
					if !ok1 || !ok2 {
						t.Fatalf("%s: global %s missing (%v, %v)", lg.name, name, ok1, ok2)
					}
					if !sameValue(wg, gg) {
						t.Fatalf("%s: global %s diverges on:\n%s\nwalker=%+v got=%+v",
							lg.name, name, src, wg, gg)
					}
				}
				wb, _ := w.GlobalArray("gbuf")
				gb, _ := inst.GlobalArray("gbuf")
				for k := range wb.Data {
					if math.Float64bits(wb.Data[k]) != math.Float64bits(gb.Data[k]) {
						t.Fatalf("%s: gbuf[%d] diverges on:\n%s\nwalker=%g got=%g",
							lg.name, k, src, wb.Data[k], gb.Data[k])
					}
				}
			}
			// Silent-miscompile leg: a wrong-result injection must be caught
			// by the audit and the caller must still see the oracle value.
			inj := NewScriptedInjector(FaultRule{
				Backend: BackendBytecode, AnyOpt: true, Fn: "k", Call: 1,
				Kind: FaultWrongResult,
			})
			prog, perr := Compile(f,
				WithMaxSteps(1<<30),
				WithBackend(BackendBytecode), WithOptLevel(O3),
				WithFaultInjector(inj), WithFallback(true))
			if perr != nil {
				t.Fatalf("audit leg: Compile: %v", perr)
			}
			inst := prog.NewInstance()
			args := diffArgs(8, seed)
			v, diverged, err := inst.CallAudited(t.Context(), "k", args...)
			if err != nil {
				t.Fatalf("audit leg: %v", err)
			}
			if !diverged {
				t.Fatalf("audit leg: wrong result not detected on:\n%s", src)
			}
			if !sameValue(wv, v) {
				t.Fatalf("audit leg: returned corrupt value on:\n%s\nwalker=%+v got=%+v", src, wv, v)
			}
		})
	}
}
