package cminor_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	// The corpus runs against every execution engine, including the
	// autotuner's routed path, so this file lives in the external test
	// package (cminor itself cannot import autotune).
	. "socrates/internal/cminor"
	"socrates/internal/cminor/autotune"
)

// Differential fuzz-style test: a deterministic generator produces a
// corpus of small kernels — mixed int/double arithmetic, nested counted
// loops (including shapes that hit and miss the loop optimizer's fast
// paths), compound assignments, casts, builtins, and stores that demote
// double variables to dynamic — and every program is run through both
// the tree-walking oracle and the optimized compiled pipeline. Results
// must be bit-identical: same returned Value and same bits in every
// array. This guards the typed specialization and the strength-reduced
// subscripts against silent numeric drift.

// diffGen generates one random kernel. Loop variables carry the index
// offsets that are provably in range for the loop bounds chosen, so
// generated programs never fault and array contents stay comparable.
type diffGen struct {
	rng *rand.Rand
	sb  strings.Builder
	// loopVars are the loop variables currently in scope, with
	// wide=true when the loop runs [1, n-1) so ±1 offsets are safe.
	loopVars []struct {
		name string
		wide bool
	}
}

func (g *diffGen) pick(opts ...string) string {
	return opts[g.rng.Intn(len(opts))]
}

// intExpr emits a side-effect-free int expression over in-scope ints.
func (g *diffGen) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprint(g.rng.Intn(10))
		case 1:
			return "n"
		case 2:
			return "s"
		default:
			if len(g.loopVars) > 0 {
				return g.loopVars[g.rng.Intn(len(g.loopVars))].name
			}
			return fmt.Sprint(g.rng.Intn(10))
		}
	}
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 3:
		// Constant divisors only: faults would end the comparison early.
		return fmt.Sprintf("(%s %% %d)", g.intExpr(depth-1), 1+g.rng.Intn(7))
	case 4:
		// User call with a statically-int result.
		return fmt.Sprintf("hint(%s)", g.intExpr(depth-1))
	default:
		return fmt.Sprintf("(%s / %d)", g.intExpr(depth-1), 1+g.rng.Intn(5))
	}
}

// index emits a subscript that is in range for every generated loop:
// a loop variable (±1 when its range allows), or a small invariant.
func (g *diffGen) index() string {
	if len(g.loopVars) > 0 && g.rng.Intn(4) != 0 {
		v := g.loopVars[g.rng.Intn(len(g.loopVars))]
		if v.wide {
			return g.pick(v.name, v.name+" - 1", v.name+" + 1", "1 + "+v.name)
		}
		return v.name
	}
	return g.pick("0", "1", "n - 1", "n / 2")
}

// floatExpr emits a side-effect-free double expression.
func (g *diffGen) floatExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(5) {
		case 0:
			return fmt.Sprintf("%g", float64(g.rng.Intn(40))*0.25)
		case 1:
			return "acc"
		case 2:
			return fmt.Sprintf("a[%s]", g.index())
		case 3:
			return fmt.Sprintf("b[%s][%s]", g.index(), g.index())
		default:
			return fmt.Sprintf("(double)(%s)", g.intExpr(depth-1))
		}
	}
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.floatExpr(depth-1), g.floatExpr(depth-1))
	case 3:
		return fmt.Sprintf("(%s / 2.5)", g.floatExpr(depth-1))
	case 4:
		return fmt.Sprintf("sqrt(fabs(%s))", g.floatExpr(depth-1))
	case 5:
		// hmix can return an int-kinded Value (its result kind demotes
		// to dynamic), exercising dyn call results in float positions.
		return fmt.Sprintf("(hmix(%s, %s) + 0.0)", g.intExpr(depth-1), g.floatExpr(depth-1))
	default:
		// Mixed arithmetic: int operand forces the dynamic-join paths.
		return fmt.Sprintf("(%s + %s)", g.floatExpr(depth-1), g.intExpr(depth-1))
	}
}

func (g *diffGen) stmt(indent string, depth int) {
	switch g.rng.Intn(10) {
	case 8:
		// Pointer escape: punch stores an int through the cell, so the
		// typechecker must demote acc (or keep s int) — and the stored
		// kind must match the walker bit-for-bit afterwards.
		fmt.Fprintf(&g.sb, "%spunch(&%s, %s);\n", indent,
			g.pick("acc", "s"), g.intExpr(1))
	case 9:
		fmt.Fprintf(&g.sb, "%sbump(&acc, %s);\n", indent, g.floatExpr(1))
	case 0:
		fmt.Fprintf(&g.sb, "%ss %s %s;\n", indent,
			g.pick("=", "+=", "-=", "*="), g.intExpr(2))
	case 1:
		fmt.Fprintf(&g.sb, "%sacc %s %s;\n", indent,
			g.pick("+=", "-=", "*="), g.floatExpr(2))
	case 2:
		// Plain int store into a double variable: demotes acc to the
		// dynamic kind and exercises the generic assignment path.
		fmt.Fprintf(&g.sb, "%sacc = %s;\n", indent, g.intExpr(2))
	case 3:
		fmt.Fprintf(&g.sb, "%sout[%s] %s %s;\n", indent, g.index(),
			g.pick("=", "+=", "*=", "/="), g.floatExpr(2))
	case 4:
		fmt.Fprintf(&g.sb, "%sb[%s][%s] %s %s;\n", indent, g.index(), g.index(),
			g.pick("=", "+=", "-=", "*="), g.floatExpr(2))
	case 5:
		fmt.Fprintf(&g.sb, "%sif (%s %s %s) {\n", indent, g.intExpr(1),
			g.pick("<", "<=", ">", "==", "!="), g.intExpr(1))
		g.stmt(indent+"  ", depth-1)
		fmt.Fprintf(&g.sb, "%s}\n", indent)
	case 6:
		fmt.Fprintf(&g.sb, "%sa[%s] %s %s;\n", indent, g.index(),
			g.pick("=", "+=", "-="), g.floatExpr(2))
	default:
		if depth > 0 {
			g.loop(indent, depth)
			return
		}
		fmt.Fprintf(&g.sb, "%sout[%s]++;\n", indent, g.index())
	}
}

func (g *diffGen) loop(indent string, depth int) {
	name := fmt.Sprintf("i%d", len(g.loopVars))
	wide := g.rng.Intn(2) == 0
	lo, hi := "0", "n"
	if wide {
		lo, hi = "1", "n - 1"
	}
	// Mix post shapes so both the recognized counted forms and the
	// generic loop compile path stay covered.
	post := g.pick(name+"++", name+" += 1", name+" = "+name+" + 1")
	fmt.Fprintf(&g.sb, "%sfor (%s = %s; %s < %s; %s) {\n",
		indent, name, lo, name, hi, post)
	g.loopVars = append(g.loopVars, struct {
		name string
		wide bool
	}{name, wide})
	for k := 0; k <= g.rng.Intn(3); k++ {
		g.stmt(indent+"  ", depth-1)
	}
	g.loopVars = g.loopVars[:len(g.loopVars)-1]
	fmt.Fprintf(&g.sb, "%s}\n", indent)
}

// generate returns the source of one random kernel, preceded by helper
// functions that exercise cross-function inference: hint has a stable
// int result, hmix may fall off one branch with an int return (its
// result kind demotes to dynamic), and punch/bump write through pointer
// parameters (escape demotion).
func generateDiffKernel(seed int64) string {
	g := &diffGen{rng: rand.New(rand.NewSource(seed))}
	// File-scope state: every kernel updates the globals from its
	// computed results, so the rollback machinery of the fault-injection
	// leg (fuzz_chaos_test.go) has real mutable global state to restore
	// bit-exactly. The globals are pure sinks — they never feed the
	// return value or the argument arrays — so the no-fault differential
	// comparisons below are unaffected by per-instance global histories
	// (the tuner-routed rounds run on pooled instances whose globals
	// persist across checkouts).
	g.sb.WriteString("int gtick;\ndouble gacc;\ndouble gbuf[8];\n")
	fmt.Fprintf(&g.sb, "int hint(int p) { return (p * %d + %d) %% %d; }\n",
		1+g.rng.Intn(5), g.rng.Intn(7), 1+g.rng.Intn(9))
	fmt.Fprintf(&g.sb,
		"double hmix(int p, double q) {\n  if (p > %d) { return p; }\n  return q * %g;\n}\n",
		g.rng.Intn(6), 0.25*float64(1+g.rng.Intn(8)))
	g.sb.WriteString("void punch(double *p, int v) { p = v; }\n")
	g.sb.WriteString("void bump(double *p, double d) { p = p + d; }\n")
	g.sb.WriteString("double k(int n, double a[n], double b[n][n], double out[n]) {\n")
	g.sb.WriteString("  int i0; int i1; int i2;\n")
	fmt.Fprintf(&g.sb, "  int s = %s;\n", g.intExpr(1))
	fmt.Fprintf(&g.sb, "  double acc = %s;\n", g.floatExpr(1))
	g.sb.WriteString("  gtick = gtick + 1;\n")
	for k := 0; k <= g.rng.Intn(3); k++ {
		g.loop("  ", 2+g.rng.Intn(2))
	}
	g.sb.WriteString("  gacc = gacc + acc + s;\n")
	g.sb.WriteString("  gbuf[0] = gacc;\n")
	g.sb.WriteString("  gbuf[n - 1] = gbuf[n - 1] + acc;\n")
	g.sb.WriteString("  return acc + s;\n}\n")
	return g.sb.String()
}

func diffArgs(n int, seed int64) []any {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	a, b, out := NewArray(n), NewArray(n, n), NewArray(n)
	for i := range a.Data {
		a.Data[i] = float64(rng.Intn(100)) * 0.125
	}
	for i := range b.Data {
		b.Data[i] = float64(rng.Intn(100)) * 0.375
	}
	for i := range out.Data {
		out.Data[i] = float64(rng.Intn(100)) * 0.0625
	}
	return []any{IntV(int64(n)), a, b, out}
}

// sameValue mirrors the in-package helper (this file is external so it
// can route the corpus through the autotuner).
func sameValue(a, b Value) bool {
	if a.IsInt != b.IsInt {
		return false
	}
	if a.IsInt {
		return a.I == b.I
	}
	return math.Float64bits(a.F) == math.Float64bits(b.F)
}

func TestDifferentialGeneratedKernels(t *testing.T) {
	const corpus = 60
	for seed := int64(0); seed < corpus; seed++ {
		src := generateDiffKernel(seed)
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			f, err := Parse(fmt.Sprintf("gen%d.c", seed), src)
			if err != nil {
				t.Fatalf("generator produced an unparsable kernel:\n%s\n%v", src, err)
			}
			w := NewWalker(f)
			in := NewInterp(f)
			w.MaxSteps = 1 << 30
			in.MaxSteps = 1 << 30
			// The engine path proper: a pooled Instance driven through
			// CallContext, so the wrapper and the new API are both pinned
			// to the oracle on every seed. Some generated kernels are
			// unresolvable (e.g. a variable used in its own initializer);
			// eager Compile reports that up front, the other two engines
			// at their first Call — all three must agree it's an error.
			prog, perr := Compile(f, WithMaxSteps(1<<30))
			wArgs, cArgs, iArgs := diffArgs(8, seed), diffArgs(8, seed), diffArgs(8, seed)
			wv, werr := w.Call("k", wArgs...)
			cv, cerr := in.Call("k", cArgs...)
			if perr != nil {
				if werr == nil || cerr == nil {
					t.Fatalf("Compile rejected what an engine ran on:\n%s\ncompile=%v walker=%v interp=%v",
						src, perr, werr, cerr)
				}
				return
			}
			inst := prog.NewInstance()
			iv, ierr := inst.CallContext(context.Background(), "k", iArgs...)
			if (werr == nil) != (cerr == nil) || (werr == nil) != (ierr == nil) {
				t.Fatalf("error divergence on:\n%s\nwalker=%v compiled=%v instance=%v",
					src, werr, cerr, ierr)
			}
			// The full opt-level axis: every variant from the generic
			// closures up through the O3 inliner/BCE/unroller must be
			// bit-identical to the oracle, faults included. The generated
			// helper calls (hint/hmix/punch/bump) are all inline
			// candidates, so O3 exercises slot relocation on every seed.
			type variantRun struct {
				name string
				args []any
				v    Value
				err  error
			}
			var variants []variantRun
			for _, lvl := range []OptLevel{O0, O1, O3} {
				vp, verr := prog.Variant(WithOptLevel(lvl))
				if verr != nil {
					t.Fatalf("Variant(%s): %v", lvl, verr)
				}
				args := diffArgs(8, seed)
				v, err := vp.NewInstance().Call("k", args...)
				variants = append(variants, variantRun{lvl.String(), args, v, err})
			}
			// The flat-bytecode backend: lowered functions run the
			// register-machine dispatch loop, bailed ones their closure
			// fallback — both must match the oracle bit for bit, and the
			// step counter must agree exactly (the fused back edge and
			// superinstruction charges are the risky part).
			bp, bperr := prog.Variant(WithBackend(BackendBytecode), WithOptLevel(O3))
			if bperr != nil {
				t.Fatalf("Variant(bytecode): %v", bperr)
			}
			bArgs := diffArgs(8, seed)
			bi := bp.NewInstance()
			bv, berr := bi.Call("k", bArgs...)
			variants = append(variants, variantRun{"bytecode", bArgs, bv, berr})
			if werr == nil && berr == nil && bi.LastCallSteps() != w.Steps {
				t.Fatalf("bytecode step divergence on:\n%s\nwalker=%d bytecode=%d",
					src, w.Steps, bi.LastCallSteps())
			}
			for _, vr := range variants {
				if (werr == nil) != (vr.err == nil) {
					t.Fatalf("%s error divergence on:\n%s\nwalker=%v variant=%v",
						vr.name, src, werr, vr.err)
				}
			}
			// The tuner-routed path: the same seed driven through the
			// autotuner with an aggressive exploration rate, so successive
			// calls land on different variants of the grid — every one must
			// stay bit-exact with the walker, error outcomes included.
			tn, tnerr := autotune.New(prog,
				autotune.WithMinSamples(1),
				autotune.WithEpsilon(0.5),
				autotune.WithSeed(uint64(seed)+1))
			if tnerr != nil {
				t.Fatalf("autotune.New: %v", tnerr)
			}
			for round := 0; round < 6; round++ {
				targs := diffArgs(8, seed)
				tv, terr := tn.Call("k", targs...)
				if (werr == nil) != (terr == nil) {
					t.Fatalf("tuner round %d error divergence on:\n%s\nwalker=%v tuner=%v",
						round, src, werr, terr)
				}
				if werr != nil {
					continue
				}
				if !sameValue(wv, tv) {
					t.Fatalf("tuner round %d return divergence on:\n%s\nwalker=%+v tuner=%+v",
						round, src, wv, tv)
				}
				for i := 1; i < len(wArgs); i++ {
					wa, ta := wArgs[i].(*Array), targs[i].(*Array)
					for k := range wa.Data {
						if math.Float64bits(wa.Data[k]) != math.Float64bits(ta.Data[k]) {
							t.Fatalf("tuner round %d array %d diverges at flat index %d on:\n%s\nwalker=%g tuner=%g",
								round, i, k, src, wa.Data[k], ta.Data[k])
						}
					}
				}
			}
			if werr != nil {
				return
			}
			if !sameValue(wv, cv) || !sameValue(wv, iv) {
				t.Fatalf("return divergence on:\n%s\nwalker=%+v compiled=%+v instance=%+v",
					src, wv, cv, iv)
			}
			for _, vr := range variants {
				if !sameValue(wv, vr.v) {
					t.Fatalf("%s return divergence on:\n%s\nwalker=%+v variant=%+v",
						vr.name, src, wv, vr.v)
				}
			}
			for i := 1; i < len(wArgs); i++ {
				wa, ca, ia := wArgs[i].(*Array), cArgs[i].(*Array), iArgs[i].(*Array)
				for k := range wa.Data {
					if math.Float64bits(wa.Data[k]) != math.Float64bits(ca.Data[k]) {
						t.Fatalf("array %d diverges at flat index %d on:\n%s\nwalker=%g compiled=%g",
							i, k, src, wa.Data[k], ca.Data[k])
					}
					if math.Float64bits(wa.Data[k]) != math.Float64bits(ia.Data[k]) {
						t.Fatalf("array %d diverges at flat index %d on:\n%s\nwalker=%g instance=%g",
							i, k, src, wa.Data[k], ia.Data[k])
					}
					for _, vr := range variants {
						va := vr.args[i].(*Array)
						if math.Float64bits(wa.Data[k]) != math.Float64bits(va.Data[k]) {
							t.Fatalf("%s array %d diverges at flat index %d on:\n%s\nwalker=%g variant=%g",
								vr.name, i, k, src, wa.Data[k], va.Data[k])
						}
					}
				}
			}
		})
	}
}
