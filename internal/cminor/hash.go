package cminor

import "hash/fnv"

// Content hashing of resolved programs. Persistence layers key
// learned-at-runtime state (tuned variant tables, compiled artifacts)
// by what the program IS, not what file it came from: a cache entry
// must survive a rename and die on an edit. The hash is computed over
// the printer's canonical rendering of the resolved AST, so two
// programs parse-equal up to whitespace and comments hash identically,
// and any semantic edit — a changed bound, a reordered statement —
// produces a new identity.

// SourceHash returns a 64-bit content hash of the program's source as
// canonically re-printed from its AST. Every variant of one Program
// (Variant shares the resolved front end) reports the same hash: the
// hash names the source, and the variant knobs are the consumer's to
// mix in on top.
func (p *Program) SourceHash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(Print(p.res.File)))
	return h.Sum64()
}
