package cminor

import "testing"

// TestSourceHash pins the content-identity contract the persistence
// layers key on: formatting-only differences hash identically (the hash
// is over the canonical re-print, and the file name plays no part),
// any semantic edit changes the hash, and every variant of one program
// shares its base's hash.
func TestSourceHash(t *testing.T) {
	const src = `
double sq(double x) { return x * x; }
double probe(int n, double a[n]) {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < n; i++) {
    s = s + sq(a[i]);
  }
  return s;
}
`
	// The same program, reformatted and commented.
	const reformatted = `
/* squares, but prettier */
double sq( double x ) {
	return x*x;   // the whole function
}
double probe(int n, double a[n]) {
	int i; double s;
	s = 0.0;
	for (i = 0; i < n; i++) { s = s + sq(a[i]); }
	return s;
}
`
	// One semantic edit: the accumulator seeds at 1.0.
	const edited = `
double sq(double x) { return x * x; }
double probe(int n, double a[n]) {
  int i;
  double s;
  s = 1.0;
  for (i = 0; i < n; i++) {
    s = s + sq(a[i]);
  }
  return s;
}
`
	compile := func(name, text string) *Program {
		p, err := Compile(MustParse(name, text))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := compile("kernel.c", src)
	h := base.SourceHash()
	if h == 0 {
		t.Fatal("zero hash")
	}
	if got := compile("kernel.c", src).SourceHash(); got != h {
		t.Fatalf("recompile changed the hash: %016x vs %016x", got, h)
	}
	if got := compile("renamed.c", reformatted).SourceHash(); got != h {
		t.Fatalf("formatting/name changed the hash: %016x vs %016x", got, h)
	}
	if got := compile("kernel.c", edited).SourceHash(); got == h {
		t.Fatal("a semantic edit kept the hash")
	}
	v, err := base.Variant(WithOptLevel(O3))
	if err != nil {
		t.Fatal(err)
	}
	if got := v.SourceHash(); got != h {
		t.Fatalf("variant hash %016x diverged from base %016x: the hash names the source, not the knobs", got, h)
	}
}
