package cminor

// The inliner is the first of the O3 passes: call sites whose callee is
// a small, call-free leaf function are spliced into the caller at
// compile time. Because the AST is immutable (and shared between
// variants), nothing is cloned or rewritten — instead each inlined call
// site gets a fresh block of slots appended to the caller's frame, and
// the callee's body is lowered a second time with its slot references
// relocated into that block. By-value parameter semantics fall out of
// the renumbering: the callee's scalars live in their own slots, so
// writes to them never reach the caller's variables, exactly as with a
// real call frame. Pointer (cell) and array parameters bind the
// caller's storage, as the ordinary call binders do.
//
// Inlining also feeds the loop optimizer: a counted-loop body whose
// only calls are inlined no longer defeats the "call-free body" rule —
// analyzeLoopBody descends into the callee with the same relocation and
// accounts for everything it can touch, so bodies with small helper
// calls now reach the native-loop fast path.
//
// Step accounting and fault behaviour are preserved bit-for-bit: the
// inlined body charges exactly the statements the called body would,
// return statements terminate only the inlined region, and the caller's
// pending return value is saved around it.

// inlineMaxNodes is the callee size budget: bodies with more AST nodes
// than this stay ordinary calls. Small accessors and arithmetic helpers
// fit comfortably; anything loop-heavy is left alone (it amortizes its
// own call overhead).
const inlineMaxNodes = 64

// inlineSite is one planned splice: which callee, and where its three
// slot classes land in the caller's frame.
type inlineSite struct {
	callee    *FuncInfo
	scalarOff int
	cellOff   int
	arrayOff  int
}

// apply relocates a callee-frame slot reference into the caller's
// frame. Global references are frame-independent and pass through. A
// nil site is the identity (no inlined body active).
func (s *inlineSite) apply(ref VarRef) VarRef {
	if s == nil {
		return ref
	}
	switch ref.Kind {
	case VarScalar:
		ref.Slot += s.scalarOff
	case VarCell:
		ref.Slot += s.cellOff
	case VarArray:
		ref.Slot += s.arrayOff
	}
	return ref
}

// inlinePlan is one caller's inlining decisions: the sites keyed by
// CallExpr NodeID, the grown frame sizes, and the caller's typecheck
// table extended over the relocated callee slots.
type inlinePlan struct {
	sites      map[NodeID]*inlineSite
	numScalars int
	numCells   int
	numArrays  int
	types      *fnTypes
}

// inlinable reports whether fn qualifies as an inline callee: a leaf
// (no user calls anywhere in the body — builtins are fine) within the
// node budget. Both facts come from the resolver's body summary.
func inlinable(fn *FuncInfo) bool {
	return fn.UserCalls == 0 && fn.BodyNodes <= inlineMaxNodes
}

// planInlining decides, for every function in res, which of its call
// sites are inlined, and lays out a fresh slot block per site. It reads
// the shared resolve/typecheck results and writes only new structures,
// so concurrent lowerings of the same front end stay race-free.
func planInlining(res *ResolvedFile, ti *typeInfo) map[string]*inlinePlan {
	candidates := map[string]*FuncInfo{}
	for name, fi := range res.Funcs {
		if inlinable(fi) {
			candidates[name] = fi
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	plans := map[string]*inlinePlan{}
	for name, fi := range res.Funcs {
		if fi.UserCalls == 0 {
			continue // nothing to inline into a leaf
		}
		pl := &inlinePlan{
			sites:      map[NodeID]*inlineSite{},
			numScalars: fi.NumScalars,
			numCells:   fi.NumCells,
			numArrays:  fi.NumArrays,
		}
		merged := map[string]bool{}
		var ft *fnTypes
		Walk(fi.Decl.Body, func(n Node) bool {
			call, ok := n.(*CallExpr)
			if !ok || res.builtins[call.ID] {
				return true
			}
			callee := candidates[call.Fun]
			if callee == nil {
				return true
			}
			if ft == nil {
				// First site: fork the caller's type tables so the shared
				// typeInfo is never written.
				ft = ti.funcs[name].fork()
			}
			pl.sites[call.ID] = &inlineSite{
				callee:    callee,
				scalarOff: pl.numScalars,
				cellOff:   pl.numCells,
				arrayOff:  pl.numArrays,
			}
			// The relocated scalar slots carry the callee's inferred kinds;
			// expression kinds are shared by every site of one callee.
			calleeFT := ti.funcs[call.Fun]
			ft.scalars = append(ft.scalars, calleeFT.scalars...)
			if !merged[call.Fun] {
				merged[call.Fun] = true
				for e, k := range calleeFT.expr {
					ft.expr[e] = k
				}
			}
			pl.numScalars += callee.NumScalars
			pl.numCells += callee.NumCells
			pl.numArrays += callee.NumArrays
			return true
		})
		if len(pl.sites) == 0 {
			continue
		}
		pl.types = ft
		plans[name] = pl
	}
	return plans
}

// siteFor returns the inlining decision for a call site (nil when the
// call stays a call). Inlined callees are leaves, so no site is ever
// looked up while a relocation is already active.
func (c *compiler) siteFor(e *CallExpr) *inlineSite {
	if c.plan == nil {
		return nil
	}
	return c.plan.sites[e.ID]
}

// inlineCall lowers a planned call site: argument binders evaluate in
// the caller's context and write the relocated parameter slots, then
// the callee's body — compiled against the caller's frame layout — runs
// in place. The caller's pending return value is saved around the
// splice so a caller that falls off its end still yields the zero
// Value, and the callee's flowReturn never escapes the site.
func (c *compiler) inlineCall(e *CallExpr, site *inlineSite) evalFn {
	fi := site.callee
	binders := make([]func(fr *frame), len(e.Args))
	for i, a := range e.Args {
		p := fi.Decl.Params[i]
		ref := site.apply(fi.Params[i])
		slot := ref.Slot
		switch ref.Kind {
		case VarArray:
			id, _ := stripArg(a)
			if id == nil {
				c.bug(a.Pos(), "array argument is not a variable")
			}
			src := c.arrayRef(id)
			binders[i] = func(fr *frame) { fr.arrays[slot] = src(fr) }
		case VarCell:
			id, _ := stripArg(a)
			if id == nil {
				c.bug(a.Pos(), "pointer argument is not a variable")
			}
			src := c.cellRef(id)
			binders[i] = func(fr *frame) { fr.cells[slot] = src(fr) }
		default:
			// By-value scalars normalize to the declared parameter kind,
			// exactly like the out-of-line internal call binders.
			if p.Type.Kind == Int {
				v := c.asInt(a)
				binders[i] = func(fr *frame) { fr.scalars[slot] = IntV(v(fr)) }
			} else {
				v := c.asFloat(a)
				binders[i] = func(fr *frame) { fr.scalars[slot] = FloatV(v(fr)) }
			}
		}
	}
	saved := c.remap
	c.remap = site
	body := c.block(fi.Decl.Body)
	c.remap = saved
	return func(fr *frame) Value {
		for _, bind := range binders {
			bind(fr)
		}
		outer := fr.ret
		fr.ret = Value{}
		body(fr)
		ret := fr.ret
		fr.ret = outer
		return ret
	}
}

// markInlinedCall accounts an inlined call site into a counted loop's
// modification sets: parameter binds rewrite the relocated slots every
// iteration, cell arguments expose the argument variable to writes from
// the callee, and the callee body is analysed like inline code (with
// relocation active). Used by analyzeLoopBody, which previously had to
// reject any body containing a user call.
func (c *compiler) markInlinedCall(lc *loopCtx, e *CallExpr, site *inlineSite, visit func(Node) bool) {
	fi := site.callee
	for i, pref := range fi.Params {
		ref := site.apply(pref)
		switch ref.Kind {
		case VarScalar:
			lc.modScalars[ref.Slot] = true
		case VarArray:
			// The slot is rebound at every call, like a per-iteration
			// declaration: accesses through it must not hoist.
			lc.declArrays[ref.Slot] = true
		case VarCell:
			// The callee may store through the cell: whatever variable the
			// caller passed is no longer invariant.
			if id, _ := stripArg(e.Args[i]); id != nil {
				c.markWrite(lc, id)
			} else {
				lc.writesCells = true
			}
		}
	}
	// Argument expressions run in caller context (they may themselves
	// contain assignments); the callee body is walked with its slots
	// relocated so its writes land in the right sets.
	for _, a := range e.Args {
		Walk(a, visit)
	}
	savedRemap := c.remap
	c.remap = site
	Walk(fi.Decl.Body, visit)
	c.remap = savedRemap
}
