package cminor

import (
	"strings"
	"testing"
)

// o3Prog compiles src at O3 or fails the test.
func o3Prog(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Compile(MustParse("t.c", src), WithOptLevel(O3))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// planFor resolves src and returns the O3 inline plan of one function
// (nil when nothing was inlined into it).
func planFor(t *testing.T, src, fn string) *inlinePlan {
	t.Helper()
	res, err := Resolve(MustParse("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	return planInlining(res, typecheck(res))[fn]
}

func TestInlinePlanEligibility(t *testing.T) {
	// sq is a small leaf: inlined. big is over the node budget. chain
	// calls another user function: not a leaf. loop calls itself: not a
	// leaf (recursion).
	var sb strings.Builder
	sb.WriteString("double sq(double x) { return x * x; }\n")
	sb.WriteString("double big(double x) {\n")
	for i := 0; i < 40; i++ {
		sb.WriteString("  x = x + 1.0;\n")
	}
	sb.WriteString("  return x;\n}\n")
	sb.WriteString("double chain(double x) { return sq(x) + 1.0; }\n")
	sb.WriteString("double loop(double x) { if (x > 0.0) { return loop(x - 1.0); } return x; }\n")
	sb.WriteString("double f(double x) { return sq(x) + big(x) + chain(x) + loop(x); }\n")
	src := sb.String()

	pl := planFor(t, src, "f")
	if pl == nil {
		t.Fatal("expected an inline plan for f (sq is a leaf under budget)")
	}
	got := map[string]int{}
	for _, site := range pl.sites {
		got[site.callee.Decl.Name]++
	}
	if got["sq"] != 1 || got["big"] != 0 || got["loop"] != 0 {
		t.Errorf("inlined callees = %v, want exactly the one sq site", got)
	}
	// chain itself receives its sq call as a site.
	if cpl := planFor(t, src, "chain"); cpl == nil || len(cpl.sites) != 1 {
		t.Errorf("chain should inline its sq call, plan = %+v", cpl)
	}
	// Semantics stay put regardless of which calls were inlined.
	diffCheck(t, "eligibility", src, "f", func() []any { return []any{FloatV(3.0)} })
}

// TestInlineSlotRenumbering pins the frame layout contract: the inlined
// callee's params and locals live in fresh slots appended to the
// caller's frame, so caller variables survive the splice bit-for-bit.
func TestInlineSlotRenumbering(t *testing.T) {
	src := `
double addmul(double a, double b) {
  double t = a * b;
  a = a + t;
  return a;
}
double f(double x, double y) {
  double u = 2.0;
  double v = 3.0;
  double r = addmul(u + x, v + y);
  return r * 10000.0 + u * 100.0 + v;
}`
	pl := planFor(t, src, "f")
	if pl == nil || len(pl.sites) != 1 {
		t.Fatalf("expected one inline site in f, plan = %+v", pl)
	}
	res, _ := Resolve(MustParse("t.c", src))
	caller := res.Funcs["f"]
	callee := res.Funcs["addmul"]
	for _, site := range pl.sites {
		if site.scalarOff != caller.NumScalars {
			t.Errorf("scalar offset = %d, want %d (first slot past the caller's)",
				site.scalarOff, caller.NumScalars)
		}
	}
	if pl.numScalars != caller.NumScalars+callee.NumScalars {
		t.Errorf("grown frame = %d scalars, want %d", pl.numScalars,
			caller.NumScalars+callee.NumScalars)
	}
	// addmul(1+2=3... a=3, b=6, t=18, a=21) → r=21; u and v untouched.
	v, err := o3Prog(t, src).NewInstance().Call("f", FloatV(1.0), FloatV(3.0))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 21.0*10000+2.0*100+3.0 {
		t.Errorf("f = %g, want 210203", v.Float())
	}
	diffCheck(t, "renumbering", src, "f", func() []any { return []any{FloatV(1.0), FloatV(3.0)} })
}

// TestInlineByValueCopySemantics: assignments to a by-value parameter
// inside the inlined body must not reach the caller's argument.
func TestInlineByValueCopySemantics(t *testing.T) {
	src := `
double clobber(double a) {
  a = a + 100.0;
  return a;
}
double f() {
  double x = 1.0;
  double r = clobber(x);
  return x * 1000.0 + r;
}`
	v, err := o3Prog(t, src).NewInstance().Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 1101.0 {
		t.Errorf("f = %g, want 1101 (x must stay 1)", v.Float())
	}
	diffCheck(t, "byvalue", src, "f", func() []any { return nil })
}

// TestInlinePointerParam: stores through an inlined pointer parameter
// still reach the caller's variable.
func TestInlinePointerParam(t *testing.T) {
	src := `
void bump(double *p, double d) { p = p + d; }
double f() {
  double x = 40.0;
  bump(&x, 2.0);
  return x;
}`
	if pl := planFor(t, src, "f"); pl == nil || len(pl.sites) != 1 {
		t.Fatalf("bump should be inlined into f, plan = %+v", pl)
	}
	v, err := o3Prog(t, src).NewInstance().Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 42.0 {
		t.Errorf("f = %g, want 42", v.Float())
	}
	diffCheck(t, "ptrparam", src, "f", func() []any { return nil })
}

// TestInlineCallerFallsOffEnd: the caller's pending return value is
// saved around the splice — a caller that falls off its end must yield
// the zero Value even though the inlined callee wrote a return value.
func TestInlineCallerFallsOffEnd(t *testing.T) {
	src := `
double helper(double x) {
  if (x > 0.0) { return 5.0; }
  return 2.0;
}
double g() { helper(1.0); }`
	v, err := o3Prog(t, src).NewInstance().Call("g")
	if err != nil {
		t.Fatal(err)
	}
	if v.IsInt || v.F != 0.0 {
		t.Errorf("g = %+v, want the zero Value (callee's return must not leak)", v)
	}
	diffCheck(t, "falloff", src, "g", func() []any { return nil })
}

// TestInlineUnlocksCountedLoop: a loop body whose only call is inlined
// reaches the counted-loop fast path — pinned by the strength-reduction
// hoists that only the counted loop registers.
func TestInlineUnlocksCountedLoop(t *testing.T) {
	src := `
double sq(double x) { return x * x; }
double f(int n, double a[n]) {
  int i;
  double s = 0.0;
  for (i = 0; i < n; i++) {
    s = s + sq(a[i]);
  }
  return s;
}`
	o2 := func() *Program {
		p, err := Compile(MustParse("t.c", src))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}()
	o3 := o3Prog(t, src)
	if got := o2.funcs["f"].numHoist; got != 0 {
		t.Errorf("O2 registered %d hoists; the call should have blocked the counted loop", got)
	}
	if got := o3.funcs["f"].numHoist; got == 0 {
		t.Error("O3 registered no hoists; inlining failed to unlock the counted loop")
	}
	mk := func() []any {
		a := NewArray(9)
		for i := range a.Data {
			a.Data[i] = float64(i) * 0.75
		}
		return []any{IntV(9), a}
	}
	diffCheck(t, "unlock", src, "f", mk)
	args := mk()
	v, err := o3.NewInstance().Call("f", args...)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < 9; i++ {
		x := float64(i) * 0.75
		want += x * x
	}
	if v.Float() != want {
		t.Errorf("f = %g, want %g", v.Float(), want)
	}
}

// TestInlineStepParity: inlining must charge exactly the statements the
// out-of-line call would, so step budgets fault identically on every
// variant.
func TestInlineStepParity(t *testing.T) {
	src := `
double sq(double x) { double t = x * x; return t; }
double f(int n) {
  int i;
  double s = 0.0;
  for (i = 0; i < n; i++) {
    s = s + sq((double)i);
  }
  return s;
}`
	prog, err := Compile(MustParse("t.c", src), WithOptLevel(O0))
	if err != nil {
		t.Fatal(err)
	}
	steps := map[string]int{}
	for _, lvl := range []OptLevel{O0, O1, O2, O3} {
		vp, err := prog.Variant(WithOptLevel(lvl))
		if err != nil {
			t.Fatal(err)
		}
		inst := vp.NewInstance()
		if _, err := inst.Call("f", IntV(50)); err != nil {
			t.Fatal(err)
		}
		steps[lvl.String()] = inst.Steps()
	}
	for lvl, n := range steps {
		if n != steps["O0"] {
			t.Errorf("step divergence: %s ran %d steps, O0 ran %d", lvl, n, steps["O0"])
		}
	}
	// And the walker agrees, so budget faults stay bit-exact too.
	w := NewWalker(MustParse("t.c", src))
	if _, err := w.Call("f", IntV(50)); err != nil {
		t.Fatal(err)
	}
	if w.Steps != steps["O0"] {
		t.Errorf("walker ran %d steps, compiled ran %d", w.Steps, steps["O0"])
	}
}

// TestO3SteadyStateAllocFree extends the frame-pooling contract to O3:
// inlined calls, range proofs and the unrolled store loop must add no
// per-call allocations.
func TestO3SteadyStateAllocFree(t *testing.T) {
	src := `
double sq(double x) { return x * x; }
double f(int n, double a[n]) {
  int i;
  double s = 0.0;
  for (i = 0; i < n; i++) { s = s + sq(a[i]); }
  return s;
}`
	prog, err := Compile(MustParse("t.c", src), WithOptLevel(O3))
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.NewInstance()
	inst.SetMaxSteps(1 << 60)
	args := []any{IntV(64), NewArray(64)} // built once: arg boxing is the caller's
	if _, err := inst.Call("f", args...); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := inst.Call("f", args...); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("O3 steady-state Call allocates %.1f objects/op, want 0", avg)
	}
}

// TestInlineFaultInCallee: a runtime fault inside an inlined body keeps
// its position and the partial state of everything before it.
func TestInlineFaultInCallee(t *testing.T) {
	src := `
double pick(int n, double a[n], int k) { return a[k]; }
double f(int n, double a[n]) {
  int i;
  double s = 0.0;
  for (i = 0; i <= n; i++) {
    a[0] = a[0] + 1.0;
    s = s + pick(n, a, i);
  }
  return s;
}`
	mk := func() []any {
		a := NewArray(4)
		for i := range a.Data {
			a.Data[i] = float64(i)
		}
		return []any{IntV(4), a}
	}
	f := MustParse("t.c", src)
	wArgs, cArgs := mk(), mk()
	_, werr := NewWalker(f).Call("f", wArgs...)
	prog, err := Compile(f, WithOptLevel(O3))
	if err != nil {
		t.Fatal(err)
	}
	_, cerr := prog.NewInstance().Call("f", cArgs...)
	if werr == nil || cerr == nil {
		t.Fatalf("expected out-of-bounds faults, walker=%v O3=%v", werr, cerr)
	}
	if !strings.Contains(cerr.Error(), "t.c:") {
		t.Errorf("O3 fault should be positioned, got %q", cerr)
	}
	wa, ca := wArgs[1].(*Array), cArgs[1].(*Array)
	for k := range wa.Data {
		if wa.Data[k] != ca.Data[k] {
			t.Fatalf("partial state diverges at %d: walker=%g O3=%g", k, wa.Data[k], ca.Data[k])
		}
	}
}
