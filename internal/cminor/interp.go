package cminor

import "fmt"

// Interp executes C-minor files through the compiled pipeline: the file
// is resolved (identifiers bound to slots, arity/rank checked),
// typechecked (static int/double kinds inferred) and lowered to
// closure-compiled evaluators once — with unboxed fast paths and a loop
// optimizer — then every Call runs over slot-indexed frames with no
// per-variable map lookups. The public surface (NewInterp, Call, Value,
// Array) is unchanged from the original tree-walking interpreter;
// Walker retains those semantics for differential testing.
type Interp struct {
	prog *Program
	err  error
	g    *globalStore
	// Steps counts executed statements, as a cheap runaway guard.
	Steps    int
	MaxSteps int
}

// NewInterp compiles f and returns an interpreter over it. Compilation
// diagnostics (undeclared identifiers, rank/arity mismatches, ...) are
// deferred to the first Call so the constructor keeps its historical
// signature; use Compile directly to observe them eagerly. Compilation
// annotates f in place (see Compile), so don't share one *File across
// concurrent NewInterp calls without cloning.
func NewInterp(f *File) *Interp {
	in := &Interp{MaxSteps: 500_000_000}
	prog, err := Compile(f)
	if err != nil {
		in.err = err
		return in
	}
	in.prog = prog
	in.g = prog.newGlobals()
	return in
}

// NewInterp builds an interpreter sharing this compiled program. Each
// interpreter owns its global-variable storage and step budget.
func (p *Program) NewInterp() *Interp {
	return &Interp{prog: p, g: p.newGlobals(), MaxSteps: 500_000_000}
}

func (in *Interp) step() {
	in.Steps++
	if in.Steps > in.MaxSteps {
		panic(&Diag{Msg: "interpreter step budget exceeded"})
	}
}

// Call invokes the named function. Args must be *Array for array
// parameters, Value (or int/float64) for scalar parameters, and *Value
// for pointer parameters (shared cell). Runtime faults — bad subscript,
// integer division by zero, step budget — are returned as positioned
// errors rather than crashing.
func (in *Interp) Call(name string, args ...any) (v Value, err error) {
	if in.err != nil {
		return Value{}, in.err
	}
	cf, ok := in.prog.funcs[name]
	if !ok {
		return Value{}, fmt.Errorf("cminor: no function %q", name)
	}
	params := cf.info.Decl.Params
	if len(args) != len(params) {
		return Value{}, fmt.Errorf("cminor: %s expects %d args, got %d",
			name, len(params), len(args))
	}
	fr := newFrame(in, cf)
	// copybacks approximate the historical shared-cell behaviour of
	// *Value arguments bound to by-value scalar parameters: the raw
	// Value is copied in and copied back when the call finishes (or
	// faults). Caveat vs the old interpreter: passing the same *Value
	// for two by-value parameters no longer aliases them to one cell.
	var copybacks []func()
	// The typed body trusts that every by-value scalar slot holds a
	// Value of its declared kind. Raw *Value / int / float64 arguments
	// may violate that (the historical interpreter binds them
	// unconverted); such calls run the generically-compiled body.
	mistyped := false
	for i, p := range params {
		ref := cf.info.Params[i]
		if arr, isArr := args[i].(*Array); isArr || ref.Kind == VarArray {
			if !isArr || ref.Kind != VarArray {
				return Value{}, fmt.Errorf("cminor: %s: array/parameter mismatch for %s", name, p.Name)
			}
			fr.arrays[ref.Slot] = arr
			continue
		}
		wantInt := p.Type.Kind == Int
		switch a := args[i].(type) {
		case *Value:
			if ref.Kind == VarCell {
				fr.cells[ref.Slot] = a
			} else {
				// The historical interpreter shared the cell unconverted;
				// copy the raw Value in and back out to match.
				if a.IsInt != wantInt {
					mistyped = true
				}
				fr.scalars[ref.Slot] = *a
				slot, dst := ref.Slot, a
				copybacks = append(copybacks, func() { *dst = fr.scalars[slot] })
			}
		case Value:
			in.bindScalar(fr, ref, convertKind(a, p.Type.Kind))
		case int:
			if !wantInt && ref.Kind == VarScalar {
				mistyped = true
			}
			in.bindScalar(fr, ref, IntV(int64(a)))
		case float64:
			if wantInt && ref.Kind == VarScalar {
				mistyped = true
			}
			in.bindScalar(fr, ref, FloatV(a))
		default:
			return Value{}, fmt.Errorf("cminor: unsupported argument type %T for %s", a, p.Name)
		}
	}
	defer func() {
		for _, cb := range copybacks {
			cb()
		}
		if r := recover(); r != nil {
			if d, isDiag := r.(*Diag); isDiag {
				err = fmt.Errorf("cminor: interpreting %s: %w", name, d)
				return
			}
			// Preserve the historical contract: any runtime fault in a
			// kernel surfaces as an error, never a process crash.
			err = fmt.Errorf("cminor: interpreting %s: %v", name, r)
		}
	}()
	body := cf.body
	if mistyped {
		body = cf.generic
	}
	body(fr)
	return fr.ret, nil
}

// bindScalar places a by-value scalar argument into the frame, boxing a
// fresh cell when the parameter was declared as a pointer.
func (in *Interp) bindScalar(fr *frame, ref VarRef, v Value) {
	if ref.Kind == VarCell {
		cell := v
		fr.cells[ref.Slot] = &cell
		return
	}
	fr.scalars[ref.Slot] = v
}
