package cminor

import (
	"fmt"
	"math"
)

// Value is a scalar runtime value with C-style int/double typing.
type Value struct {
	IsInt bool
	I     int64
	F     float64
}

// IntV makes an int Value.
func IntV(i int64) Value { return Value{IsInt: true, I: i} }

// FloatV makes a double Value.
func FloatV(f float64) Value { return Value{F: f} }

// Float returns the value as float64 regardless of its static type.
func (v Value) Float() float64 {
	if v.IsInt {
		return float64(v.I)
	}
	return v.F
}

// Int returns the value as int64, truncating doubles (C cast semantics).
func (v Value) Int() int64 {
	if v.IsInt {
		return v.I
	}
	return int64(v.F)
}

// Bool applies C truthiness.
func (v Value) Bool() bool {
	if v.IsInt {
		return v.I != 0
	}
	return v.F != 0
}

// Array is a dense row-major multi-dimensional array of doubles (ints are
// stored as doubles; Polybench kernels only index with int scalars).
type Array struct {
	Dims []int
	Data []float64
}

// NewArray allocates a zeroed array with the given dimensions.
func NewArray(dims ...int) *Array {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			n = 0
			break
		}
		n *= d
	}
	return &Array{Dims: append([]int(nil), dims...), Data: make([]float64, n)}
}

// At reads the element at the given index vector.
func (a *Array) At(idx ...int) float64 { return a.Data[a.offset(idx)] }

// Set writes the element at the given index vector.
func (a *Array) Set(v float64, idx ...int) { a.Data[a.offset(idx)] = v }

func (a *Array) offset(idx []int) int {
	if len(idx) != len(a.Dims) {
		panic(fmt.Sprintf("cminor: array rank %d indexed with %d subscripts",
			len(a.Dims), len(idx)))
	}
	off := 0
	for k, i := range idx {
		if i < 0 || i >= a.Dims[k] {
			panic(fmt.Sprintf("cminor: index %d out of range [0,%d) in dim %d",
				i, a.Dims[k], k))
		}
		off = off*a.Dims[k] + i
	}
	return off
}

type binding struct {
	scalar *Value
	arr    *Array
}

type frame struct {
	vars map[string]*binding
}

func (fr *frame) lookup(name string) (*binding, bool) {
	b, ok := fr.vars[name]
	return b, ok
}

// Interp is a reference interpreter for C-minor files. It exists to
// validate that the embedded Polybench sources compute the same results
// as the pure-Go reference kernels; the performance simulation never
// interprets code.
type Interp struct {
	file  *File
	funcs map[string]*FuncDecl
	// Steps counts executed statements, as a cheap runaway guard.
	Steps    int
	MaxSteps int
}

// NewInterp builds an interpreter over f.
func NewInterp(f *File) *Interp {
	in := &Interp{file: f, funcs: map[string]*FuncDecl{}, MaxSteps: 500_000_000}
	for _, fn := range f.Funcs {
		if fn.Body != nil {
			in.funcs[fn.Name] = fn
		}
	}
	return in
}

type returnSignal struct{ v Value }

// Call invokes the named function. Args must be *Array for array
// parameters, Value for scalar parameters, and *Value for pointer
// parameters (shared cell).
func (in *Interp) Call(name string, args ...any) (v Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if rs, ok := r.(returnSignal); ok {
				v = rs.v
				return
			}
			err = fmt.Errorf("cminor: interpreting %s: %v", name, r)
		}
	}()
	fn, ok := in.funcs[name]
	if !ok {
		return Value{}, fmt.Errorf("cminor: no function %q", name)
	}
	if len(args) != len(fn.Params) {
		return Value{}, fmt.Errorf("cminor: %s expects %d args, got %d",
			name, len(fn.Params), len(args))
	}
	fr := &frame{vars: map[string]*binding{}}
	for i, p := range fn.Params {
		switch a := args[i].(type) {
		case *Array:
			fr.vars[p.Name] = &binding{arr: a}
		case Value:
			val := a
			if p.Type.Kind == Int {
				val = IntV(a.Int())
			} else {
				val = FloatV(a.Float())
			}
			fr.vars[p.Name] = &binding{scalar: &val}
		case *Value:
			fr.vars[p.Name] = &binding{scalar: a}
		case int:
			val := IntV(int64(a))
			fr.vars[p.Name] = &binding{scalar: &val}
		case float64:
			val := FloatV(a)
			fr.vars[p.Name] = &binding{scalar: &val}
		default:
			return Value{}, fmt.Errorf("cminor: unsupported argument type %T for %s", a, p.Name)
		}
	}
	in.execBlock(fn.Body, fr)
	return Value{}, nil
}

func (in *Interp) step() {
	in.Steps++
	if in.Steps > in.MaxSteps {
		panic("interpreter step budget exceeded")
	}
}

func (in *Interp) execBlock(b *Block, fr *frame) {
	for _, s := range b.Stmts {
		in.exec(s, fr)
	}
}

func (in *Interp) exec(s Stmt, fr *frame) {
	in.step()
	switch s := s.(type) {
	case *Block:
		in.execBlock(s, fr)
	case *DeclStmt:
		if s.Type.IsArray() {
			dims := make([]int, len(s.Type.Dims))
			for i, d := range s.Type.Dims {
				dims[i] = int(in.eval(d, fr).Int())
			}
			fr.vars[s.Name] = &binding{arr: NewArray(dims...)}
			return
		}
		var v Value
		if s.Init != nil {
			v = in.eval(s.Init, fr)
		}
		if s.Type.Kind == Int {
			v = IntV(v.Int())
		} else {
			v = FloatV(v.Float())
		}
		fr.vars[s.Name] = &binding{scalar: &v}
	case *ExprStmt:
		in.eval(s.X, fr)
	case *ForStmt:
		if s.Init != nil {
			in.exec(s.Init, fr)
		}
		for s.Cond == nil || in.eval(s.Cond, fr).Bool() {
			in.execBlock(s.Body, fr)
			if s.Post != nil {
				in.eval(s.Post, fr)
			}
			in.step()
		}
	case *WhileStmt:
		for in.eval(s.Cond, fr).Bool() {
			in.execBlock(s.Body, fr)
			in.step()
		}
	case *IfStmt:
		if in.eval(s.Cond, fr).Bool() {
			in.execBlock(s.Then, fr)
		} else if s.Else != nil {
			in.exec(s.Else, fr)
		}
	case *ReturnStmt:
		var v Value
		if s.X != nil {
			v = in.eval(s.X, fr)
		}
		panic(returnSignal{v: v})
	case *PragmaStmt:
		// Pragmas have no interpretation-time effect.
	}
}

// lvalue resolution: returns either a scalar cell or an array+index.
func (in *Interp) lvalue(e Expr, fr *frame) (cell *Value, arr *Array, idx []int) {
	switch e := e.(type) {
	case *Ident:
		b, ok := fr.lookup(e.Name)
		if !ok {
			panic(fmt.Sprintf("undefined variable %q", e.Name))
		}
		if b.arr != nil {
			return nil, b.arr, nil
		}
		return b.scalar, nil, nil
	case *ParenExpr:
		return in.lvalue(e.X, fr)
	case *IndexExpr:
		// Collect the subscript chain.
		var subs []Expr
		cur := Expr(e)
		for {
			ix, ok := cur.(*IndexExpr)
			if !ok {
				break
			}
			subs = append([]Expr{ix.Idx}, subs...)
			cur = ix.X
		}
		id, ok := cur.(*Ident)
		if !ok {
			panic("indexed expression is not a variable")
		}
		b, ok := fr.lookup(id.Name)
		if !ok || b.arr == nil {
			panic(fmt.Sprintf("%q is not an array", id.Name))
		}
		idx = make([]int, len(subs))
		for i, sx := range subs {
			idx[i] = int(in.eval(sx, fr).Int())
		}
		return nil, b.arr, idx
	case *UnExpr:
		if e.Op == AMP {
			return in.lvalue(e.X, fr)
		}
	}
	panic(fmt.Sprintf("invalid lvalue %T", e))
}

func (in *Interp) eval(e Expr, fr *frame) Value {
	switch e := e.(type) {
	case *Ident:
		b, ok := fr.lookup(e.Name)
		if !ok {
			panic(fmt.Sprintf("undefined variable %q", e.Name))
		}
		if b.scalar == nil {
			panic(fmt.Sprintf("array %q used as scalar", e.Name))
		}
		return *b.scalar
	case *IntLit:
		return IntV(e.V)
	case *FloatLit:
		return FloatV(e.V)
	case *ParenExpr:
		return in.eval(e.X, fr)
	case *CastExpr:
		v := in.eval(e.X, fr)
		if e.To.Kind == Int {
			return IntV(v.Int())
		}
		return FloatV(v.Float())
	case *UnExpr:
		v := in.eval(e.X, fr)
		switch e.Op {
		case MINUS:
			if v.IsInt {
				return IntV(-v.I)
			}
			return FloatV(-v.F)
		case NOT:
			if v.Bool() {
				return IntV(0)
			}
			return IntV(1)
		}
		panic(fmt.Sprintf("unsupported unary op %s", e.Op))
	case *BinExpr:
		return in.evalBin(e, fr)
	case *CondExpr:
		if in.eval(e.Cond, fr).Bool() {
			return in.eval(e.Then, fr)
		}
		return in.eval(e.Else, fr)
	case *IndexExpr:
		_, arr, idx := in.lvalue(e, fr)
		if idx == nil {
			panic("array value used without full subscripts")
		}
		return FloatV(arr.At(idx...))
	case *AssignExpr:
		rhs := in.eval(e.RHS, fr)
		cell, arr, idx := in.lvalue(e.LHS, fr)
		if arr != nil {
			old := FloatV(arr.At(idx...))
			nv := applyCompound(e.Op, old, rhs)
			arr.Set(nv.Float(), idx...)
			return nv
		}
		nv := applyCompound(e.Op, *cell, rhs)
		if cell.IsInt {
			nv = IntV(nv.Int())
		}
		*cell = nv
		return nv
	case *IncDecExpr:
		cell, arr, idx := in.lvalue(e.X, fr)
		if arr != nil {
			old := arr.At(idx...)
			if e.Op == INC {
				arr.Set(old+1, idx...)
			} else {
				arr.Set(old-1, idx...)
			}
			return FloatV(old)
		}
		old := *cell
		if cell.IsInt {
			if e.Op == INC {
				cell.I++
			} else {
				cell.I--
			}
		} else {
			if e.Op == INC {
				cell.F++
			} else {
				cell.F--
			}
		}
		return old
	case *CallExpr:
		return in.call(e, fr)
	}
	panic(fmt.Sprintf("unsupported expression %T", e))
}

func applyCompound(op TokenKind, old, rhs Value) Value {
	switch op {
	case ASSIGN:
		return rhs
	case ADDASSIGN:
		return arith(PLUS, old, rhs)
	case SUBASSIGN:
		return arith(MINUS, old, rhs)
	case MULASSIGN:
		return arith(STAR, old, rhs)
	case DIVASSIGN:
		return arith(SLASH, old, rhs)
	case MODASSIGN:
		return arith(PERCENT, old, rhs)
	}
	panic(fmt.Sprintf("unsupported assignment op %s", op))
}

func (in *Interp) evalBin(e *BinExpr, fr *frame) Value {
	switch e.Op {
	case ANDAND:
		if !in.eval(e.X, fr).Bool() {
			return IntV(0)
		}
		if in.eval(e.Y, fr).Bool() {
			return IntV(1)
		}
		return IntV(0)
	case OROR:
		if in.eval(e.X, fr).Bool() {
			return IntV(1)
		}
		if in.eval(e.Y, fr).Bool() {
			return IntV(1)
		}
		return IntV(0)
	}
	x := in.eval(e.X, fr)
	y := in.eval(e.Y, fr)
	switch e.Op {
	case PLUS, MINUS, STAR, SLASH, PERCENT:
		return arith(e.Op, x, y)
	case EQ, NEQ, LT, GT, LEQ, GEQ:
		return compare(e.Op, x, y)
	}
	panic(fmt.Sprintf("unsupported binary op %s", e.Op))
}

func arith(op TokenKind, x, y Value) Value {
	if x.IsInt && y.IsInt {
		switch op {
		case PLUS:
			return IntV(x.I + y.I)
		case MINUS:
			return IntV(x.I - y.I)
		case STAR:
			return IntV(x.I * y.I)
		case SLASH:
			if y.I == 0 {
				panic("integer division by zero")
			}
			return IntV(x.I / y.I)
		case PERCENT:
			if y.I == 0 {
				panic("integer modulo by zero")
			}
			return IntV(x.I % y.I)
		}
	}
	a, b := x.Float(), y.Float()
	switch op {
	case PLUS:
		return FloatV(a + b)
	case MINUS:
		return FloatV(a - b)
	case STAR:
		return FloatV(a * b)
	case SLASH:
		return FloatV(a / b)
	case PERCENT:
		return FloatV(math.Mod(a, b))
	}
	panic(fmt.Sprintf("unsupported arithmetic op %s", op))
}

func compare(op TokenKind, x, y Value) Value {
	var r bool
	if x.IsInt && y.IsInt {
		switch op {
		case EQ:
			r = x.I == y.I
		case NEQ:
			r = x.I != y.I
		case LT:
			r = x.I < y.I
		case GT:
			r = x.I > y.I
		case LEQ:
			r = x.I <= y.I
		case GEQ:
			r = x.I >= y.I
		}
	} else {
		a, b := x.Float(), y.Float()
		switch op {
		case EQ:
			r = a == b
		case NEQ:
			r = a != b
		case LT:
			r = a < b
		case GT:
			r = a > b
		case LEQ:
			r = a <= b
		case GEQ:
			r = a >= b
		}
	}
	if r {
		return IntV(1)
	}
	return IntV(0)
}

// builtin math functions available to kernels.
var builtins = map[string]func(args []Value) Value{
	"sqrt":  func(a []Value) Value { return FloatV(math.Sqrt(a[0].Float())) },
	"fabs":  func(a []Value) Value { return FloatV(math.Abs(a[0].Float())) },
	"pow":   func(a []Value) Value { return FloatV(math.Pow(a[0].Float(), a[1].Float())) },
	"exp":   func(a []Value) Value { return FloatV(math.Exp(a[0].Float())) },
	"log":   func(a []Value) Value { return FloatV(math.Log(a[0].Float())) },
	"floor": func(a []Value) Value { return FloatV(math.Floor(a[0].Float())) },
	"ceil":  func(a []Value) Value { return FloatV(math.Ceil(a[0].Float())) },
}

// IsBuiltin reports whether name is a known math builtin.
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

func (in *Interp) call(e *CallExpr, fr *frame) Value {
	if bf, ok := builtins[e.Fun]; ok {
		args := make([]Value, len(e.Args))
		for i, a := range e.Args {
			args[i] = in.eval(a, fr)
		}
		return bf(args)
	}
	fn, ok := in.funcs[e.Fun]
	if !ok {
		panic(fmt.Sprintf("call to undefined function %q", e.Fun))
	}
	if len(e.Args) != len(fn.Params) {
		panic(fmt.Sprintf("%s expects %d args, got %d", e.Fun, len(fn.Params), len(e.Args)))
	}
	callee := &frame{vars: map[string]*binding{}}
	for i, p := range fn.Params {
		if p.Type.IsArray() {
			_, arr, _ := in.lvalue(e.Args[i], fr)
			if arr == nil {
				panic(fmt.Sprintf("argument %d of %s must be an array", i, e.Fun))
			}
			callee.vars[p.Name] = &binding{arr: arr}
			continue
		}
		if p.Type.Ptr {
			cell, _, _ := in.lvalue(e.Args[i], fr)
			callee.vars[p.Name] = &binding{scalar: cell}
			continue
		}
		v := in.eval(e.Args[i], fr)
		if p.Type.Kind == Int {
			v = IntV(v.Int())
		} else {
			v = FloatV(v.Float())
		}
		callee.vars[p.Name] = &binding{scalar: &v}
	}
	ret := Value{}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if rs, ok := r.(returnSignal); ok {
					ret = rs.v
					return
				}
				panic(r)
			}
		}()
		in.execBlock(fn.Body, callee)
	}()
	return ret
}
