package cminor

// Interp is the historical single-session facade over the engine API
// (see engine.go): NewInterp compiles and Call executes, with compile
// diagnostics deferred to the first Call. It is a thin wrapper around
// an Instance of a default-configured Program — new code should use
// Compile / Program.NewInstance / Instance.CallContext directly, which
// expose variant selection, sharing across goroutines, and
// cancellation. The wrapper keeps the seed-era contract bit-for-bit:
// golden and fuzz parity suites run against it unchanged.
type Interp struct {
	inst *Instance
	err  error
	// Steps counts executed statements, as a cheap runaway guard; it
	// accumulates across calls. MaxSteps may be adjusted between calls.
	Steps    int
	MaxSteps int
}

// NewInterp compiles f and returns an interpreter over it. Compilation
// diagnostics (undeclared identifiers, rank/arity mismatches, ...) are
// deferred to the first Call so the constructor keeps its historical
// signature; use Compile directly to observe them eagerly. f is not
// modified — compiling shares no state with the caller's AST.
func NewInterp(f *File) *Interp {
	in := &Interp{MaxSteps: DefaultMaxSteps}
	prog, err := Compile(f)
	if err != nil {
		in.err = err
		return in
	}
	in.inst = prog.NewInstance()
	return in
}

// NewInterp builds an interpreter sessioned over this compiled program.
// Each interpreter owns its global-variable storage and step budget.
func (p *Program) NewInterp() *Interp {
	return &Interp{inst: p.NewInstance(), MaxSteps: p.cfg.maxSteps}
}

// Call invokes the named function. Args must be *Array for array
// parameters, Value (or int/float64) for scalar parameters, and *Value
// for pointer parameters (shared cell). Runtime faults — bad subscript,
// integer division by zero, step budget — are returned as positioned
// errors rather than crashing.
func (in *Interp) Call(name string, args ...any) (Value, error) {
	if in.err != nil {
		return Value{}, in.err
	}
	// Sync the mutable public fields into the session and back, so the
	// historical "set MaxSteps between calls, read Steps after" idiom
	// keeps working.
	in.inst.maxSteps = in.MaxSteps
	in.inst.steps = in.Steps
	v, err := in.inst.call(nil, name, args)
	in.Steps = in.inst.steps
	return v, err
}
