package cminor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInterpAxpy(t *testing.T) {
	f := MustParse("axpy.c", miniKernel)
	in := NewInterp(f)
	n := 8
	x := NewArray(n)
	y := NewArray(n)
	for i := 0; i < n; i++ {
		x.Set(float64(i), i)
		y.Set(1.0, i)
	}
	if _, err := in.Call("kernel_axpy", IntV(int64(n)), FloatV(2.0), x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 1.0 + 2.0*float64(i)
		if y.At(i) != want {
			t.Errorf("y[%d] = %g, want %g", i, y.At(i), want)
		}
	}
}

func TestInterpMatmul(t *testing.T) {
	src := `
void matmul(int n, double A[n][n], double B[n][n], double C[n][n]) {
  int i, j, k;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      C[i][j] = 0.0;
      for (k = 0; k < n; k++) {
        C[i][j] += A[i][k] * B[k][j];
      }
    }
  }
}
`
	f := MustParse("mm.c", src)
	in := NewInterp(f)
	n := 4
	A, B, C := NewArray(n, n), NewArray(n, n), NewArray(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			A.Set(float64(i+j), i, j)
			B.Set(float64(i*j+1), i, j)
		}
	}
	if _, err := in.Call("matmul", IntV(int64(n)), A, B, C); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for k := 0; k < n; k++ {
				want += A.At(i, k) * B.At(k, j)
			}
			if math.Abs(C.At(i, j)-want) > 1e-12 {
				t.Errorf("C[%d][%d] = %g, want %g", i, j, C.At(i, j), want)
			}
		}
	}
}

func TestInterpIntDivision(t *testing.T) {
	src := "int f(int a, int b) { return a / b; }"
	in := NewInterp(MustParse("t.c", src))
	v, err := in.Call("f", IntV(7), IntV(2))
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsInt || v.I != 3 {
		t.Errorf("7/2 = %+v, want int 3", v)
	}
}

func TestInterpTernaryMax(t *testing.T) {
	src := "double f(double a, double b) { return a >= b ? a : b; }"
	in := NewInterp(MustParse("t.c", src))
	v, err := in.Call("f", FloatV(2.5), FloatV(9.0))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 9.0 {
		t.Errorf("max = %g, want 9", v.Float())
	}
}

func TestInterpBuiltinSqrt(t *testing.T) {
	src := "double f(double x) { return sqrt(x); }"
	in := NewInterp(MustParse("t.c", src))
	v, err := in.Call("f", FloatV(16.0))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 4.0 {
		t.Errorf("sqrt(16) = %g", v.Float())
	}
}

func TestInterpNestedCall(t *testing.T) {
	src := `
double square(double x) { return x * x; }
double f(double x) { return square(x) + square(2.0); }
`
	in := NewInterp(MustParse("t.c", src))
	v, err := in.Call("f", FloatV(3.0))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 13.0 {
		t.Errorf("f(3) = %g, want 13", v.Float())
	}
}

func TestInterpArrayPassedByReference(t *testing.T) {
	src := `
void fill(int n, double a[n], double v) {
  int i;
  for (i = 0; i < n; i++) { a[i] = v; }
}
void f(int n, double a[n]) { fill(n, a, 7.0); }
`
	in := NewInterp(MustParse("t.c", src))
	a := NewArray(3)
	if _, err := in.Call("f", IntV(3), a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if a.At(i) != 7.0 {
			t.Errorf("a[%d] = %g, want 7", i, a.At(i))
		}
	}
}

func TestInterpWhileAndCompound(t *testing.T) {
	src := `
int f(int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s += i;
    i++;
  }
  return s;
}
`
	in := NewInterp(MustParse("t.c", src))
	v, err := in.Call("f", IntV(10))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 45 {
		t.Errorf("sum = %d, want 45", v.I)
	}
}

func TestInterpLocalArray(t *testing.T) {
	src := `
double f(int n) {
  double tmp[n];
  int i;
  double s = 0.0;
  for (i = 0; i < n; i++) { tmp[i] = (double)i; }
  for (i = 0; i < n; i++) { s += tmp[i]; }
  return s;
}
`
	in := NewInterp(MustParse("t.c", src))
	v, err := in.Call("f", IntV(5))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 10.0 {
		t.Errorf("sum = %g, want 10", v.Float())
	}
}

func TestInterpOutOfBoundsCaught(t *testing.T) {
	src := "void f(int n, double a[n]) { a[n] = 1.0; }"
	in := NewInterp(MustParse("t.c", src))
	_, err := in.Call("f", IntV(3), NewArray(3))
	if err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestInterpStepBudget(t *testing.T) {
	src := "void f() { while (1) { } }"
	in := NewInterp(MustParse("t.c", src))
	in.MaxSteps = 1000
	if _, err := in.Call("f"); err == nil {
		t.Fatal("expected step-budget error for infinite loop")
	}
}

// Property: the interpreter's integer arithmetic matches Go's for the
// operators C-minor shares with Go.
func TestInterpArithPropertyVsGo(t *testing.T) {
	src := `
int f(int a, int b, int op) {
  if (op == 0) { return a + b; }
  if (op == 1) { return a - b; }
  if (op == 2) { return a * b; }
  if (op == 3) { return a / b; }
  return a % b;
}
`
	in := NewInterp(MustParse("t.c", src))
	prop := func(a, b int16, op uint8) bool {
		bb := int64(b)
		if bb == 0 {
			bb = 1
		}
		o := int64(op % 5)
		got, err := in.Call("f", IntV(int64(a)), IntV(bb), IntV(o))
		if err != nil {
			return false
		}
		var want int64
		switch o {
		case 0:
			want = int64(a) + bb
		case 1:
			want = int64(a) - bb
		case 2:
			want = int64(a) * bb
		case 3:
			want = int64(a) / bb
		case 4:
			want = int64(a) % bb
		}
		return got.I == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInterpIncDecSemantics(t *testing.T) {
	src := `
int f() {
  int i = 5;
  int a = i++;
  int b = i--;
  return a * 100 + b * 10 + i;
}
`
	in := NewInterp(MustParse("t.c", src))
	v, err := in.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	// a=5 (post-inc), b=6 (post-dec), i=5 → 565
	if v.I != 565 {
		t.Errorf("got %d, want 565", v.I)
	}
}
