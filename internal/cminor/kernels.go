package cminor

// The Polybench-shaped kernel corpus shared by the benchmark sweep
// (bench_test.go), the per-pass parity tests, and the autotuning
// layer's tuned-vs-static benchmarks (internal/cminor/autotune). Each
// entry carries the source, the entry function, and a builder for a
// fresh argument set at the canonical benchmark size — argument arrays
// are mutated by the kernels, so every run wants its own copy.

const benchGemmSrc = `
void gemm(int n, double alpha, double beta, double A[n][n], double B[n][n], double C[n][n]) {
  int i, j, k;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      C[i][j] = C[i][j] * beta;
      for (k = 0; k < n; k++) {
        C[i][j] += alpha * A[i][k] * B[k][j];
      }
    }
  }
}
`

const benchJacobiSrc = `
void jacobi(int n, int steps, double A[n][n], double B[n][n]) {
  int t, i, j;
  for (t = 0; t < steps; t++) {
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i - 1][j] + A[i + 1][j]);
      }
    }
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        A[i][j] = B[i][j];
      }
    }
  }
}
`

const benchAxpySrc = `
void axpy(int n, double alpha, double x[n], double y[n]) {
  int i;
  for (i = 0; i < n; i++) {
    y[i] = y[i] + alpha * x[i];
  }
}
`

const bench2mmSrc = `
void mm2(int ni, int nj, int nk, int nl, double alpha, double beta,
         double tmp[ni][nj], double A[ni][nk], double B[nk][nj],
         double C[nj][nl], double D[ni][nl]) {
  int i, j, k;
  for (i = 0; i < ni; i++) {
    for (j = 0; j < nj; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < nk; k++) {
        tmp[i][j] += alpha * A[i][k] * B[k][j];
      }
    }
  }
  for (i = 0; i < ni; i++) {
    for (j = 0; j < nl; j++) {
      D[i][j] *= beta;
      for (k = 0; k < nj; k++) {
        D[i][j] += tmp[i][k] * C[k][j];
      }
    }
  }
}
`

const benchSeidelSrc = `
void seidel2d(int tsteps, int n, double A[n][n]) {
  int t, i, j;
  for (t = 0; t < tsteps; t++) {
    for (i = 1; i < n - 1; i++) {
      for (j = 1; j < n - 1; j++) {
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                 + A[i][j - 1] + A[i][j] + A[i][j + 1]
                 + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
      }
    }
  }
}
`

const benchAtaxSrc = `
void atax(int m, int n, double A[m][n], double x[n], double y[n], double tmp[m]) {
  int i, j;
  for (i = 0; i < n; i++) {
    y[i] = 0.0;
  }
  for (i = 0; i < m; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < n; j++) {
      tmp[i] = tmp[i] + A[i][j] * x[j];
    }
    for (j = 0; j < n; j++) {
      y[j] = y[j] + A[i][j] * tmp[i];
    }
  }
}
`

// mvt, trisolv and cholesky extend the suite with triangular loops and
// diagonal accesses — the shapes the O3 range analysis is built for.

const benchMvtSrc = `
void mvt(int n, double x1[n], double x2[n], double y1[n], double y2[n], double A[n][n]) {
  int i, j;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      x1[i] = x1[i] + A[i][j] * y1[j];
    }
  }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      x2[i] = x2[i] + A[j][i] * y2[j];
    }
  }
}
`

const benchTrisolvSrc = `
void trisolv(int n, double L[n][n], double x[n], double b[n]) {
  int i, j;
  for (i = 0; i < n; i++) {
    x[i] = b[i];
    for (j = 0; j < i; j++) {
      x[i] = x[i] - L[i][j] * x[j];
    }
    x[i] = x[i] / L[i][i];
  }
}
`

const benchCholeskySrc = `
void cholesky(int n, double A[n][n]) {
  int i, j, k;
  for (i = 0; i < n; i++) {
    for (j = 0; j < i; j++) {
      for (k = 0; k < j; k++) {
        A[i][j] -= A[i][k] * A[j][k];
      }
      A[i][j] /= A[j][j];
    }
    for (k = 0; k < i; k++) {
      A[i][i] -= A[i][k] * A[i][k];
    }
    A[i][i] = sqrt(A[i][i]);
  }
}
`

// benchNormsSrc exercises the O3 inliner: the inner loop's only call is
// a tiny leaf, which blocks every loop optimization below O3.
const benchNormsSrc = `
double sq(double x) { return x * x; }
void norms(int n, double A[n][n], double out[n]) {
  int i, j;
  for (i = 0; i < n; i++) {
    out[i] = 0.0;
    for (j = 0; j < n; j++) {
      out[i] = out[i] + sq(A[i][j]);
    }
  }
}
`

func benchMatrix(n int) *Array {
	a := NewArray(n, n)
	for i := range a.Data {
		a.Data[i] = float64(i%13) * 0.37
	}
	return a
}

func benchVector(n int) *Array {
	a := NewArray(n)
	for i := range a.Data {
		a.Data[i] = float64(i%7) * 1.1
	}
	return a
}

func benchGemmArgs(n int) []any {
	return []any{IntV(int64(n)), FloatV(1.5), FloatV(0.5),
		benchMatrix(n), benchMatrix(n), benchMatrix(n)}
}

func benchJacobiArgs(n int) []any {
	return []any{IntV(int64(n)), IntV(4), benchMatrix(n), benchMatrix(n)}
}

func bench2mmArgs(n int) []any {
	return []any{IntV(int64(n)), IntV(int64(n)), IntV(int64(n)), IntV(int64(n)),
		FloatV(1.5), FloatV(0.5),
		benchMatrix(n), benchMatrix(n), benchMatrix(n), benchMatrix(n), benchMatrix(n)}
}

func benchSeidelArgs(n int) []any {
	return []any{IntV(4), IntV(int64(n)), benchMatrix(n)}
}

func benchAtaxArgs(n int) []any {
	return []any{IntV(int64(n)), IntV(int64(n)), benchMatrix(n),
		benchVector(n), benchVector(n), benchVector(n)}
}

func benchMvtArgs(n int) []any {
	return []any{IntV(int64(n)), benchVector(n), benchVector(n), benchVector(n),
		benchVector(n), benchMatrix(n)}
}

func benchTrisolvArgs(n int) []any {
	L := NewArray(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			L.Set(float64(i+j)/float64(n)+1.0, i, j)
		}
	}
	return []any{IntV(int64(n)), L, NewArray(n), benchVector(n)}
}

func benchCholeskyArgs(n int) []any {
	A := NewArray(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.01 * float64((i*j)%13)
			if i == j {
				v = float64(n) + 2.0 // diagonally dominant
			}
			A.Set(v, i, j)
		}
	}
	return []any{IntV(int64(n)), A}
}

func benchNormsArgs(n int) []any {
	return []any{IntV(int64(n)), benchMatrix(n), benchVector(n)}
}

// BenchKernel is one corpus entry: a compilable kernel plus a builder
// for a fresh canonical argument set.
type BenchKernel struct {
	Name string       // short name used in benchmark and tuning output
	File string       // source file name carried into diagnostics
	Fn   string       // entry function
	Src  string       // C-minor source
	Args func() []any // fresh (deep) argument set at the canonical size
}

// BenchKernels is the shared ten-kernel corpus, every entry stateless
// (no file-scope globals) so repeated calls with fresh arguments are
// independent — the property the benchmark sweep, the pass-parity
// tests, and the autotuner's instance pooling all rely on.
var BenchKernels = []BenchKernel{
	{"gemm", "gemm.c", "gemm", benchGemmSrc, func() []any { return benchGemmArgs(32) }},
	{"jacobi", "jacobi.c", "jacobi", benchJacobiSrc, func() []any { return benchJacobiArgs(48) }},
	{"axpy", "axpy.c", "axpy", benchAxpySrc, func() []any {
		return []any{IntV(4096), FloatV(2.0), benchVector(4096), benchVector(4096)}
	}},
	{"2mm", "2mm.c", "mm2", bench2mmSrc, func() []any { return bench2mmArgs(24) }},
	{"seidel2d", "seidel.c", "seidel2d", benchSeidelSrc, func() []any { return benchSeidelArgs(48) }},
	{"atax", "atax.c", "atax", benchAtaxSrc, func() []any { return benchAtaxArgs(48) }},
	{"mvt", "mvt.c", "mvt", benchMvtSrc, func() []any { return benchMvtArgs(48) }},
	{"trisolv", "trisolv.c", "trisolv", benchTrisolvSrc, func() []any { return benchTrisolvArgs(64) }},
	{"cholesky", "cholesky.c", "cholesky", benchCholeskySrc, func() []any { return benchCholeskyArgs(32) }},
	{"norms", "norms.c", "norms", benchNormsSrc, func() []any { return benchNormsArgs(48) }},
}
