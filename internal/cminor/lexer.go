package cminor

import "strings"

// Lexer turns C-minor source text into a token stream.
type Lexer struct {
	src   string
	file  string
	off   int
	line  int
	col   int
	diags DiagList
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// NewFileLexer returns a lexer over src whose diagnostics carry the given
// file name.
func NewFileLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors reports the positioned lexical diagnostics accumulated so far.
func (lx *Lexer) Errors() DiagList { return lx.diags }

func (lx *Lexer) errorf(p Pos, format string, args ...any) {
	lx.diags = append(lx.diags, diagf(lx.file, p, format, args...))
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }

// skipSpaceAndComments consumes whitespace, // and /* */ comments, and
// backslash line continuations.
func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '\\' && lx.peek2() == '\n':
			lx.advance()
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			p := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(p, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: p}
	}
	c := lx.peek()

	// Preprocessor: only #pragma survives; other directives are skipped
	// line-by-line (Polybench sources carry includes and defines that the
	// front end does not need).
	if c == '#' {
		start := lx.off
		for lx.off < len(lx.src) && lx.peek() != '\n' {
			// Honour line continuations inside directives.
			if lx.peek() == '\\' && lx.peek2() == '\n' {
				lx.advance()
				lx.advance()
				continue
			}
			lx.advance()
		}
		text := strings.TrimSpace(lx.src[start:lx.off])
		if strings.HasPrefix(text, "#pragma") {
			body := strings.TrimSpace(strings.TrimPrefix(text, "#pragma"))
			return Token{Kind: PRAGMA, Text: body, Pos: p}
		}
		return lx.Next()
	}

	if isDigit(c) || (c == '.' && isDigit(lx.peek2())) {
		return lx.lexNumber(p)
	}
	if isAlpha(c) {
		start := lx.off
		for lx.off < len(lx.src) && isAlnum(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: p}
		}
		return Token{Kind: IDENT, Text: text, Pos: p}
	}
	if c == '"' {
		lx.advance()
		start := lx.off
		for lx.off < len(lx.src) && lx.peek() != '"' {
			if lx.peek() == '\\' {
				lx.advance()
			}
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if lx.off < len(lx.src) {
			lx.advance()
		} else {
			lx.errorf(p, "unterminated string literal")
		}
		return Token{Kind: STRINGLIT, Text: text, Pos: p}
	}

	two := func(k TokenKind) Token {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Text: kindNames[k], Pos: p}
	}
	one := func(k TokenKind) Token {
		lx.advance()
		return Token{Kind: k, Text: kindNames[k], Pos: p}
	}

	d := lx.peek2()
	switch c {
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case '[':
		return one(LBRACK)
	case ']':
		return one(RBRACK)
	case ',':
		return one(COMMA)
	case ';':
		return one(SEMI)
	case '?':
		return one(QUESTION)
	case ':':
		return one(COLON)
	case '+':
		if d == '=' {
			return two(ADDASSIGN)
		}
		if d == '+' {
			return two(INC)
		}
		return one(PLUS)
	case '-':
		if d == '=' {
			return two(SUBASSIGN)
		}
		if d == '-' {
			return two(DEC)
		}
		return one(MINUS)
	case '*':
		if d == '=' {
			return two(MULASSIGN)
		}
		return one(STAR)
	case '/':
		if d == '=' {
			return two(DIVASSIGN)
		}
		return one(SLASH)
	case '%':
		if d == '=' {
			return two(MODASSIGN)
		}
		return one(PERCENT)
	case '=':
		if d == '=' {
			return two(EQ)
		}
		return one(ASSIGN)
	case '!':
		if d == '=' {
			return two(NEQ)
		}
		return one(NOT)
	case '<':
		if d == '=' {
			return two(LEQ)
		}
		return one(LT)
	case '>':
		if d == '=' {
			return two(GEQ)
		}
		return one(GT)
	case '&':
		if d == '&' {
			return two(ANDAND)
		}
		return one(AMP)
	case '|':
		if d == '|' {
			return two(OROR)
		}
	}
	lx.errorf(p, "unexpected character %q", string(c))
	lx.advance()
	return lx.Next()
}

func (lx *Lexer) lexNumber(p Pos) Token {
	start := lx.off
	isFloat := false
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	if lx.off < len(lx.src) && lx.peek() == '.' {
		isFloat = true
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if lx.off < len(lx.src) && (lx.peek() == 'e' || lx.peek() == 'E') {
		save := lx.off
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if isDigit(lx.peek()) {
			isFloat = true
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		} else {
			lx.off = save
		}
	}
	// Suffixes (f, L, u) are accepted and discarded.
	for lx.off < len(lx.src) {
		switch lx.peek() {
		case 'f', 'F', 'l', 'L', 'u', 'U':
			if lx.peek() == 'f' || lx.peek() == 'F' {
				isFloat = true
			}
			lx.advance()
			continue
		}
		break
	}
	text := strings.TrimRight(lx.src[start:lx.off], "fFlLuU")
	k := INTLIT
	if isFloat {
		k = FLOATLIT
	}
	return Token{Kind: k, Text: text, Pos: p}
}

// Tokenize lexes the whole input and returns the token slice (terminated
// by an EOF token) plus any lexical diagnostics.
func Tokenize(src string) ([]Token, DiagList) {
	return TokenizeFile("", src)
}

// TokenizeFile is Tokenize with a file name attached to diagnostics.
func TokenizeFile(file, src string) ([]Token, DiagList) {
	lx := NewFileLexer(file, src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, lx.Errors()
}
