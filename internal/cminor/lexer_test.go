package cminor

import "testing"

func TestTokenizeBasics(t *testing.T) {
	toks, errs := Tokenize("int x = 42; double y = 3.5e2;")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []TokenKind{KwInt, IDENT, ASSIGN, INTLIT, SEMI,
		KwDouble, IDENT, ASSIGN, FLOATLIT, SEMI, EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	src := "+= -= *= /= %= ++ -- == != <= >= && || ! < > = + - * / %"
	want := []TokenKind{ADDASSIGN, SUBASSIGN, MULASSIGN, DIVASSIGN, MODASSIGN,
		INC, DEC, EQ, NEQ, LEQ, GEQ, ANDAND, OROR, NOT, LT, GT, ASSIGN,
		PLUS, MINUS, STAR, SLASH, PERCENT, EOF}
	toks, errs := Tokenize(src)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizePragma(t *testing.T) {
	toks, errs := Tokenize("#pragma omp parallel for num_threads(8)\nint x;")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if toks[0].Kind != PRAGMA {
		t.Fatalf("expected PRAGMA, got %s", toks[0])
	}
	if toks[0].Text != "omp parallel for num_threads(8)" {
		t.Errorf("pragma text = %q", toks[0].Text)
	}
}

func TestTokenizeSkipsOtherDirectives(t *testing.T) {
	toks, errs := Tokenize("#include <stdio.h>\n#define N 10\nint x;")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if toks[0].Kind != KwInt {
		t.Fatalf("expected int keyword first, got %s", toks[0])
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, errs := Tokenize("int /* block */ x; // line\ndouble y;")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	var kinds []TokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokenKind{KwInt, IDENT, SEMI, KwDouble, IDENT, SEMI, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, _ := Tokenize("int\nx;")
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 1 {
		t.Errorf("x position = %s, want 2:1", toks[1].Pos)
	}
}

func TestTokenizeFloatForms(t *testing.T) {
	cases := map[string]TokenKind{
		"1":     INTLIT,
		"1.5":   FLOATLIT,
		".5":    FLOATLIT,
		"2e3":   FLOATLIT,
		"2.5e3": FLOATLIT,
		"1f":    FLOATLIT,
		"10L":   INTLIT,
	}
	for src, want := range cases {
		toks, errs := Tokenize(src)
		if len(errs) != 0 {
			t.Errorf("%q: errors %v", src, errs)
			continue
		}
		if toks[0].Kind != want {
			t.Errorf("%q: got %s, want %s", src, toks[0].Kind, want)
		}
	}
}

func TestTokenizeUnterminatedComment(t *testing.T) {
	_, errs := Tokenize("int x; /* never closed")
	if len(errs) == 0 {
		t.Fatal("expected an error for unterminated comment")
	}
}
