package cminor

import "math"

// The loop optimizer recognizes the canonical counted loop
//
//	for (i = lo; i < hi; i++) { ... }   (also <=, "i += 1", "i = i + 1",
//	                                     and "for (int i = lo; ...)")
//
// over a statically-int induction variable and compiles it into a native
// Go loop: the bound is evaluated once (it must be a pure loop-invariant
// int expression), the condition becomes a machine integer compare, and
// the increment a machine add, with the induction slot kept in sync for
// body reads. The step budget is still charged per iteration.
//
// Inside such a loop, rank-1/2 subscripts are strength-reduced when
// their indices split into a loop-invariant part and an affine function
// of the induction variable (i, i+c, c+i, i-c):
//
//	colIV   A[row][i+c]  row invariant      → off = hoistBase + i
//	rowIV   A[i+c][col]  col invariant      → off = hoistBase, += stride
//	allInv  A[row][col]  both invariant     → off = hoistBase
//
// Array resolution, the row/col-invariant indices, their bounds checks,
// and the affine range check over [lo, last] are all hoisted into a
// per-entry preamble. Safety is preserved by loop versioning: the body
// is compiled twice, and if any preamble check fails (or the array rank
// is wrong) the loop runs the fully-checked safe body instead, which
// faults at exactly the statement and iteration the unoptimized
// pipeline would — the preamble itself is side-effect free, so the
// fallback decision is unobservable.

// Hoisted-subscript patterns.
const (
	hColIV uint8 = iota
	hRowIV
	hAllInv
	// hRange is the O3 bounds-check-elimination pattern: every subscript
	// has a provable value range over the iteration space (rangeanal.go),
	// so the per-iteration access computes its offset unchecked; the
	// range proof runs once in the loop preamble and falls back to the
	// fully-checked body via the same versioning as the other patterns.
	hRange
)

// maxHoistDepth bounds how many nested counted-loop levels may register
// hoisted subscripts (and therefore compile versioned fast/safe
// bodies); see tryHoist.
const maxHoistDepth = 6

// loopCtx is the per-counted-loop compile context: what the body
// modifies (for invariance checks) and the subscripts hoisted so far.
type loopCtx struct {
	ivSlot      int
	modScalars  map[int]bool
	modGlobals  map[int]bool
	declArrays  map[int]bool
	writesCells bool
	hoisted     []*hoistAccess
}

// hoistAccess is one strength-reduced subscript: how to re-derive its
// array, base offset and step at loop entry, and which frame hoist slot
// carries that state.
type hoistAccess struct {
	hslot   int
	pattern uint8
	rank    int
	ivSlot  int // the registering loop's induction slot (hColIV loads)
	arrGet  func(fr *frame) *Array
	rowFn   evalIntFn // invariant row (rank 2, colIV/allInv)
	colFn   evalIntFn // invariant col (rowIV/allInv)
	ivOff   int64     // c in "i + c"
	// hRange state (see rangeanal.go): ivals proves one value interval
	// per dimension, idxFns are the unchecked per-iteration subscripts.
	ivals  []intervalFn
	idxFns []evalIntFn
}

// setup validates this access over the whole iteration range
// [iv0, ivLast] and installs its hoist state. It is pure apart from the
// hoist slot write; a false return means "run the safe body".
func (h *hoistAccess) setup(fr *frame, iv0, ivLast int64) bool {
	a := h.arrGet(fr)
	if len(a.Dims) != h.rank {
		return false
	}
	hc := &fr.hoists[h.hslot]
	switch h.pattern {
	case hColIV:
		if !affineInRange(iv0, ivLast, h.ivOff, a.Dims[h.rank-1]) {
			return false
		}
		base := int(h.ivOff)
		if h.rank == 2 {
			row := h.rowFn(fr)
			if uint64(row) >= uint64(a.Dims[0]) {
				return false
			}
			base += int(row) * a.Dims[1]
		}
		hc.arr, hc.base, hc.step = a, base, 0
	case hRowIV:
		col := h.colFn(fr)
		if uint64(col) >= uint64(a.Dims[1]) {
			return false
		}
		if !affineInRange(iv0, ivLast, h.ivOff, a.Dims[0]) {
			return false
		}
		hc.arr = a
		hc.base = int(iv0+h.ivOff)*a.Dims[1] + int(col)
		hc.step = a.Dims[1]
	case hAllInv:
		base := 0
		if h.rank == 2 {
			row := h.rowFn(fr)
			if uint64(row) >= uint64(a.Dims[0]) {
				return false
			}
			base = int(row) * a.Dims[1]
		}
		col := h.colFn(fr)
		if uint64(col) >= uint64(a.Dims[h.rank-1]) {
			return false
		}
		hc.arr, hc.base, hc.step = a, base+int(col), 0
	case hRange:
		// Prove every dimension's subscript interval fits its bound; the
		// per-iteration access then computes the offset unchecked.
		for k, ivl := range h.ivals {
			lo, hi, ok := ivl(fr, iv0, ivLast)
			if !ok || lo < 0 || hi >= int64(a.Dims[k]) {
				return false
			}
		}
		hc.arr, hc.base, hc.step = a, 0, 0
		if h.rank == 2 {
			hc.step = a.Dims[1]
		}
	}
	return true
}

// affineInRange reports whether iv+off stays inside [0, n) for every iv
// in [iv0, ivLast]. The additions are overflow-checked: a wrapping
// index must fail validation (the safe body then reproduces whatever
// the generic wrapping arithmetic does, positioned faults included).
func affineInRange(iv0, ivLast, off int64, n int) bool {
	lo := iv0 + off
	if (off > 0 && lo < iv0) || (off < 0 && lo > iv0) {
		return false
	}
	hi := ivLast + off
	if (off > 0 && hi < ivLast) || (off < 0 && hi > ivLast) {
		return false
	}
	return lo >= 0 && hi < int64(n)
}

// countedLoop recognizes and compiles the counted-for fast path,
// returning nil when s doesn't fit the shape (the caller then emits the
// generic loop).
func (c *compiler) countedLoop(s *ForStmt) stmtFn {
	if s.Init == nil || s.Cond == nil || s.Post == nil {
		return nil
	}
	// Induction variable and lower bound from the init clause.
	var ivRef VarRef
	var lo Expr // nil means 0 (an uninitialised "for (int i; ...)" decl)
	switch init := s.Init.(type) {
	case *ExprStmt:
		a, ok := init.X.(*AssignExpr)
		if !ok || a.Op != ASSIGN {
			return nil
		}
		id, ok := stripParens(a.LHS).(*Ident)
		if !ok {
			return nil
		}
		ref := c.refOf(id)
		if ref.Kind != VarScalar {
			return nil
		}
		ivRef, lo = ref, a.RHS
	case *DeclStmt:
		ref := c.declRef(init)
		if ref.Kind != VarScalar || init.Type.Kind != Int {
			return nil
		}
		ivRef, lo = ref, init.Init
	default:
		return nil
	}
	if c.varKind(ivRef) != kInt {
		return nil
	}
	// Condition: iv < hi or iv <= hi.
	cond, ok := stripParens(s.Cond).(*BinExpr)
	if !ok || (cond.Op != LT && cond.Op != LEQ) {
		return nil
	}
	cid, ok := stripParens(cond.X).(*Ident)
	if !ok || !c.isIVIdent(cid, ivRef.Slot) {
		return nil
	}
	hi := cond.Y
	hk := c.kindOf(hi)
	c.constKind(hi, &hk)
	if hk != kInt {
		return nil
	}
	// Post: iv++, iv += 1, or iv = iv + 1.
	if !c.isUnitStep(s.Post, ivRef.Slot) {
		return nil
	}
	// Body analysis: no user calls (they could mutate anything), the
	// induction variable untouched, and the bound loop-invariant.
	lc := c.analyzeLoopBody(s.Body, ivRef.Slot)
	if lc == nil || lc.modScalars[ivRef.Slot] {
		return nil
	}
	if !c.invariant(hi, lc) {
		return nil
	}

	var loFn evalIntFn
	if lo != nil {
		loFn = c.asInt(lo)
	}
	hiFn := c.asInt(hi)
	strict := cond.Op == LT
	ivSlot := ivRef.Slot

	// Compile the body with the loop context active so elemFn can
	// register strength-reduced subscripts; when any were registered,
	// compile a second, fully-checked version for the fallback. At O3 a
	// single-assignment body ("s = s + expr" reductions, stencil stores)
	// skips the statement dispatch entirely: its store is compiled
	// store-only and the loop is unrolled 4-wide with a scalar remainder.
	c.loops = append(c.loops, lc)
	var fastBody stmtFn
	var redOp evalVoidFn
	stepExact := false
	if c.passOn(PassUnroll) {
		if es := singleAssignStmt(s.Body); es != nil {
			redOp = c.exprVoid(es.X)
			// An inlined callee inside the store charges its own steps, so
			// a 4-wide group no longer costs exactly 8: the amortized
			// budget check would fault late. Such bodies keep the full
			// per-statement step() so budget faults stay bit-exact.
			Walk(es.X, func(n Node) bool {
				if call, ok := n.(*CallExpr); ok && !c.isBuiltin(call) {
					stepExact = true
				}
				return true
			})
		}
	}
	if redOp == nil {
		fastBody = c.block(s.Body)
	}
	c.loops = c.loops[:len(c.loops)-1]
	safeBody := fastBody
	if len(lc.hoisted) > 0 {
		safeBody = c.block(s.Body)
	}
	hoists := lc.hoisted
	var incs []int // hoist slots needing a per-iteration stride add
	for _, h := range hoists {
		if h.pattern == hRowIV {
			incs = append(incs, h.hslot)
		}
	}

	if redOp != nil {
		return c.unrolledStoreLoop(loFn, hiFn, strict, ivSlot, hoists, incs, redOp, safeBody, stepExact)
	}

	return func(fr *frame) flow {
		fr.ec.step() // the for statement itself
		fr.ec.step() // its init statement
		var iv int64
		if loFn != nil {
			iv = loFn(fr)
		}
		fr.scalars[ivSlot] = IntV(iv)
		last := hiFn(fr)
		if strict {
			if last == math.MinInt64 {
				return flowNormal
			}
			last--
		}
		if iv > last {
			return flowNormal
		}
		useFast := true
		for _, h := range hoists {
			if !h.setup(fr, iv, last) {
				useFast = false
				break
			}
		}
		body := fastBody
		if !useFast {
			body = safeBody
		}
		if useFast && len(incs) == 1 {
			// One striding access is the common stencil/matmul shape;
			// keep its per-iteration bump free of the slice walk.
			hs := incs[0]
			for {
				if f := body(fr); f != flowNormal {
					return f
				}
				fr.hoists[hs].base += fr.hoists[hs].step
				iv++
				fr.scalars[ivSlot].I = iv
				fr.ec.step()
				if iv > last {
					return flowNormal
				}
			}
		}
		if useFast && len(incs) > 1 {
			for {
				if f := body(fr); f != flowNormal {
					return f
				}
				for _, hs := range incs {
					fr.hoists[hs].base += fr.hoists[hs].step
				}
				iv++
				fr.scalars[ivSlot].I = iv
				fr.ec.step()
				if iv > last {
					return flowNormal
				}
			}
		}
		for {
			if f := body(fr); f != flowNormal {
				return f
			}
			iv++
			fr.scalars[ivSlot].I = iv
			fr.ec.step()
			if iv > last {
				return flowNormal
			}
		}
	}
}

// singleAssignStmt returns the loop body's sole statement when it is a
// lone assignment (or ++/--) expression statement — the store-loop /
// reduction shape the O3 unroller compiles directly — else nil.
func singleAssignStmt(b *Block) *ExprStmt {
	if len(b.Stmts) != 1 {
		return nil
	}
	es, ok := b.Stmts[0].(*ExprStmt)
	if !ok {
		return nil
	}
	switch stripParens(es.X).(type) {
	case *AssignExpr, *IncDecExpr:
		return es
	}
	return nil
}

// unrolledStoreLoop emits the O3 fast path for a counted loop whose
// body is a single store statement: the store runs without statement
// dispatch, four iterations per trip with a scalar remainder. Every
// iteration still charges exactly the two step()s and performs exactly
// the stores of the generic counted loop, in the same order, so step
// budgets, faults and partial state stay bit-identical. iv advances
// with Go's wrapping ++ like the generic skeleton, and the 4-wide
// guard compares the remaining trip count in exact uint64 arithmetic,
// so even bound-of-MaxInt64 pathologies behave identically.
//
// Kept out of countedLoop (go:noinline) deliberately: if this body is
// inlined there, the emitted closure is re-parented into that much
// larger function and the compiler stops inlining step() at the hot
// call sites — measured at ~10% on gemm.
//
//go:noinline
func (c *compiler) unrolledStoreLoop(loFn, hiFn evalIntFn, strict bool, ivSlot int,
	hoists []*hoistAccess, incs []int, op evalVoidFn, safeBody stmtFn, stepExact bool) stmtFn {
	singleInc := -1
	if len(incs) == 1 {
		singleInc = incs[0]
	}
	return func(fr *frame) flow {
		fr.ec.step() // the for statement itself
		fr.ec.step() // its init statement
		var iv int64
		if loFn != nil {
			iv = loFn(fr)
		}
		fr.scalars[ivSlot] = IntV(iv)
		last := hiFn(fr)
		if strict {
			if last == math.MinInt64 {
				return flowNormal
			}
			last--
		}
		if iv > last {
			return flowNormal
		}
		for _, h := range hoists {
			if h.setup(fr, iv, last) {
				continue
			}
			// Loop versioning: a failed range proof runs the fully-checked
			// body one iteration at a time, like the generic counted loop.
			for {
				if f := safeBody(fr); f != flowNormal {
					return f
				}
				iv++
				fr.scalars[ivSlot].I = iv
				fr.ec.step()
				if iv > last {
					return flowNormal
				}
			}
		}
		// The 4-wide groups run only while ≥4 iterations remain — the
		// uint64 difference is exact for iv <= last, so the guard cannot
		// mispredict the trip count even at the int64 extremes; the tail
		// runs the same per-iteration sequence one at a time.
		switch {
		case singleInc >= 0:
			hs := singleInc
			for {
				// A 4-wide group charges 8 statements. Pre-checking the
				// budget once lets the group use plain increments — the
				// counts stay exact at every statement (faults included),
				// only the limit comparison is amortized. Near the limit
				// (or after a cancellation watcher dropped it) the tail
				// path's full step() faults at the exact statement. Bodies
				// with inlined calls charge more than 8 per group, so they
				// pin stepExact and always take the tail path.
				ec := fr.ec
				if !stepExact && uint64(last)-uint64(iv) >= 3 && int64(ec.steps) <= ec.limit.Load()-8 {
					ec.steps++
					op(fr)
					fr.hoists[hs].base += fr.hoists[hs].step
					iv++
					fr.scalars[ivSlot].I = iv
					ec.steps += 2
					op(fr)
					fr.hoists[hs].base += fr.hoists[hs].step
					iv++
					fr.scalars[ivSlot].I = iv
					ec.steps += 2
					op(fr)
					fr.hoists[hs].base += fr.hoists[hs].step
					iv++
					fr.scalars[ivSlot].I = iv
					ec.steps += 2
					op(fr)
					fr.hoists[hs].base += fr.hoists[hs].step
					iv++
					fr.scalars[ivSlot].I = iv
					ec.steps++
					if iv > last {
						return flowNormal
					}
					continue
				}
				fr.ec.step()
				op(fr)
				fr.hoists[hs].base += fr.hoists[hs].step
				iv++
				fr.scalars[ivSlot].I = iv
				fr.ec.step()
				if iv > last {
					return flowNormal
				}
			}
		case len(incs) > 1:
			for {
				fr.ec.step()
				op(fr)
				for _, hs := range incs {
					fr.hoists[hs].base += fr.hoists[hs].step
				}
				iv++
				fr.scalars[ivSlot].I = iv
				fr.ec.step()
				if iv > last {
					return flowNormal
				}
			}
		default:
			for {
				ec := fr.ec
				if !stepExact && uint64(last)-uint64(iv) >= 3 && int64(ec.steps) <= ec.limit.Load()-8 {
					ec.steps++
					op(fr)
					iv++
					fr.scalars[ivSlot].I = iv
					ec.steps += 2
					op(fr)
					iv++
					fr.scalars[ivSlot].I = iv
					ec.steps += 2
					op(fr)
					iv++
					fr.scalars[ivSlot].I = iv
					ec.steps += 2
					op(fr)
					iv++
					fr.scalars[ivSlot].I = iv
					ec.steps++
					if iv > last {
						return flowNormal
					}
					continue
				}
				fr.ec.step()
				op(fr)
				iv++
				fr.scalars[ivSlot].I = iv
				fr.ec.step()
				if iv > last {
					return flowNormal
				}
			}
		}
	}
}

// isIVIdent reports whether id resolves to the induction slot.
func (c *compiler) isIVIdent(id *Ident, ivSlot int) bool {
	ref := c.refOf(id)
	return ref.Kind == VarScalar && ref.Slot == ivSlot
}

// isUnitStep reports whether post is a unit increment of the induction
// slot: iv++, iv += 1, or iv = iv + 1.
func (c *compiler) isUnitStep(post Expr, ivSlot int) bool {
	switch p := stripParens(post).(type) {
	case *IncDecExpr:
		id, ok := stripParens(p.X).(*Ident)
		return ok && p.Op == INC && c.isIVIdent(id, ivSlot)
	case *AssignExpr:
		id, ok := stripParens(p.LHS).(*Ident)
		if !ok || !c.isIVIdent(id, ivSlot) {
			return false
		}
		switch p.Op {
		case ADDASSIGN:
			lit, ok := stripParens(p.RHS).(*IntLit)
			return ok && lit.V == 1
		case ASSIGN:
			b, ok := stripParens(p.RHS).(*BinExpr)
			if !ok || b.Op != PLUS {
				return false
			}
			bid, ok := stripParens(b.X).(*Ident)
			if !ok || !c.isIVIdent(bid, ivSlot) {
				return false
			}
			lit, ok := stripParens(b.Y).(*IntLit)
			return ok && lit.V == 1
		}
	}
	return false
}

// analyzeLoopBody collects what the loop body can modify. It returns
// nil when the body contains an out-of-line user function call — a call
// can mutate globals, arrays, and any variable whose address was taken,
// which defeats every invariance argument the optimizer relies on.
// Calls the O3 inliner splices into this body are not opaque: their
// parameter binds and body writes are accounted like inline code (with
// slot relocation active), so small helper calls no longer force the
// generic loop.
func (c *compiler) analyzeLoopBody(b *Block, ivSlot int) *loopCtx {
	lc := &loopCtx{
		ivSlot:     ivSlot,
		modScalars: map[int]bool{},
		modGlobals: map[int]bool{},
		declArrays: map[int]bool{},
	}
	ok := true
	var visit func(Node) bool
	visit = func(n Node) bool {
		switch n := n.(type) {
		case *CallExpr:
			if c.isBuiltin(n) {
				return true
			}
			site := c.siteFor(n)
			if site == nil {
				ok = false
				return false
			}
			c.markInlinedCall(lc, n, site, visit)
			return false // arguments and callee body were walked above
		case *DeclStmt:
			switch ref := c.declRef(n); ref.Kind {
			case VarScalar:
				// A declaration re-initializes its slot every iteration,
				// so the slot is not invariant across the loop.
				lc.modScalars[ref.Slot] = true
			case VarArray:
				lc.declArrays[ref.Slot] = true
			case VarCell:
				lc.writesCells = true
			}
		case *AssignExpr:
			c.markWrite(lc, n.LHS)
		case *IncDecExpr:
			c.markWrite(lc, n.X)
		}
		return true
	}
	Walk(b, visit)
	if !ok {
		return nil
	}
	return lc
}

// markWrite records an assignment target in the loop's modified sets.
func (c *compiler) markWrite(lc *loopCtx, target Expr) {
	switch t := stripParens(target).(type) {
	case *Ident:
		switch ref := c.refOf(t); ref.Kind {
		case VarScalar:
			lc.modScalars[ref.Slot] = true
		case VarGlobalScalar:
			lc.modGlobals[ref.Slot] = true
		case VarCell:
			// A cell may point at a global (or any caller variable), so
			// writing through it dirties everything non-local.
			lc.writesCells = true
		}
	case *IndexExpr:
		// Array element writes don't affect scalar invariance; element
		// reads are never treated as invariant anyway.
	}
}

// invariant reports whether e is pure (cannot fault, no side effects)
// and yields the same value on every iteration of the loop: literals
// and unmodified non-induction scalars combined with non-faulting
// operators. Division is excluded — hoisting it would reorder a
// potential fault.
func (c *compiler) invariant(e Expr, lc *loopCtx) bool {
	switch e := e.(type) {
	case *IntLit, *FloatLit:
		return true
	case *Ident:
		switch ref := c.refOf(e); ref.Kind {
		case VarScalar:
			return ref.Slot != lc.ivSlot && !lc.modScalars[ref.Slot]
		case VarGlobalScalar:
			return !lc.writesCells && !lc.modGlobals[ref.Slot]
		}
		return false // cells alias caller storage; be conservative
	case *ParenExpr:
		return c.invariant(e.X, lc)
	case *CastExpr:
		return c.invariant(e.X, lc)
	case *UnExpr:
		return (e.Op == MINUS || e.Op == NOT) && c.invariant(e.X, lc)
	case *BinExpr:
		switch e.Op {
		case PLUS, MINUS, STAR, EQ, NEQ, LT, GT, LEQ, GEQ, ANDAND, OROR:
			return c.invariant(e.X, lc) && c.invariant(e.Y, lc)
		}
		return false // / and % can fault; don't reorder that
	}
	return false
}

// ivAffine matches i, i+c, c+i, i-c against the induction slot,
// returning the constant offset c.
func (c *compiler) ivAffine(e Expr, ivSlot int) (int64, bool) {
	switch x := stripParens(e).(type) {
	case *Ident:
		if c.isIVIdent(x, ivSlot) {
			return 0, true
		}
	case *BinExpr:
		id, iOK := stripParens(x.X).(*Ident)
		lit, lOK := stripParens(x.Y).(*IntLit)
		switch x.Op {
		case PLUS:
			if iOK && lOK && c.isIVIdent(id, ivSlot) {
				return lit.V, true
			}
			// c + i
			lit2, lOK2 := stripParens(x.X).(*IntLit)
			id2, iOK2 := stripParens(x.Y).(*Ident)
			if lOK2 && iOK2 && c.isIVIdent(id2, ivSlot) {
				return lit2.V, true
			}
		case MINUS:
			if iOK && lOK && c.isIVIdent(id, ivSlot) {
				return -lit.V, true
			}
		}
	}
	return 0, false
}

// tryHoist classifies and registers a strength-reduced (or, at O3,
// range-proved) subscript chain against the innermost counted loop,
// returning its hoistAccess — nil when the access doesn't qualify and
// must stay checked. Callers build the actual accessor closure with
// hoistElem / hoistFloatLoad / hoistElemPtr.
func (c *compiler) tryHoist(root *Ident, subs []Expr) *hoistAccess {
	if len(c.loops) == 0 || len(subs) < 1 || len(subs) > 2 {
		return nil
	}
	// Every loop level that hoists compiles its body twice (fast +
	// safe), so closure count can grow as 2^depth for a nest that
	// hoists at every level. Polybench nests are ≤4 deep; past a
	// generous bound, deeper levels fall back to checked accesses to
	// keep compilation linear.
	if len(c.loops) > maxHoistDepth {
		return nil
	}
	lc := c.loops[len(c.loops)-1]
	// The array binding must be stable across the loop (local array
	// declarations in the body rebind their slot).
	switch ref := c.refOf(root); ref.Kind {
	case VarArray:
		if lc.declArrays[ref.Slot] {
			return nil
		}
	case VarGlobalArray:
		// Global arrays are never rebound.
	default:
		return nil
	}
	type subClass struct {
		iv  bool
		off int64
	}
	cls := make([]subClass, len(subs))
	rangeOnly := false
	for i, sx := range subs {
		if off, ok := c.ivAffine(sx, lc.ivSlot); ok {
			cls[i] = subClass{iv: true, off: off}
		} else if c.invariant(sx, lc) {
			cls[i] = subClass{}
		} else {
			rangeOnly = true
		}
	}
	if rangeOnly || (len(subs) == 2 && cls[0].iv && cls[1].iv) {
		// Diagonal walks (A[i][i+c]) and subscripts that are neither
		// IV-affine nor invariant miss the strength-reduced patterns; at
		// O3 the range analysis can still prove them in bounds and drop
		// the per-iteration checks.
		if c.passOn(PassBCE) {
			return c.tryRangeHoist(root, subs, lc)
		}
		return nil
	}
	h := &hoistAccess{hslot: c.numHoist, rank: len(subs), arrGet: c.arrayRef(root),
		ivSlot: lc.ivSlot}
	switch {
	case len(subs) == 1 && cls[0].iv:
		h.pattern, h.ivOff = hColIV, cls[0].off
	case len(subs) == 1:
		h.pattern = hAllInv
		h.colFn = c.asInt(subs[0])
	case cls[1].iv:
		h.pattern, h.ivOff = hColIV, cls[1].off
		h.rowFn = c.asInt(subs[0])
	case cls[0].iv:
		h.pattern, h.ivOff = hRowIV, cls[0].off
		h.colFn = c.asInt(subs[1])
	default:
		h.pattern = hAllInv
		h.rowFn = c.asInt(subs[0])
		h.colFn = c.asInt(subs[1])
	}
	c.numHoist++
	lc.hoisted = append(lc.hoisted, h)
	return h
}

// hoistElem builds the (array, flat offset) accessor for a registered
// hoist — the general form used where an *Array is needed.
func (c *compiler) hoistElem(h *hoistAccess) func(fr *frame) (*Array, int) {
	hslot := h.hslot
	switch h.pattern {
	case hColIV:
		ivSlot := h.ivSlot
		return func(fr *frame) (*Array, int) {
			hc := &fr.hoists[hslot]
			return hc.arr, hc.base + int(fr.scalars[ivSlot].I)
		}
	case hRange:
		if h.rank == 1 {
			i0 := h.idxFns[0]
			return func(fr *frame) (*Array, int) {
				hc := &fr.hoists[hslot]
				return hc.arr, int(i0(fr))
			}
		}
		i0, i1 := h.idxFns[0], h.idxFns[1]
		return func(fr *frame) (*Array, int) {
			hc := &fr.hoists[hslot]
			return hc.arr, int(i0(fr))*hc.step + int(i1(fr))
		}
	default: // hRowIV, hAllInv: the incremental/constant offset is the state
		return func(fr *frame) (*Array, int) {
			hc := &fr.hoists[hslot]
			return hc.arr, hc.base
		}
	}
}

// hoistFloatLoad builds a fused element load for a registered hoist:
// one closure, no (array, offset) accessor hop. Element reads inside
// hot loops go through here.
func (c *compiler) hoistFloatLoad(h *hoistAccess) evalFloatFn {
	hslot := h.hslot
	switch h.pattern {
	case hColIV:
		ivSlot := h.ivSlot
		return func(fr *frame) float64 {
			hc := &fr.hoists[hslot]
			return hc.arr.Data[hc.base+int(fr.scalars[ivSlot].I)]
		}
	case hRange:
		if h.rank == 1 {
			i0 := h.idxFns[0]
			return func(fr *frame) float64 {
				hc := &fr.hoists[hslot]
				return hc.arr.Data[int(i0(fr))]
			}
		}
		i0, i1 := h.idxFns[0], h.idxFns[1]
		return func(fr *frame) float64 {
			hc := &fr.hoists[hslot]
			return hc.arr.Data[int(i0(fr))*hc.step+int(i1(fr))]
		}
	default:
		return func(fr *frame) float64 {
			hc := &fr.hoists[hslot]
			return hc.arr.Data[hc.base]
		}
	}
}

// hoistElemPtr builds a fused element-pointer accessor for store sites:
// the returned *float64 is read and/or written exactly where the
// checked path would load and store.
func (c *compiler) hoistElemPtr(h *hoistAccess) func(fr *frame) *float64 {
	hslot := h.hslot
	switch h.pattern {
	case hColIV:
		ivSlot := h.ivSlot
		return func(fr *frame) *float64 {
			hc := &fr.hoists[hslot]
			return &hc.arr.Data[hc.base+int(fr.scalars[ivSlot].I)]
		}
	case hRange:
		if h.rank == 1 {
			i0 := h.idxFns[0]
			return func(fr *frame) *float64 {
				hc := &fr.hoists[hslot]
				return &hc.arr.Data[int(i0(fr))]
			}
		}
		i0, i1 := h.idxFns[0], h.idxFns[1]
		return func(fr *frame) *float64 {
			hc := &fr.hoists[hslot]
			return &hc.arr.Data[int(i0(fr))*hc.step+int(i1(fr))]
		}
	default:
		return func(fr *frame) *float64 {
			hc := &fr.hoists[hslot]
			return &hc.arr.Data[hc.base]
		}
	}
}
