package cminor

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// runBoth executes one program through the walker and the compiled
// pipeline with separately-built args and returns both outcomes.
func runBoth(t *testing.T, src, fn string, mkArgs func() []any) (wv, cv Value, werr, cerr error, wArgs, cArgs []any) {
	t.Helper()
	f := MustParse("t.c", src)
	wArgs, cArgs = mkArgs(), mkArgs()
	wv, werr = NewWalker(f).Call(fn, wArgs...)
	cv, cerr = NewInterp(f).Call(fn, cArgs...)
	return
}

// diffCheck asserts walker/compiled parity for one program across the
// default (O2) pipeline and the O3 inliner/BCE/unroller variant: same
// error-or-not outcome, same returned Value, bit-identical arrays.
func diffCheck(t *testing.T, name, src, fn string, mk func() []any) {
	t.Helper()
	f := MustParse("t.c", src)
	wArgs := mk()
	wv, werr := NewWalker(f).Call(fn, wArgs...)
	run := func(level string, call func(args []any) (Value, error)) {
		cArgs := mk()
		cv, cerr := call(cArgs)
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("%s/%s: error divergence walker=%v compiled=%v", name, level, werr, cerr)
		}
		if werr == nil && !sameValue(wv, cv) {
			t.Fatalf("%s/%s: return divergence walker=%+v compiled=%+v", name, level, wv, cv)
		}
		for i := range wArgs {
			wa, ok := wArgs[i].(*Array)
			if !ok {
				continue
			}
			ca := cArgs[i].(*Array)
			for k := range wa.Data {
				if math.Float64bits(wa.Data[k]) != math.Float64bits(ca.Data[k]) {
					t.Fatalf("%s/%s: array %d diverges at %d: walker=%g compiled=%g",
						name, level, i, k, wa.Data[k], ca.Data[k])
				}
			}
		}
	}
	in := NewInterp(f)
	run("O2", func(args []any) (Value, error) { return in.Call(fn, args...) })
	o3, err := Compile(f, WithOptLevel(O3))
	if err != nil {
		if werr == nil {
			t.Fatalf("%s: O3 Compile rejected what the walker ran: %v", name, err)
		}
		return
	}
	inst := o3.NewInstance()
	run("O3", func(args []any) (Value, error) { return inst.Call(fn, args...) })
	bc, err := Compile(f, WithBackend(BackendBytecode), WithOptLevel(O3))
	if err != nil {
		t.Fatalf("%s: bytecode Compile rejected what O3 accepted: %v", name, err)
	}
	bi := bc.NewInstance()
	run("bytecode", func(args []any) (Value, error) { return bi.Call(fn, args...) })
}

// Inner loop's hoisted access fails preflight (a[j+off] out of range when
// off selected), while the outer loop's own hoists stay valid, so the
// outer fast body must drive the inner SAFE body with outer-registered
// hoists still live.
func TestLoopNestedInnerDeopt(t *testing.T) {
	src := `
double f(int n, int off, double a[n], double b[n][n], double out[n]) {
  int i; int j;
  double acc = 0.0;
  for (i = 0; i < n; i++) {
    out[i] = a[i] * 2.0;
    for (j = 0; j < n; j++) {
      b[i][j] = b[i][j] + a[j + off] + out[i];
      acc += b[i][j];
    }
  }
  return acc;
}`
	for _, off := range []int64{0, 1, 3} { // off=1,3 push a[j+off] out of range
		mk := func() []any {
			a, b, out := NewArray(6), NewArray(6, 6), NewArray(6)
			for i := range a.Data {
				a.Data[i] = float64(i) * 0.5
			}
			for i := range b.Data {
				b.Data[i] = float64(i) * 0.25
			}
			return []any{IntV(6), IntV(off), a, b, out}
		}
		diffCheck(t, "nested-deopt", src, "f", mk)
	}
}

// Row-striding (hRowIV) access nested under an outer loop, inner bound
// depends on outer-invariant expr; plus a diagonal access that must stay
// generic.
func TestLoopRowStrideAndDiagonal(t *testing.T) {
	src := `
double f(int n, double b[n][n]) {
  int i; int j;
  double acc = 0.0;
  for (i = 0; i < n; i++) {
    for (j = 1; j <= n - 1; j = j + 1) {
      b[j][i] = b[j - 1][i] * 0.5 + 1.0;
      b[j][j] += 0.125;
      acc += b[j][i];
    }
  }
  return acc;
}`
	mk := func() []any {
		b := NewArray(7, 7)
		for i := range b.Data {
			b.Data[i] = float64(i) * 0.125
		}
		return []any{IntV(7), b}
	}
	diffCheck(t, "rowstride", src, "f", mk)
}

// The loop bound is a double-kinded variable that demotes to dynamic
// (int store later); counted loop must not fire, parity must hold.
func TestLoopDynamicBoundAndDemotedIV(t *testing.T) {
	src := `
double f(int n, double a[n]) {
  int i;
  double m = 4.0;
  m = n - 1;
  for (i = 0; i < m; i++) {
    a[i] += 1.0;
  }
  for (i = 0; i <= m; i++) {
    a[0] += 0.5;
  }
  return a[0];
}`
	mk := func() []any {
		a := NewArray(8)
		for i := range a.Data {
			a.Data[i] = float64(i)
		}
		return []any{IntV(8), a}
	}
	diffCheck(t, "dynbound", src, "f", mk)
}

// Rank mismatch at loop entry (array param rebound with wrong rank):
// setup must bail to the safe body and fault exactly like the walker.
func TestLoopRankMismatchDeopt(t *testing.T) {
	src := `
double f(int n, double a[n]) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] += 1.0;
  }
  return a[0];
}`
	mk := func() []any { return []any{IntV(4), NewArray(4, 4)} }
	diffCheck(t, "rankmismatch", src, "f", mk)
}

// Negative affine offset out of range on iteration 0 plus partial-state
// parity: the fault happens mid-loop in the walker.
func TestLoopNegOffsetFault(t *testing.T) {
	src := `
double f(int n, double a[n]) {
  int i;
  for (i = 0; i < n; i++) {
    a[i - 2] = 1.0 * i;
  }
  return 0.0;
}`
	mk := func() []any { return []any{IntV(5), NewArray(5)} }
	diffCheck(t, "negoff", src, "f", mk)
}

// A loop bound read from a global that the body mutates is not
// invariant: the counted loop must refuse to hoist it and re-evaluate
// per iteration (a hoisted bound of 5 would yield 0+1+2+3+4 = 10).
// Also checked against the walker oracle, which gained file-scope
// globals alongside the walker backend.
func TestLoopGlobalBoundMutation(t *testing.T) {
	src := `
int g = 5;
double f() {
  int i;
  double acc = 0.0;
  for (i = 0; i < g; i++) {
    g = g - 1;
    acc += i;
  }
  return acc;
}`
	diffCheck(t, "globalbound", src, "f", func() []any { return nil })
	in := NewInterp(MustParse("t.c", src))
	v, err := in.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	// g shrinks while i grows: iterations i=0,1,2 run → acc = 3.
	if v.Float() != 3.0 {
		t.Errorf("got %g, want 3 (bound must be re-evaluated per iteration)", v.Float())
	}
}

// Induction variable read after a zero-trip inner loop; also "c + i"
// affine form and invariant float subscript truncation.
func TestLoopMiscShapes(t *testing.T) {
	src := `
double f(int n, double a[n], double b[n][n]) {
  int i; int j;
  double x = 1.9;
  double acc = 0.0;
  for (i = 0; i < n; i++) {
    for (j = n; j < n; j++) { acc += 100.0; }
    a[x] = a[x] + 1.0;
    b[i][1 + i] = 2.0;
    acc += b[i][1 + i] + a[x] + j;
  }
  return acc;
}`
	mk := func() []any {
		a, b := NewArray(9), NewArray(9, 9)
		return []any{IntV(8), a, b}
	}
	diffCheck(t, "misc", src, "f", mk)
}

func TestCountedLoopFinalInductionValue(t *testing.T) {
	src := `
int f(int n) {
  int i;
  for (i = 0; i < n; i++) { }
  return i;
}
int g(int n) {
  int i;
  for (i = 3; i <= n; i += 1) { }
  return i;
}`
	in := NewInterp(MustParse("t.c", src))
	v, err := in.Call("f", IntV(7))
	if err != nil || v.I != 7 {
		t.Errorf("f(7) = %+v (%v), want i == 7 after the loop", v, err)
	}
	v, err = in.Call("g", IntV(7))
	if err != nil || v.I != 8 {
		t.Errorf("g(7) = %+v (%v), want i == 8 after the loop", v, err)
	}
	// Zero-trip loop: the induction variable keeps its initial value.
	v, err = in.Call("f", IntV(0))
	if err != nil || v.I != 0 {
		t.Errorf("f(0) = %+v (%v), want 0", v, err)
	}
}

// TestLoopVersioningPartialStateOnFault pins the loop-versioning
// contract: when a hoisted subscript's preflight range check fails, the
// loop must run the fully-checked body and fault at exactly the
// iteration the walker would — leaving bit-identical partial state.
func TestLoopVersioningPartialStateOnFault(t *testing.T) {
	src := `
void f(int n, double a[m]) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = 1.0 + i;
  }
}`
	mk := func() []any { return []any{IntV(15), NewArray(10)} }
	_, _, werr, cerr, wArgs, cArgs := runBoth(t, src, "f", mk)
	if werr == nil || cerr == nil {
		t.Fatalf("expected out-of-bounds faults, walker=%v compiled=%v", werr, cerr)
	}
	if !strings.Contains(cerr.Error(), "t.c:") {
		t.Errorf("compiled fault should be positioned, got %q", cerr)
	}
	wa, ca := wArgs[1].(*Array), cArgs[1].(*Array)
	for k := range wa.Data {
		if math.Float64bits(wa.Data[k]) != math.Float64bits(ca.Data[k]) {
			t.Fatalf("partial state diverges at index %d: walker=%g compiled=%g",
				k, wa.Data[k], ca.Data[k])
		}
	}
	if wa.At(9) != 10.0 {
		t.Errorf("iterations before the fault should have run: a[9] = %g, want 10", wa.At(9))
	}
}

// TestLoopBoundMutatedInBody: a bound that the body modifies is not
// invariant, so the loop must stay on the generic (re-evaluating) path.
func TestLoopBoundMutatedInBody(t *testing.T) {
	src := `
int f(int n) {
  int i;
  int trips = 0;
  for (i = 0; i < n; i++) {
    n = n - 1;
    trips = trips + 1;
  }
  return trips * 100 + i * 10 + n;
}`
	wv, cv, werr, cerr, _, _ := runBoth(t, src, "f", func() []any { return []any{IntV(10)} })
	if werr != nil || cerr != nil {
		t.Fatalf("unexpected errors: walker=%v compiled=%v", werr, cerr)
	}
	if !sameValue(wv, cv) {
		t.Fatalf("divergence: walker=%+v compiled=%+v", wv, cv)
	}
}

// TestHoistedZeroTripLoop: a zero-iteration loop must not evaluate any
// hoisted subscript (the row index would be out of range).
func TestHoistedZeroTripLoop(t *testing.T) {
	src := `
double f(int n, int lim, double A[n][n]) {
  int i;
  double s = 0.0;
  for (i = 0; i < lim; i++) {
    s += A[n + 5][i];
  }
  return s;
}`
	in := NewInterp(MustParse("t.c", src))
	v, err := in.Call("f", IntV(4), IntV(0), NewArray(4, 4))
	if err != nil {
		t.Fatalf("zero-trip loop must not fault on hoisted row check: %v", err)
	}
	if v.Float() != 0 {
		t.Errorf("got %g, want 0", v.Float())
	}
	// With one iteration the same access must fault, positioned.
	_, err = in.Call("f", IntV(4), IntV(1), NewArray(4, 4))
	if err == nil || !strings.Contains(err.Error(), "t.c:") {
		t.Errorf("expected positioned out-of-range fault, got %v", err)
	}
}

// TestLoopBoundMutatedInVLADim: a scalar write hidden inside a local
// array's dimension expression still invalidates bound invariance (the
// AST walk must traverse declaration dims).
func TestLoopBoundMutatedInVLADim(t *testing.T) {
	src := `
double f() {
  int m = 5;
  int i;
  double s = 0.0;
  for (i = 0; i < m; i++) {
    double T[m = m - 1];
    s = s + 1.0;
  }
  return s;
}`
	wv, cv, werr, cerr, _, _ := runBoth(t, src, "f", func() []any { return nil })
	if werr != nil || cerr != nil {
		t.Fatalf("unexpected errors: walker=%v compiled=%v", werr, cerr)
	}
	if !sameValue(wv, cv) {
		t.Fatalf("divergence: walker=%+v compiled=%+v", wv, cv)
	}
	if cv.Float() != 3.0 {
		t.Errorf("got %g, want 3 (bound shrinks each iteration)", cv.Float())
	}
}

// TestHoistRangeCheckOverflow: a near-MaxInt64 loop bound must not wrap
// the preflight range check into accepting the fast path — the fault
// must stay a positioned Diag, exactly like the generic path.
func TestHoistRangeCheckOverflow(t *testing.T) {
	src := `
double f(double a[10]) {
  int i;
  double s = 0.0;
  for (i = 0; i < 9223372036854775807; i++) {
    s = s + a[i + 2];
  }
  return s;
}`
	_, _, werr, cerr, _, _ := runBoth(t, src, "f", func() []any { return []any{NewArray(10)} })
	if werr == nil || cerr == nil {
		t.Fatalf("expected out-of-range faults, walker=%v compiled=%v", werr, cerr)
	}
	if !strings.Contains(werr.Error(), "index 10 out of range") {
		t.Errorf("walker fault should be the range error, got %q", werr)
	}
	// The compiled fault must be the positioned Diag from the checked
	// subscript, not a raw Go slice panic out of the fast path.
	if !strings.Contains(cerr.Error(), "index 10 out of range") ||
		!strings.Contains(cerr.Error(), "t.c:") {
		t.Errorf("compiled fault should be the positioned range error, got %q", cerr)
	}
}

// TestUnrolledLoopBudgetExactness: the O3 unrolled store loop amortizes
// the budget *comparison* over 4-wide groups, but the statement charge
// stays exact — a budget that expires anywhere inside a would-be group
// must fault at the same statement (and leave the same Steps count) as
// the walker, for any alignment of budget vs group boundary.
func TestUnrolledLoopBudgetExactness(t *testing.T) {
	srcs := map[string]string{
		"plain": `
double f(int n, double a[n]) {
  int i;
  double s = 0.0;
  for (i = 0; i < n; i++) {
    s = s + a[i];
  }
  return s;
}`,
		// An inlined callee charges its own statements inside the store
		// op, so a 4-wide group costs more than 8 steps — the loop must
		// not amortize the budget check there (it would fault late).
		"inlined-call": `
double sq(double x) { return x * x; }
double f(int n, double a[n]) {
  int i;
  double s = 0.0;
  for (i = 0; i < n; i++) {
    s = s + sq(a[i]);
  }
  return s;
}`,
	}
	for name, src := range srcs {
		f := MustParse("t.c", src)
		for budget := 1; budget <= 230; budget++ {
			w := NewWalker(f)
			w.MaxSteps = budget
			wv, werr := w.Call("f", IntV(64), NewArray(64))
			prog, err := Compile(f, WithOptLevel(O3), WithMaxSteps(budget))
			if err != nil {
				t.Fatal(err)
			}
			inst := prog.NewInstance()
			cv, cerr := inst.Call("f", IntV(64), NewArray(64))
			if (werr == nil) != (cerr == nil) {
				t.Fatalf("%s budget %d: error divergence walker=%v O3=%v", name, budget, werr, cerr)
			}
			if werr == nil && !sameValue(wv, cv) {
				t.Fatalf("%s budget %d: value divergence", name, budget)
			}
			if w.Steps != inst.Steps() {
				t.Fatalf("%s budget %d: walker ran %d steps, O3 ran %d",
					name, budget, w.Steps, inst.Steps())
			}
		}
	}
}

// TestUnrolledLoopCancellation: the cancellation watcher drops the step
// limit; the unrolled loop's group-entry check must notice within one
// group and abort with the wrapped context error.
func TestUnrolledLoopCancellation(t *testing.T) {
	src := `
double f(int n, double a[n]) {
  int t;
  int i;
  double s = 0.0;
  for (t = 0; t < 100000000; t++) {
    for (i = 0; i < n; i++) {
      s = s + a[i];
    }
  }
  return s;
}`
	prog, err := Compile(MustParse("t.c", src), WithOptLevel(O3), WithMaxSteps(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, cerr := prog.NewInstance().CallContext(ctx, "f", IntV(256), NewArray(256))
	if !errors.Is(cerr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", cerr)
	}
}

// TestStrengthReducedPatternsParity exercises all three hoist patterns
// (column-affine, row-affine, fully invariant) plus negative-offset
// stencils against the walker.
func TestStrengthReducedPatternsParity(t *testing.T) {
	src := `
void f(int n, double A[n][n], double B[n][n], double v[n]) {
  int i, j, k;
  for (i = 1; i < n - 1; i++) {
    for (j = 1; j < n - 1; j++) {
      A[i][j] += B[i][j - 1] + B[i][j + 1];
      A[j][i] += B[j - 1][i];
      v[j] += A[i][i + 1];
    }
    v[i] = v[i - 1] + v[i + 1];
  }
  for (k = 0; k < n; k++) {
    A[0][k] += v[k];
    A[k][0] -= v[k];
  }
}`
	mk := func() []any {
		n := 9
		A, B, v := NewArray(n, n), NewArray(n, n), NewArray(n)
		for i := range A.Data {
			A.Data[i] = float64(i%7) * 0.5
		}
		for i := range B.Data {
			B.Data[i] = float64(i%5) * 1.25
		}
		for i := range v.Data {
			v.Data[i] = float64(i) * 0.75
		}
		return []any{IntV(9), A, B, v}
	}
	_, _, werr, cerr, wArgs, cArgs := runBoth(t, src, "f", mk)
	if werr != nil || cerr != nil {
		t.Fatalf("unexpected errors: walker=%v compiled=%v", werr, cerr)
	}
	for i := 1; i < len(wArgs); i++ {
		wa, ca := wArgs[i].(*Array), cArgs[i].(*Array)
		for k := range wa.Data {
			if math.Float64bits(wa.Data[k]) != math.Float64bits(ca.Data[k]) {
				t.Fatalf("array %d diverges at %d: walker=%g compiled=%g",
					i, k, wa.Data[k], ca.Data[k])
			}
		}
	}
}
