package cminor

import "strconv"

// Parser builds a File from a token stream.
type Parser struct {
	toks  []Token
	pos   int
	diags DiagList
	name  string
	// pending pragmas seen since the last statement/declaration; they
	// attach to the next for-loop or function, or become PragmaStmts.
	pending []*Pragma
	// nextID numbers the annotatable nodes (Ident, DeclStmt, CallExpr)
	// so semantic passes can use NodeID-indexed side tables.
	nextID NodeID
}

// newID hands out the next dense NodeID.
func (p *Parser) newID() NodeID {
	id := p.nextID
	p.nextID++
	return id
}

// Parse parses a translation unit. name is used for positions/diagnostics.
// On failure the returned error is a DiagList whose entries carry
// file:line:col positions.
func Parse(name, src string) (*File, error) {
	toks, lerrs := TokenizeFile(name, src)
	p := &Parser{toks: toks, name: name}
	p.diags = append(p.diags, lerrs...)
	f := p.parseFile()
	if len(p.diags) > 0 {
		return f, p.diags
	}
	return f, nil
}

// MustParse parses src and panics on error; intended for embedded
// benchmark sources and tests.
func MustParse(name, src string) *File {
	f, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return f
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokenKind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k TokenKind) Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.diags = append(p.diags, diagf(p.name, p.cur().Pos, format, args...))
	// Simple panic-free recovery: skip one token so we make progress.
	if !p.at(EOF) {
		p.next()
	}
}

func (p *Parser) takePragmas() []*Pragma {
	ps := p.pending
	p.pending = nil
	return ps
}

// drainPragmas consumes consecutive PRAGMA tokens into p.pending.
func (p *Parser) drainPragmas() {
	for p.at(PRAGMA) {
		t := p.next()
		p.pending = append(p.pending, &Pragma{Text: t.Text, P: t.Pos})
	}
}

func (p *Parser) parseFile() *File {
	f := &File{Name: p.name, P: Pos{Line: 1, Col: 1}}
	for !p.at(EOF) {
		p.drainPragmas()
		if p.at(EOF) {
			break
		}
		p.accept(KwStatic)
		p.accept(KwConst)
		if !p.atType() {
			p.errorf("expected declaration, found %s", p.cur())
			continue
		}
		base := p.parseBaseType()
		ptr := p.accept(STAR)
		nameTok := p.expect(IDENT)
		if p.at(LPAREN) {
			fn := p.parseFuncRest(base, ptr, nameTok)
			if fn != nil {
				f.Funcs = append(f.Funcs, fn)
			}
			continue
		}
		// Global variable declaration(s).
		for {
			typ := &Type{Kind: base, Ptr: ptr}
			for p.at(LBRACK) {
				p.next()
				typ.Dims = append(typ.Dims, p.parseExpr())
				p.expect(RBRACK)
			}
			var init Expr
			if p.accept(ASSIGN) {
				init = p.parseAssignExpr()
			}
			f.Globals = append(f.Globals, &DeclStmt{Name: nameTok.Text, Type: typ,
				Init: init, P: nameTok.Pos, ID: p.newID()})
			if !p.accept(COMMA) {
				break
			}
			ptr = p.accept(STAR)
			nameTok = p.expect(IDENT)
		}
		p.expect(SEMI)
	}
	f.NumIDs = int(p.nextID)
	return f
}

func (p *Parser) atType() bool {
	switch p.cur().Kind {
	case KwInt, KwDouble, KwFloat, KwVoid:
		return true
	}
	return false
}

func (p *Parser) parseBaseType() BasicKind {
	switch t := p.next(); t.Kind {
	case KwInt:
		return Int
	case KwDouble, KwFloat:
		return Double
	case KwVoid:
		return Void
	default:
		p.errorf("expected type, found %s", t)
		return Int
	}
}

func (p *Parser) parseFuncRest(ret BasicKind, retPtr bool, nameTok Token) *FuncDecl {
	fn := &FuncDecl{Name: nameTok.Text, Ret: &Type{Kind: ret, Ptr: retPtr},
		P: nameTok.Pos, Pragmas: p.takePragmas()}
	p.expect(LPAREN)
	if p.at(KwVoid) && p.peek().Kind == RPAREN { // f(void)
		p.next()
	}
	if !p.at(RPAREN) {
		for {
			p.accept(KwConst)
			if !p.atType() {
				p.errorf("expected parameter type, found %s", p.cur())
				break
			}
			base := p.parseBaseType()
			ptr := p.accept(STAR)
			pn := p.expect(IDENT)
			typ := &Type{Kind: base, Ptr: ptr}
			for p.at(LBRACK) {
				p.next()
				if p.at(RBRACK) { // empty first dim: T a[]
					typ.Dims = append(typ.Dims, &IntLit{V: 0, P: p.cur().Pos})
				} else {
					typ.Dims = append(typ.Dims, p.parseExpr())
				}
				p.expect(RBRACK)
			}
			fn.Params = append(fn.Params, &Param{Name: pn.Text, Type: typ, P: pn.Pos})
			if !p.accept(COMMA) {
				break
			}
		}
	}
	p.expect(RPAREN)
	if p.accept(SEMI) { // prototype only — record with nil body
		return fn
	}
	fn.Body = p.parseBlock()
	return fn
}

func (p *Parser) parseBlock() *Block {
	b := &Block{P: p.cur().Pos}
	p.expect(LBRACE)
	for !p.at(RBRACE) && !p.at(EOF) {
		stmts := p.parseStmt()
		b.Stmts = append(b.Stmts, stmts...)
	}
	p.expect(RBRACE)
	return b
}

// parseStmt returns one or more statements (comma declarations expand to
// several DeclStmts).
func (p *Parser) parseStmt() []Stmt {
	// Pragmas before a for-loop attach to it; any other following
	// statement leaves them as standalone PragmaStmts.
	if p.at(PRAGMA) {
		p.drainPragmas()
		if p.at(KwFor) {
			return []Stmt{p.parseFor()}
		}
		ps := p.takePragmas()
		out := make([]Stmt, 0, len(ps)+1)
		for _, pr := range ps {
			out = append(out, &PragmaStmt{Pragma: pr, P: pr.P})
		}
		out = append(out, p.parseStmt()...)
		return out
	}
	switch p.cur().Kind {
	case KwFor:
		return []Stmt{p.parseFor()}
	case KwWhile:
		return []Stmt{p.parseWhile()}
	case KwIf:
		return []Stmt{p.parseIf()}
	case KwReturn:
		t := p.next()
		var x Expr
		if !p.at(SEMI) {
			x = p.parseExpr()
		}
		p.expect(SEMI)
		return []Stmt{&ReturnStmt{X: x, P: t.Pos}}
	case LBRACE:
		return []Stmt{p.parseBlock()}
	case KwInt, KwDouble, KwFloat:
		return p.parseDecl()
	case SEMI:
		p.next() // empty statement
		return nil
	case RBRACE, EOF:
		return nil
	default:
		x := p.parseExpr()
		pos := x.Pos()
		p.expect(SEMI)
		return []Stmt{&ExprStmt{X: x, P: pos}}
	}
}

func (p *Parser) parseDecl() []Stmt {
	base := p.parseBaseType()
	var out []Stmt
	for {
		ptr := p.accept(STAR)
		nameTok := p.expect(IDENT)
		typ := &Type{Kind: base, Ptr: ptr}
		for p.at(LBRACK) {
			p.next()
			typ.Dims = append(typ.Dims, p.parseExpr())
			p.expect(RBRACK)
		}
		var init Expr
		if p.accept(ASSIGN) {
			init = p.parseAssignExpr()
		}
		out = append(out, &DeclStmt{Name: nameTok.Text, Type: typ, Init: init,
			P: nameTok.Pos, ID: p.newID()})
		if !p.accept(COMMA) {
			break
		}
	}
	p.expect(SEMI)
	return out
}

func (p *Parser) parseFor() *ForStmt {
	t := p.expect(KwFor)
	f := &ForStmt{P: t.Pos, Pragmas: p.takePragmas()}
	p.expect(LPAREN)
	if !p.at(SEMI) {
		if p.atType() {
			decls := p.parseDeclNoSemi()
			if len(decls) > 0 {
				f.Init = decls[0]
			}
			p.expect(SEMI)
		} else {
			x := p.parseExpr()
			f.Init = &ExprStmt{X: x, P: x.Pos()}
			p.expect(SEMI)
		}
	} else {
		p.next()
	}
	if !p.at(SEMI) {
		f.Cond = p.parseExpr()
	}
	p.expect(SEMI)
	if !p.at(RPAREN) {
		f.Post = p.parseExpr()
	}
	p.expect(RPAREN)
	if p.at(LBRACE) {
		f.Body = p.parseBlock()
	} else {
		stmts := p.parseStmt()
		f.Body = &Block{Stmts: stmts, P: f.P}
	}
	return f
}

func (p *Parser) parseDeclNoSemi() []Stmt {
	base := p.parseBaseType()
	var out []Stmt
	for {
		nameTok := p.expect(IDENT)
		typ := &Type{Kind: base}
		var init Expr
		if p.accept(ASSIGN) {
			init = p.parseAssignExpr()
		}
		out = append(out, &DeclStmt{Name: nameTok.Text, Type: typ, Init: init,
			P: nameTok.Pos, ID: p.newID()})
		if !p.accept(COMMA) {
			break
		}
	}
	return out
}

func (p *Parser) parseWhile() *WhileStmt {
	t := p.expect(KwWhile)
	w := &WhileStmt{P: t.Pos}
	p.expect(LPAREN)
	w.Cond = p.parseExpr()
	p.expect(RPAREN)
	if p.at(LBRACE) {
		w.Body = p.parseBlock()
	} else {
		stmts := p.parseStmt()
		w.Body = &Block{Stmts: stmts, P: w.P}
	}
	return w
}

func (p *Parser) parseIf() *IfStmt {
	t := p.expect(KwIf)
	s := &IfStmt{P: t.Pos}
	p.expect(LPAREN)
	s.Cond = p.parseExpr()
	p.expect(RPAREN)
	if p.at(LBRACE) {
		s.Then = p.parseBlock()
	} else {
		stmts := p.parseStmt()
		s.Then = &Block{Stmts: stmts, P: s.P}
	}
	if p.accept(KwElse) {
		if p.at(KwIf) {
			s.Else = p.parseIf()
		} else if p.at(LBRACE) {
			s.Else = p.parseBlock()
		} else {
			stmts := p.parseStmt()
			s.Else = &Block{Stmts: stmts, P: s.P}
		}
	}
	return s
}

// Expression parsing: assignment > ternary > || > && > equality >
// relational > additive > multiplicative > unary > postfix > primary.

func (p *Parser) parseExpr() Expr { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() Expr {
	lhs := p.parseTernary()
	switch p.cur().Kind {
	case ASSIGN, ADDASSIGN, SUBASSIGN, MULASSIGN, DIVASSIGN, MODASSIGN:
		op := p.next()
		rhs := p.parseAssignExpr()
		return &AssignExpr{Op: op.Kind, LHS: lhs, RHS: rhs, P: op.Pos}
	}
	return lhs
}

func (p *Parser) parseTernary() Expr {
	c := p.parseBinary(0)
	if p.at(QUESTION) {
		q := p.next()
		t := p.parseAssignExpr()
		p.expect(COLON)
		f := p.parseTernary()
		return &CondExpr{Cond: c, Then: t, Else: f, P: q.Pos}
	}
	return c
}

var binPrec = map[TokenKind]int{
	OROR: 1, ANDAND: 2,
	EQ: 3, NEQ: 3,
	LT: 4, GT: 4, LEQ: 4, GEQ: 4,
	PLUS: 5, MINUS: 5,
	STAR: 6, SLASH: 6, PERCENT: 6,
}

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs
		}
		op := p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &BinExpr{Op: op.Kind, X: lhs, Y: rhs, P: op.Pos}
	}
}

func (p *Parser) parseUnary() Expr {
	switch p.cur().Kind {
	case MINUS, NOT, PLUS, AMP:
		op := p.next()
		x := p.parseUnary()
		if op.Kind == PLUS {
			return x
		}
		return &UnExpr{Op: op.Kind, X: x, P: op.Pos}
	case LPAREN:
		// Cast or parenthesised expression.
		if p.peek().Kind == KwInt || p.peek().Kind == KwDouble || p.peek().Kind == KwFloat {
			t := p.next() // (
			base := p.parseBaseType()
			ptr := p.accept(STAR)
			p.expect(RPAREN)
			x := p.parseUnary()
			return &CastExpr{To: &Type{Kind: base, Ptr: ptr}, X: x, P: t.Pos}
		}
		t := p.next()
		x := p.parseExpr()
		p.expect(RPAREN)
		return p.parsePostfix(&ParenExpr{X: x, P: t.Pos})
	}
	return p.parsePostfix(p.parsePrimary())
}

func (p *Parser) parsePostfix(x Expr) Expr {
	for {
		switch p.cur().Kind {
		case LBRACK:
			t := p.next()
			idx := p.parseExpr()
			p.expect(RBRACK)
			x = &IndexExpr{X: x, Idx: idx, P: t.Pos}
		case INC, DEC:
			t := p.next()
			x = &IncDecExpr{Op: t.Kind, X: x, P: t.Pos}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	switch t := p.cur(); t.Kind {
	case IDENT:
		p.next()
		if p.at(LPAREN) {
			p.next()
			call := &CallExpr{Fun: t.Text, P: t.Pos, ID: p.newID()}
			if !p.at(RPAREN) {
				for {
					call.Args = append(call.Args, p.parseAssignExpr())
					if !p.accept(COMMA) {
						break
					}
				}
			}
			p.expect(RPAREN)
			return call
		}
		return &Ident{Name: t.Text, P: t.Pos, ID: p.newID()}
	case INTLIT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.diags = append(p.diags, diagf(p.name, t.Pos, "bad int literal %q", t.Text))
		}
		return &IntLit{V: v, P: t.Pos}
	case FLOATLIT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.diags = append(p.diags, diagf(p.name, t.Pos, "bad float literal %q", t.Text))
		}
		return &FloatLit{V: v, Text: t.Text, P: t.Pos}
	default:
		p.errorf("expected expression, found %s", t)
		return &IntLit{V: 0, P: t.Pos}
	}
}
