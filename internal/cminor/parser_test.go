package cminor

import (
	"strings"
	"testing"
)

const miniKernel = `
void kernel_axpy(int n, double alpha, double x[n], double y[n]) {
  int i;
#pragma omp parallel for num_threads(NT) proc_bind(close)
  for (i = 0; i < n; i++) {
    y[i] = y[i] + alpha * x[i];
  }
}
`

func TestParseFunction(t *testing.T) {
	f, err := Parse("axpy.c", miniKernel)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Func("kernel_axpy")
	if fn == nil {
		t.Fatal("kernel_axpy not found")
	}
	if len(fn.Params) != 4 {
		t.Fatalf("got %d params, want 4", len(fn.Params))
	}
	if !fn.Params[2].Type.IsArray() {
		t.Error("x should be an array parameter")
	}
	if fn.Params[0].Type.Kind != Int {
		t.Error("n should be int")
	}
}

func TestParseAttachesPragmaToFor(t *testing.T) {
	f := MustParse("axpy.c", miniKernel)
	fn := f.Func("kernel_axpy")
	var loops []*ForStmt
	Walk(fn, func(n Node) bool {
		if l, ok := n.(*ForStmt); ok {
			loops = append(loops, l)
		}
		return true
	})
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	if len(loops[0].Pragmas) != 1 {
		t.Fatalf("pragma not attached to loop: %+v", loops[0].Pragmas)
	}
	pr := loops[0].Pragmas[0]
	if !pr.IsOMP() {
		t.Error("pragma should be recognised as OpenMP")
	}
	if v, ok := pr.OMPClause("num_threads"); !ok || v != "NT" {
		t.Errorf("num_threads clause = %q, %v", v, ok)
	}
	if v, ok := pr.OMPClause("proc_bind"); !ok || v != "close" {
		t.Errorf("proc_bind clause = %q, %v", v, ok)
	}
}

func TestParseCommaDeclSplit(t *testing.T) {
	f := MustParse("t.c", "void f(void) { int i, j, k; i = j + k; }")
	fn := f.Func("f")
	decls := 0
	for _, s := range fn.Body.Stmts {
		if _, ok := s.(*DeclStmt); ok {
			decls++
		}
	}
	if decls != 3 {
		t.Errorf("got %d decls, want 3", decls)
	}
}

func TestParseVoidParamList(t *testing.T) {
	// "void f(void)" — the void param shows up as a nameless param; we
	// accept and record it only when it has a name, so expect an error
	// path to be tolerated. Simplest contract: f() and f(void) both parse.
	if _, err := Parse("t.c", "void f() { return; }"); err != nil {
		t.Fatalf("f(): %v", err)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := MustParse("t.c", "void f(int a, int b, int c, int *out) { out[0] = a + b * c; }")
	fn := f.Func("f")
	es := fn.Body.Stmts[0].(*ExprStmt)
	asn := es.X.(*AssignExpr)
	add, ok := asn.RHS.(*BinExpr)
	if !ok || add.Op != PLUS {
		t.Fatalf("rhs = %T, want + at root", asn.RHS)
	}
	mul, ok := add.Y.(*BinExpr)
	if !ok || mul.Op != STAR {
		t.Fatalf("rhs.Y = %T, want *", add.Y)
	}
}

func TestParseTernaryAndCast(t *testing.T) {
	src := "double f(int a, int b) { return a >= b ? (double)a : (double)b; }"
	f := MustParse("t.c", src)
	ret := f.Func("f").Body.Stmts[0].(*ReturnStmt)
	cond, ok := ret.X.(*CondExpr)
	if !ok {
		t.Fatalf("return expr = %T, want CondExpr", ret.X)
	}
	if _, ok := cond.Then.(*CastExpr); !ok {
		t.Errorf("then branch = %T, want CastExpr", cond.Then)
	}
}

func TestParseMultiDimIndex(t *testing.T) {
	f := MustParse("t.c", "void f(int n, double A[n][n]) { A[1][2] = 3.0; }")
	es := f.Func("f").Body.Stmts[0].(*ExprStmt)
	asn := es.X.(*AssignExpr)
	ix, ok := asn.LHS.(*IndexExpr)
	if !ok {
		t.Fatalf("lhs = %T", asn.LHS)
	}
	if _, ok := ix.X.(*IndexExpr); !ok {
		t.Fatalf("expected chained IndexExpr, inner = %T", ix.X)
	}
}

func TestParseScopMarkers(t *testing.T) {
	src := `
void f(int n, double A[n]) {
  int i;
#pragma scop
  for (i = 0; i < n; i++) {
    A[i] = 0.0;
  }
#pragma endscop
}
`
	f := MustParse("t.c", src)
	fn := f.Func("f")
	found := 0
	Walk(fn, func(n Node) bool {
		switch n := n.(type) {
		case *PragmaStmt:
			if n.Pragma.IsScop() {
				found++
			}
		case *ForStmt:
			for _, p := range n.Pragmas {
				if p.IsScop() {
					found++
				}
			}
		}
		return true
	})
	if found != 2 {
		t.Errorf("found %d scop markers, want 2", found)
	}
}

func TestParseErrorReported(t *testing.T) {
	_, err := Parse("bad.c", "void f( { }")
	if err == nil {
		t.Fatal("expected a parse error")
	}
	if !strings.Contains(err.Error(), "bad.c") {
		t.Errorf("error should mention the file name: %v", err)
	}
}

func TestParseForWithDeclInit(t *testing.T) {
	f := MustParse("t.c", "void f(int n, double A[n]) { for (int i = 0; i < n; i++) { A[i] = 1.0; } }")
	loop := f.Func("f").Body.Stmts[0].(*ForStmt)
	if _, ok := loop.Init.(*DeclStmt); !ok {
		t.Fatalf("for init = %T, want DeclStmt", loop.Init)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := MustParse("axpy.c", miniKernel)
	fn := f.Func("kernel_axpy")
	cl := fn.Clone()
	cl.Name = "kernel_axpy_v1"
	// Mutate a pragma in the clone; the original must be unaffected.
	var loop *ForStmt
	Walk(cl, func(n Node) bool {
		if l, ok := n.(*ForStmt); ok {
			loop = l
		}
		return true
	})
	loop.Pragmas[0].Text = "omp parallel for num_threads(4)"
	var orig *ForStmt
	Walk(fn, func(n Node) bool {
		if l, ok := n.(*ForStmt); ok {
			orig = l
		}
		return true
	})
	if orig.Pragmas[0].Text == loop.Pragmas[0].Text {
		t.Error("clone shares pragma storage with original")
	}
	if fn.Name != "kernel_axpy" {
		t.Error("clone renamed original")
	}
}

func TestParseGlobalDecl(t *testing.T) {
	f := MustParse("t.c", "int threshold = 10;\nvoid f() { return; }")
	if len(f.Globals) != 1 || f.Globals[0].Name != "threshold" {
		t.Fatalf("globals = %+v", f.Globals)
	}
}

func TestParsePrototype(t *testing.T) {
	f := MustParse("t.c", "void g(int n);\nvoid f() { g(3); }")
	var g *FuncDecl
	for _, fn := range f.Funcs {
		if fn.Name == "g" {
			g = fn
		}
	}
	if g == nil || g.Body != nil {
		t.Fatalf("prototype g not recorded correctly: %+v", g)
	}
}

func TestParseIfElseChain(t *testing.T) {
	src := `
int f(int a) {
  if (a > 10) { return 2; }
  else if (a > 5) { return 1; }
  else { return 0; }
}
`
	f := MustParse("t.c", src)
	s := f.Func("f").Body.Stmts[0].(*IfStmt)
	if _, ok := s.Else.(*IfStmt); !ok {
		t.Fatalf("else = %T, want IfStmt", s.Else)
	}
}
