package cminor

import (
	"math"
	"testing"
)

// Per-pass gate coverage: every O3 pass individually off and on (all
// eight subsets) must keep golden walker parity — same return value,
// bit-identical arrays, identical step counts — on all ten corpus
// kernels. This is what makes the finer-than-four-points knob grid
// safe for the autotuner to explore blindly.

var passMaskSubsets = []PassMask{
	0,
	PassInline,
	PassBCE,
	PassUnroll,
	AllPasses &^ PassInline,
	AllPasses &^ PassBCE,
	AllPasses &^ PassUnroll,
	AllPasses,
}

func TestPassMaskGoldenParity(t *testing.T) {
	for _, k := range BenchKernels {
		t.Run(k.Name, func(t *testing.T) {
			f := MustParse(k.File, k.Src)
			w := NewWalker(f)
			w.MaxSteps = 1 << 40
			wArgs := k.Args()
			wv, werr := w.Call(k.Fn, wArgs...)
			if werr != nil {
				t.Fatalf("walker: %v", werr)
			}
			prog, err := Compile(f, WithMaxSteps(1<<40))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range passMaskSubsets {
				vp, err := prog.Variant(WithOptLevel(O3), WithPasses(m))
				if err != nil {
					t.Fatalf("Variant(O3, %v): %v", m, err)
				}
				if vp.Passes() != m {
					t.Fatalf("Passes() = %v, want %v", vp.Passes(), m)
				}
				inst := vp.NewInstance()
				args := k.Args()
				v, err := inst.Call(k.Fn, args...)
				if err != nil {
					t.Fatalf("O3[%v]: %v", m, err)
				}
				if !sameValue(wv, v) {
					t.Fatalf("O3[%v]: return value diverged from walker", m)
				}
				if inst.Steps() != w.Steps {
					t.Fatalf("O3[%v]: %d steps, walker charged %d", m, inst.Steps(), w.Steps)
				}
				for i := range wArgs {
					wa, ok := wArgs[i].(*Array)
					if !ok {
						continue
					}
					va := args[i].(*Array)
					for j := range wa.Data {
						if math.Float64bits(wa.Data[j]) != math.Float64bits(va.Data[j]) {
							t.Fatalf("O3[%v]: array %d diverges at flat index %d: walker=%g got=%g",
								m, i, j, wa.Data[j], va.Data[j])
						}
					}
				}
			}
		})
	}
}

// TestWithPassesValidation: unknown pass bits are a positioned
// diagnostic from Compile and Variant, like an unknown opt level —
// never silently masked off.
func TestWithPassesValidation(t *testing.T) {
	f := MustParse("t.c", `void f() { int x; x = 1; }`)
	if _, err := Compile(f, WithPasses(0x80)); err == nil {
		t.Fatal("Compile accepted unknown pass bits")
	}
	prog, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Variant(WithPasses(AllPasses | 0x40)); err == nil {
		t.Fatal("Variant accepted unknown pass bits")
	}
	if err := prog.CheckOptions(WithPasses(0x80)); err == nil {
		t.Fatal("CheckOptions accepted unknown pass bits")
	}
	if err := prog.CheckOptions(WithOptLevel(O3+1), WithPasses(PassBCE)); err == nil {
		t.Fatal("CheckOptions accepted an unknown opt level")
	}
	if err := prog.CheckOptions(WithOptLevel(O3), WithPasses(PassInline|PassUnroll)); err != nil {
		t.Fatalf("CheckOptions rejected a valid set: %v", err)
	}
	// Defaults: a plain Compile carries AllPasses (inert below O3).
	if prog.Passes() != AllPasses {
		t.Fatalf("default pass mask = %v, want AllPasses", prog.Passes())
	}
}

// TestPassMaskString pins the names used in variant labels.
func TestPassMaskString(t *testing.T) {
	cases := []struct {
		m    PassMask
		want string
	}{
		{0, "none"},
		{PassInline, "inline"},
		{PassBCE, "bce"},
		{PassUnroll, "unroll"},
		{PassInline | PassUnroll, "inline+unroll"},
		{AllPasses, "inline+bce+unroll"},
	}
	for _, tc := range cases {
		if got := tc.m.String(); got != tc.want {
			t.Fatalf("PassMask(%#x).String() = %q, want %q", uint8(tc.m), got, tc.want)
		}
	}
}

// TestPassMaskNoneMatchesO2 spot-checks that O3 with every pass gated
// off behaves like O2 where it is observable: the norms kernel's leaf
// call only inlines (and its loop only fast-paths) when PassInline is
// on, so allocation/step profiles differ — but results never do.
func TestPassMaskNoneMatchesO2(t *testing.T) {
	k := BenchKernels[len(BenchKernels)-1] // norms, the inliner showcase
	if k.Name != "norms" {
		t.Fatal("corpus order changed; update the test")
	}
	f := MustParse(k.File, k.Src)
	prog, err := Compile(f, WithMaxSteps(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := prog.Variant(WithOptLevel(O2))
	if err != nil {
		t.Fatal(err)
	}
	bare, err := prog.Variant(WithOptLevel(O3), WithPasses(0))
	if err != nil {
		t.Fatal(err)
	}
	i2, ib := o2.NewInstance(), bare.NewInstance()
	a2, ab := k.Args(), k.Args()
	if _, err := i2.Call(k.Fn, a2...); err != nil {
		t.Fatal(err)
	}
	if _, err := ib.Call(k.Fn, ab...); err != nil {
		t.Fatal(err)
	}
	if i2.Steps() != ib.Steps() {
		t.Fatalf("O3[none] charged %d steps, O2 charged %d", ib.Steps(), i2.Steps())
	}
	out2, outb := a2[2].(*Array), ab[2].(*Array)
	for j := range out2.Data {
		if math.Float64bits(out2.Data[j]) != math.Float64bits(outb.Data[j]) {
			t.Fatalf("O3[none] diverges from O2 at %d", j)
		}
	}
}
