package cminor

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// poolSrc resets its global scratch at entry, so pooled sessions are
// correct across checkouts — while still giving a poisoned session's
// repair path a real global frame to rebuild.
const poolSrc = `
double acc;
double probe(int n, double a[n]) {
  int i;
  acc = 0.0;
  for (i = 0; i < n; i++) {
    acc = acc + a[i] * a[i];
  }
  return acc;
}
`

func poolArgs(n int) []any {
	a := NewArray(n)
	for i := range a.Data {
		a.Data[i] = float64(i%7) * 0.25
	}
	return []any{IntV(int64(n)), a}
}

// TestInstancePoolStress churns an InstancePool from 12 goroutines
// under scripted internal faults (fallback off, so each fault poisons
// its session) and holds the pool to its accounting contract: sessions
// never leak (Created == Free once everything is returned, InUse == 0),
// the pool stays bounded by peak concurrency, every poisoned session is
// repaired on Put, and every successful call is bit-exact against a
// direct Instance.Call. CI runs this under -race; it is the pool's
// lock-discipline test as much as its leak test.
func TestInstancePoolStress(t *testing.T) {
	const (
		goroutines = 12
		perG       = 50
		total      = goroutines * perG
	)
	// Six faults spread through the run; each fires exactly once, at
	// its Nth matching call, whichever goroutine lands on it.
	faultCalls := []int64{5, 33, 77, 120, 250, 333}
	rules := make([]FaultRule, len(faultCalls))
	for i, c := range faultCalls {
		rules[i] = FaultRule{
			Backend: BackendCompiled, Opt: O2, Fn: "probe",
			Call: c, Kind: FaultPanic, Point: FaultAtExit,
		}
	}
	prog := mustProgram(t, poolSrc, WithFaultInjector(NewScriptedInjector(rules...)))

	// The reference value comes from an injector-free twin, so the
	// reference call cannot consume a scripted fault.
	want, err := mustProgram(t, poolSrc).NewInstance().Call("probe", poolArgs(64)...)
	if err != nil {
		t.Fatal(err)
	}

	pool := prog.NewPool()
	var faults, ok atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				inst := pool.Get()
				v, err := inst.Call("probe", poolArgs(64)...)
				switch {
				case err != nil:
					var ifault *InternalFault
					if !errors.As(err, &ifault) {
						t.Errorf("non-contained error: %v", err)
					} else {
						faults.Add(1)
						if !inst.Poisoned() {
							t.Error("faulted session (no fallback) should be poisoned")
						}
					}
				case v != want:
					t.Errorf("got %v, want %v", v, want)
				default:
					ok.Add(1)
				}
				pool.Put(inst)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if faults.Load() != int64(len(faultCalls)) {
		t.Fatalf("observed %d faults, scripted %d", faults.Load(), len(faultCalls))
	}
	if ok.Load() != int64(total-len(faultCalls)) {
		t.Fatalf("%d clean calls, want %d", ok.Load(), total-len(faultCalls))
	}

	st := pool.Stats()
	if st.InUse != 0 {
		t.Fatalf("leaked checkouts: %+v", st)
	}
	if st.Created != st.Free {
		t.Fatalf("accounting broken (Created != Free with all returned): %+v", st)
	}
	if st.Created > goroutines {
		t.Fatalf("pool unbounded: created %d sessions for %d concurrent users", st.Created, goroutines)
	}
	if st.Repaired != int64(len(faultCalls)) {
		t.Fatalf("repaired %d poisoned sessions, want %d: %+v", st.Repaired, len(faultCalls), st)
	}
	if st.Dropped != 0 {
		t.Fatalf("unexpected drops: %+v", st)
	}

	// Repaired sessions must serve correct values again.
	inst := pool.Get()
	if v, err := inst.Call("probe", poolArgs(64)...); err != nil || v != want {
		t.Fatalf("post-churn call: (%v, %v), want (%v, nil)", v, err, want)
	}
	pool.Put(inst)

	// Foreign and nil Puts are dropped, never pooled.
	pool.Put(nil)
	pool.Put(mustProgram(t, poolSrc).NewInstance())
	st = pool.Stats()
	if st.Dropped != 2 {
		t.Fatalf("drop accounting: %+v", st)
	}
	if st.Created != st.Free || st.InUse != 0 {
		t.Fatalf("drops disturbed the free list: %+v", st)
	}
}
