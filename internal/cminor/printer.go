package cminor

import (
	"fmt"
	"strings"
)

// Print renders the file back to C-like source text.
func Print(f *File) string {
	var pr printer
	pr.file(f)
	return pr.b.String()
}

// PrintFunc renders a single function definition.
func PrintFunc(fn *FuncDecl) string {
	var pr printer
	pr.fun(fn)
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (pr *printer) line(format string, args ...any) {
	pr.b.WriteString(strings.Repeat("  ", pr.indent))
	fmt.Fprintf(&pr.b, format, args...)
	pr.b.WriteByte('\n')
}

func (pr *printer) file(f *File) {
	for _, g := range f.Globals {
		pr.decl(g)
	}
	for i, fn := range f.Funcs {
		if i > 0 || len(f.Globals) > 0 {
			pr.b.WriteByte('\n')
		}
		pr.fun(fn)
	}
}

func (pr *printer) fun(fn *FuncDecl) {
	for _, p := range fn.Pragmas {
		pr.line("#pragma %s", p.Text)
	}
	params := make([]string, len(fn.Params))
	for i, p := range fn.Params {
		params[i] = typeString(p.Type, p.Name)
	}
	if fn.Body == nil {
		pr.line("%s %s(%s);", typeString(fn.Ret, ""), fn.Name, strings.Join(params, ", "))
		return
	}
	pr.line("%s %s(%s) {", typeString(fn.Ret, ""), fn.Name, strings.Join(params, ", "))
	pr.indent++
	for _, s := range fn.Body.Stmts {
		pr.stmt(s)
	}
	pr.indent--
	pr.line("}")
}

// typeString renders a declaration of name with type t ("double A[n][m]",
// "int i", "double *out").
func typeString(t *Type, name string) string {
	if t == nil {
		return name
	}
	s := t.Kind.String()
	if t.Ptr {
		s += " *" + name
	} else if name != "" {
		s += " " + name
	}
	for _, d := range t.Dims {
		s += "[" + ExprString(d) + "]"
	}
	return s
}

func (pr *printer) decl(d *DeclStmt) {
	if d.Init != nil {
		pr.line("%s = %s;", typeString(d.Type, d.Name), ExprString(d.Init))
	} else {
		pr.line("%s;", typeString(d.Type, d.Name))
	}
}

func (pr *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		pr.line("{")
		pr.indent++
		for _, st := range s.Stmts {
			pr.stmt(st)
		}
		pr.indent--
		pr.line("}")
	case *DeclStmt:
		pr.decl(s)
	case *ExprStmt:
		pr.line("%s;", ExprString(s.X))
	case *ForStmt:
		for _, p := range s.Pragmas {
			pr.line("#pragma %s", p.Text)
		}
		init, cond, post := "", "", ""
		switch in := s.Init.(type) {
		case *DeclStmt:
			init = typeString(in.Type, in.Name)
			if in.Init != nil {
				init += " = " + ExprString(in.Init)
			}
		case *ExprStmt:
			init = ExprString(in.X)
		}
		if s.Cond != nil {
			cond = ExprString(s.Cond)
		}
		if s.Post != nil {
			post = ExprString(s.Post)
		}
		pr.line("for (%s; %s; %s) {", init, cond, post)
		pr.indent++
		for _, st := range s.Body.Stmts {
			pr.stmt(st)
		}
		pr.indent--
		pr.line("}")
	case *WhileStmt:
		pr.line("while (%s) {", ExprString(s.Cond))
		pr.indent++
		for _, st := range s.Body.Stmts {
			pr.stmt(st)
		}
		pr.indent--
		pr.line("}")
	case *IfStmt:
		pr.line("if (%s) {", ExprString(s.Cond))
		pr.indent++
		for _, st := range s.Then.Stmts {
			pr.stmt(st)
		}
		pr.indent--
		switch e := s.Else.(type) {
		case nil:
			pr.line("}")
		case *IfStmt:
			pr.b.WriteString(strings.Repeat("  ", pr.indent))
			pr.b.WriteString("} else ")
			// Render the else-if chain without extra indentation.
			rest := strings.TrimLeft(renderStmt(e, pr.indent), " ")
			pr.b.WriteString(rest)
		case *Block:
			pr.line("} else {")
			pr.indent++
			for _, st := range e.Stmts {
				pr.stmt(st)
			}
			pr.indent--
			pr.line("}")
		default:
			pr.line("} else {")
			pr.indent++
			pr.stmt(e)
			pr.indent--
			pr.line("}")
		}
	case *ReturnStmt:
		if s.X != nil {
			pr.line("return %s;", ExprString(s.X))
		} else {
			pr.line("return;")
		}
	case *PragmaStmt:
		pr.line("#pragma %s", s.Pragma.Text)
	}
}

func renderStmt(s Stmt, indent int) string {
	var pr printer
	pr.indent = indent
	pr.stmt(s)
	return pr.b.String()
}

// ExprString renders an expression.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *Ident:
		return e.Name
	case *IntLit:
		return fmt.Sprintf("%d", e.V)
	case *FloatLit:
		if e.Text != "" {
			return e.Text
		}
		return fmt.Sprintf("%g", e.V)
	case *BinExpr:
		return fmt.Sprintf("%s %s %s", ExprString(e.X), kindNames[e.Op], ExprString(e.Y))
	case *UnExpr:
		return kindNames[e.Op] + ExprString(e.X)
	case *AssignExpr:
		return fmt.Sprintf("%s %s %s", ExprString(e.LHS), kindNames[e.Op], ExprString(e.RHS))
	case *IncDecExpr:
		return ExprString(e.X) + kindNames[e.Op]
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ExprString(e.X), ExprString(e.Idx))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Fun, strings.Join(args, ", "))
	case *CondExpr:
		return fmt.Sprintf("%s ? %s : %s", ExprString(e.Cond), ExprString(e.Then), ExprString(e.Else))
	case *ParenExpr:
		return "(" + ExprString(e.X) + ")"
	case *CastExpr:
		return fmt.Sprintf("(%s)%s", typeString(e.To, ""), ExprString(e.X))
	}
	return "?"
}

// LogicalLOC counts logical lines of code in the subtree rooted at n,
// following the convention used by the paper's Table I: every
// declaration, simple statement, loop/branch header, pragma line and
// function signature counts as one logical line; braces do not count.
func LogicalLOC(n Node) int {
	loc := 0
	switch n := n.(type) {
	case nil:
		return 0
	case *File:
		for _, g := range n.Globals {
			loc += LogicalLOC(g)
		}
		for _, fn := range n.Funcs {
			loc += LogicalLOC(fn)
		}
	case *FuncDecl:
		loc = 1 + len(n.Pragmas) // signature + attached pragmas
		if n.Body != nil {
			for _, s := range n.Body.Stmts {
				loc += LogicalLOC(s)
			}
		}
	case *Block:
		for _, s := range n.Stmts {
			loc += LogicalLOC(s)
		}
	case *DeclStmt, *ExprStmt, *ReturnStmt, *PragmaStmt:
		loc = 1
	case *ForStmt:
		loc = 1 + len(n.Pragmas)
		if n.Body != nil {
			loc += LogicalLOC(n.Body)
		}
	case *WhileStmt:
		loc = 1
		if n.Body != nil {
			loc += LogicalLOC(n.Body)
		}
	case *IfStmt:
		loc = 1
		if n.Then != nil {
			loc += LogicalLOC(n.Then)
		}
		if n.Else != nil {
			loc += LogicalLOC(n.Else)
		}
	}
	return loc
}
