package cminor

import (
	"strings"
	"testing"
)

func TestPrintRoundTrip(t *testing.T) {
	f := MustParse("axpy.c", miniKernel)
	out := Print(f)
	// The printed source must re-parse to a file with the same shape.
	f2, err := Parse("axpy2.c", out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, out)
	}
	if len(f2.Funcs) != len(f.Funcs) {
		t.Fatalf("func count changed: %d -> %d", len(f.Funcs), len(f2.Funcs))
	}
	if LogicalLOC(f) != LogicalLOC(f2) {
		t.Errorf("LOC changed across round trip: %d -> %d", LogicalLOC(f), LogicalLOC(f2))
	}
}

func TestPrintContainsPragma(t *testing.T) {
	f := MustParse("axpy.c", miniKernel)
	out := Print(f)
	if !strings.Contains(out, "#pragma omp parallel for num_threads(NT) proc_bind(close)") {
		t.Errorf("pragma missing from output:\n%s", out)
	}
}

func TestPrintFuncPragmas(t *testing.T) {
	f := MustParse("t.c", "void f() { return; }")
	fn := f.Func("f")
	fn.Pragmas = append(fn.Pragmas, &Pragma{Text: `GCC optimize ("O2")`})
	out := PrintFunc(fn)
	if !strings.HasPrefix(out, "#pragma GCC optimize") {
		t.Errorf("GCC pragma should precede the function:\n%s", out)
	}
}

func TestLogicalLOCCounting(t *testing.T) {
	src := `
void f(int n, double a[n]) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] = 0.0;
  }
}
`
	f := MustParse("t.c", src)
	// signature(1) + decl(1) + for(1) + assign(1) = 4
	if got := LogicalLOC(f); got != 4 {
		t.Errorf("LOC = %d, want 4", got)
	}
}

func TestLogicalLOCCountsPragmas(t *testing.T) {
	f := MustParse("axpy.c", miniKernel)
	// signature + decl + pragma + for + assign = 5
	if got := LogicalLOC(f); got != 5 {
		t.Errorf("LOC = %d, want 5", got)
	}
}

func TestLogicalLOCIfElse(t *testing.T) {
	src := `
int f(int a) {
  if (a > 0) {
    return 1;
  } else {
    return 0;
  }
}
`
	f := MustParse("t.c", src)
	// signature + if + 2 returns = 4
	if got := LogicalLOC(f); got != 4 {
		t.Errorf("LOC = %d, want 4", got)
	}
}

func TestExprStringPrecedenceParens(t *testing.T) {
	f := MustParse("t.c", "void f(int a, int b, double z[4]) { z[0] = (a + b) * 2; }")
	out := Print(f)
	if !strings.Contains(out, "(a + b) * 2") {
		t.Errorf("parens lost: %s", out)
	}
}
