package cminor

import "math"

// Value-range analysis (the second O3 pass): prove that a subscript
// expression stays inside its array dimension for every iteration of
// the innermost counted loop, so the access can skip its per-iteration
// bounds check entirely. The analysis piggybacks on the structures the
// earlier passes already built — the resolver's slot bindings decide
// which identifiers are the induction variable, the typechecker's kind
// tables restrict composites to exact int64 arithmetic, and the loop
// optimizer's invariance sets say which operands are frozen for the
// whole loop.
//
// Ranges are symbolic until loop entry: an intervalFn evaluates the
// interval of its expression over iv ∈ [iv0, ivLast] in the loop's
// versioning preamble, where the concrete bounds and every invariant
// operand are known. Composites combine child intervals with corner
// arithmetic (+, -, *, unary -); every corner is overflow-checked, so a
// proof only succeeds when the per-iteration evaluation provably stays
// in int64 — otherwise setup fails and the loop runs the fully-checked
// safe body, which faults exactly where the unoptimized pipeline would.
// Because each node's runtime value always lies inside its (possibly
// over-approximate) interval, a successful proof covers correlated
// operands such as the diagonal A[i][i] too.

// intervalFn evaluates the value interval of one expression over the
// iteration range [iv0, ivLast]. ok=false means the interval could not
// be established (overflow in a corner) and the caller must deopt.
type intervalFn func(fr *frame, iv0, ivLast int64) (lo, hi int64, ok bool)

// ivInterval builds an interval evaluator for e over the innermost
// counted loop's induction range, or nil when e's range cannot be
// bounded: e must be the induction variable, a pure loop-invariant
// expression, or a statically-int composite of +, -, * and unary -
// over such operands.
func (c *compiler) ivInterval(e Expr, lc *loopCtx) intervalFn {
	e = stripParens(e)
	if id, ok := e.(*Ident); ok && c.isIVIdent(id, lc.ivSlot) {
		return func(_ *frame, iv0, ivLast int64) (int64, int64, bool) {
			return iv0, ivLast, true
		}
	}
	if c.invariant(e, lc) {
		// Pure and frozen across the loop: one evaluation at proof time
		// equals every per-iteration evaluation.
		f := c.asInt(e)
		return func(fr *frame, _, _ int64) (int64, int64, bool) {
			v := f(fr)
			return v, v, true
		}
	}
	// IV-dependent composites must be statically int so the interval's
	// int64 corner arithmetic models the per-iteration evaluation
	// exactly.
	k := c.kindOf(e)
	c.constKind(e, &k)
	if k != kInt {
		return nil
	}
	switch e := e.(type) {
	case *UnExpr:
		if e.Op != MINUS {
			return nil
		}
		x := c.ivInterval(e.X, lc)
		if x == nil {
			return nil
		}
		return func(fr *frame, iv0, ivLast int64) (int64, int64, bool) {
			xl, xh, ok := x(fr, iv0, ivLast)
			if !ok {
				return 0, 0, false
			}
			lo, ok1 := negOv(xh)
			hi, ok2 := negOv(xl)
			return lo, hi, ok1 && ok2
		}
	case *BinExpr:
		var comb func(xl, xh, yl, yh int64) (int64, int64, bool)
		switch e.Op {
		case PLUS:
			comb = ivlAdd
		case MINUS:
			comb = ivlSub
		case STAR:
			comb = ivlMul
		default:
			return nil // / and % can fault; their reordering is not free
		}
		x := c.ivInterval(e.X, lc)
		if x == nil {
			return nil
		}
		y := c.ivInterval(e.Y, lc)
		if y == nil {
			return nil
		}
		return func(fr *frame, iv0, ivLast int64) (int64, int64, bool) {
			xl, xh, ok := x(fr, iv0, ivLast)
			if !ok {
				return 0, 0, false
			}
			yl, yh, ok := y(fr, iv0, ivLast)
			if !ok {
				return 0, 0, false
			}
			return comb(xl, xh, yl, yh)
		}
	}
	return nil
}

// tryRangeHoist registers an hRange access for a subscript chain whose
// dimensions all have provable intervals: the preamble proves each
// interval against the array bound and the per-iteration access
// computes its flat offset unchecked. Returns nil when any dimension is
// unprovable (the access then compiles fully checked).
func (c *compiler) tryRangeHoist(root *Ident, subs []Expr, lc *loopCtx) *hoistAccess {
	ivals := make([]intervalFn, len(subs))
	idx := make([]evalIntFn, len(subs))
	for i, sx := range subs {
		ivals[i] = c.ivInterval(sx, lc)
		if ivals[i] == nil {
			return nil
		}
		idx[i] = c.asInt(sx)
	}
	h := &hoistAccess{hslot: c.numHoist, pattern: hRange, rank: len(subs),
		ivSlot: lc.ivSlot, arrGet: c.arrayRef(root), ivals: ivals, idxFns: idx}
	c.numHoist++
	lc.hoisted = append(lc.hoisted, h)
	return h
}

// ---- overflow-checked interval corner arithmetic ----

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func subOv(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func negOv(a int64) (int64, bool) {
	if a == math.MinInt64 {
		return 0, false
	}
	return -a, true
}

// ivlAdd/ivlSub/ivlMul combine child intervals. The extremes of each
// operation over a box of operands are attained at corners, so if every
// corner is representable the true per-iteration value is too.
func ivlAdd(xl, xh, yl, yh int64) (int64, int64, bool) {
	lo, ok1 := addOv(xl, yl)
	hi, ok2 := addOv(xh, yh)
	return lo, hi, ok1 && ok2
}

func ivlSub(xl, xh, yl, yh int64) (int64, int64, bool) {
	lo, ok1 := subOv(xl, yh)
	hi, ok2 := subOv(xh, yl)
	return lo, hi, ok1 && ok2
}

func ivlMul(xl, xh, yl, yh int64) (int64, int64, bool) {
	c0, ok0 := mulOv(xl, yl)
	c1, ok1 := mulOv(xl, yh)
	c2, ok2 := mulOv(xh, yl)
	c3, ok3 := mulOv(xh, yh)
	if !ok0 || !ok1 || !ok2 || !ok3 {
		return 0, 0, false
	}
	lo, hi := c0, c0
	for _, v := range [...]int64{c1, c2, c3} {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}
