package cminor

import (
	"math"
	"strings"
	"testing"
)

// numHoistAt compiles src at the given level and reports how many
// subscripts the named function hoisted.
func numHoistAt(t *testing.T, src, fn string, lvl OptLevel) int {
	t.Helper()
	prog, err := Compile(MustParse("t.c", src), WithOptLevel(lvl))
	if err != nil {
		t.Fatal(err)
	}
	return prog.funcs[fn].numHoist
}

// TestRangeDiagonalProven: diagonal accesses (both subscripts the
// induction variable) miss every strength-reduction pattern but are
// provable by the range analysis — O3 must hoist them, O2 must not.
func TestRangeDiagonalProven(t *testing.T) {
	src := `
double f(int n, double A[n][n]) {
  int i;
  double s = 0.0;
  for (i = 0; i < n; i++) {
    s = s + A[i][i] * A[i][i + 1 - 1];
  }
  return s;
}`
	if got := numHoistAt(t, src, "f", O2); got != 0 {
		t.Errorf("O2 hoisted %d diagonal accesses, want 0", got)
	}
	if got := numHoistAt(t, src, "f", O3); got != 2 {
		t.Errorf("O3 hoisted %d accesses, want both diagonals", got)
	}
	mk := func() []any {
		A := NewArray(7, 7)
		for i := range A.Data {
			A.Data[i] = float64(i%5) * 0.5
		}
		return []any{IntV(7), A}
	}
	diffCheck(t, "diagonal", src, "f", mk)
}

// TestRangeGeneralAffineProven: an index combining the induction
// variable with an invariant scalar (i + j, 2 * i) is beyond the
// strength-reduction patterns but inside the interval analysis.
func TestRangeGeneralAffineProven(t *testing.T) {
	src := `
double f(int n, int m, double a[n], double b[n]) {
  int i; int j;
  double s = 0.0;
  for (j = 0; j < m; j++) {
    for (i = 0; i < m; i++) {
      s = s + a[i + j] + b[2 * i];
    }
  }
  return s;
}`
	if got := numHoistAt(t, src, "f", O3); got < 2 {
		t.Errorf("O3 hoisted %d accesses, want a[i+j] and b[2*i] proven", got)
	}
	mk := func() []any {
		a, b := NewArray(10), NewArray(10)
		for i := range a.Data {
			a.Data[i] = float64(i) * 1.25
			b.Data[i] = float64(i%3) + 0.5
		}
		return []any{IntV(10), IntV(5), a, b}
	}
	diffCheck(t, "general-affine", src, "f", mk)
}

// TestRangeUnprovenFaultFallback: when the proof fails at loop entry
// (the range really is out of bounds), the loop must run the checked
// body and fault at the walker's exact iteration with identical partial
// state. diffCheck compares partial arrays on the error path.
func TestRangeUnprovenFaultFallback(t *testing.T) {
	src := `
double f(int n, int m, double A[n][n]) {
  int i;
  double s = 0.0;
  for (i = 0; i < m; i++) {
    A[i][i] = A[i][i] + 1.0;
    s = s + A[i][i];
  }
  return s;
}`
	for _, m := range []int64{4, 9} { // m=9 walks the diagonal off a 4×4 array
		mk := func() []any {
			A := NewArray(4, 4)
			for i := range A.Data {
				A.Data[i] = float64(i) * 0.25
			}
			return []any{IntV(4), IntV(m), A}
		}
		diffCheck(t, "diag-fault", src, "f", mk)
	}
}

// TestRangeOverflowDeopt: a subscript whose interval corners overflow
// int64 must fail the proof and fault through the checked body with the
// positioned diagnostic, never wrap into a bogus "in bounds" access.
func TestRangeOverflowDeopt(t *testing.T) {
	src := `
double f(double a[8]) {
  int i;
  double s = 0.0;
  for (i = 1; i < 9223372036854775807; i++) {
    s = s + a[i * 4611686018427387904];
  }
  return s;
}`
	_, _, werr, cerr, _, _ := runBoth(t, src, "f", func() []any { return []any{NewArray(8)} })
	if werr == nil || cerr == nil {
		t.Fatalf("expected faults, walker=%v compiled=%v", werr, cerr)
	}
	prog, err := Compile(MustParse("t.c", src), WithOptLevel(O3))
	if err != nil {
		t.Fatal(err)
	}
	_, o3err := prog.NewInstance().Call("f", NewArray(8))
	if o3err == nil || !strings.Contains(o3err.Error(), "out of range") ||
		!strings.Contains(o3err.Error(), "t.c:") {
		t.Errorf("O3 fault should be the positioned range error, got %v", o3err)
	}
}

// TestRangeTriangularKernels: triangular loops (bound is the outer IV)
// drive the interval proof through runtime-evaluated invariant bounds —
// the trisolv/cholesky shape.
func TestRangeTriangularKernels(t *testing.T) {
	diffCheck(t, "trisolv", benchTrisolvSrc, "trisolv", func() []any {
		n := 9
		L, x, b := NewArray(n, n), NewArray(n), NewArray(n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				L.Set(float64(i+j)/4.0+1.0, i, j)
			}
			b.Data[i] = float64(i%5) + 0.5
		}
		return []any{IntV(int64(n)), L, x, b}
	})
	diffCheck(t, "cholesky", benchCholeskySrc, "cholesky", func() []any {
		n := 8
		A := NewArray(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := 0.1 * float64(i*j%7)
				if i == j {
					v = float64(n) + 2.0 // diagonally dominant → SPD-ish
				}
				A.Set(v, i, j)
			}
		}
		return []any{IntV(int64(n)), A}
	})
	diffCheck(t, "mvt", benchMvtSrc, "mvt", func() []any {
		n := 9
		vec := func() *Array {
			a := NewArray(n)
			for i := range a.Data {
				a.Data[i] = float64(i%4) * 0.75
			}
			return a
		}
		A := NewArray(n, n)
		for i := range A.Data {
			A.Data[i] = float64(i%6) * 0.3
		}
		return []any{IntV(int64(n)), vec(), vec(), vec(), vec(), A}
	})
}

// TestIntervalCornerArithmetic unit-tests the overflow-checked corner
// helpers at their extremes.
func TestIntervalCornerArithmetic(t *testing.T) {
	maxI, minI := int64(math.MaxInt64), int64(math.MinInt64)
	if _, ok := addOv(maxI, 1); ok {
		t.Error("addOv(max, 1) must overflow")
	}
	if v, ok := addOv(maxI, -1); !ok || v != maxI-1 {
		t.Errorf("addOv(max, -1) = %d,%v", v, ok)
	}
	if _, ok := subOv(minI, 1); ok {
		t.Error("subOv(min, 1) must overflow")
	}
	if _, ok := subOv(0, minI); ok {
		t.Error("subOv(0, min) must overflow (-min is not representable)")
	}
	if _, ok := mulOv(minI, -1); ok {
		t.Error("mulOv(min, -1) must overflow")
	}
	if _, ok := mulOv(1<<32, 1<<32); ok {
		t.Error("mulOv(2^32, 2^32) must overflow")
	}
	if v, ok := mulOv(1<<31, 1<<31); !ok || v != 1<<62 {
		t.Errorf("mulOv(2^31, 2^31) = %d,%v, want 2^62", v, ok)
	}
	if v, ok := mulOv(-(1 << 20), 1<<20); !ok || v != -(1<<40) {
		t.Errorf("mulOv(-2^20, 2^20) = %d,%v", v, ok)
	}
	if _, ok := negOv(minI); ok {
		t.Error("negOv(min) must overflow")
	}
	// Corners: -3·-5=15, -3·4=-12, 2·-5=-10, 2·4=8.
	if lo, hi, ok := ivlMul(-3, 2, -5, 4); !ok || lo != -12 || hi != 15 {
		t.Errorf("ivlMul([-3,2],[-5,4]) = [%d,%d],%v, want [-12,15]", lo, hi, ok)
	}
	if lo, hi, ok := ivlSub(0, 10, -4, 6); !ok || lo != -6 || hi != 14 {
		t.Errorf("ivlSub([0,10],[-4,6]) = [%d,%d],%v, want [-6,14]", lo, hi, ok)
	}
}
