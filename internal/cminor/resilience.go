package cminor

import (
	"context"
	"fmt"
	"math"
)

// Fault containment and graceful degradation. The engine's optimized
// backends — the closure compiler at O1–O3 and the flat-bytecode
// machine at O4 — are large, aggressive lowerings; a lowering bug, a
// bad hoist proof or an index error inside them must not take down a
// process that serves many tenants from one shared Program. This file
// implements the supervisor tier:
//
//	detect    every call runs inside a recover boundary that separates
//	          program-level faults (positioned *Diag, ctx cancellation,
//	          step budget) from internal engine panics;
//	contain   an internal panic becomes a structured *InternalFault
//	          carrying the variant's full knob coordinates and the
//	          recovered value + stack — the process never dies;
//	rollback  with WithFallback enabled, mutable state visible to the
//	          caller (the instance's global frame, argument arrays and
//	          cells) is snapshotted on the way in and restored after an
//	          internal fault, so a half-written attempt leaves no trace;
//	fallback  the call is transparently re-executed once on the trusted
//	          reference tier (the generic O0 closures), so the caller
//	          sees a correct result plus an introspectable "degraded"
//	          flag (Instance.LastCallDegraded) instead of an error;
//	quarantine the autotuner (internal/cminor/autotune) reads the same
//	          introspection taps to pull a faulting variant out of
//	          routing with exponential backoff.
//
// Containment is always on. Rollback + fallback are opt-in
// (WithFallback) because the snapshot is a real copy of the call's
// mutable state; without it an internal fault poisons the instance
// (Instance.Poisoned) — its globals may hold partial writes from the
// aborted attempt — and InstancePool.Put rebuilds poisoned sessions
// rather than recycling their state.

// InternalFault is a contained internal engine panic: anything
// recovered at the call boundary that is not a positioned program-level
// *Diag or a context cancellation. It identifies the exact variant that
// misbehaved — backend, opt level, pass mask — so a selection layer can
// quarantine that arm, and carries the recovered value and stack for
// diagnosis.
type InternalFault struct {
	Backend   Backend
	Opt       OptLevel
	Passes    PassMask
	Fn        string
	Recovered any    // the recovered panic value
	Stack     []byte // goroutine stack at the recover point
}

// Error renders the fault with its variant coordinates.
func (f *InternalFault) Error() string {
	return fmt.Sprintf("internal fault in %s [%s %s passes=%s]: %v",
		f.Fn, f.Backend, f.Opt, f.Passes, f.Recovered)
}

// WithFallback enables trusted-fallback re-execution: each call on the
// variant snapshots its mutable state (the instance's global frame plus
// argument arrays and cells) before executing, and an internal fault
// rolls the state back and re-executes the call once on the trusted
// reference tier — the generic O0 closures, injector-free. The caller
// then sees the reference result and Instance.LastCallDegraded reports
// true; without fallback an internal fault surfaces as an
// *InternalFault error and poisons the instance. The snapshot is a real
// copy bounded by MaxSnapshotElems; calls whose state exceeds the bound
// run uncontained-state (fault ⇒ poisoned), never half-protected.
// Fallback is inert on the walker backend — it is the reference
// semantics already.
func WithFallback(on bool) Option {
	return func(c *config) { c.fallback = on }
}

// MaxSnapshotElems bounds the total float64 elements (global arrays
// plus argument arrays) a WithFallback call will copy; beyond it the
// call skips the snapshot and an internal fault poisons the instance
// instead of degrading gracefully. It is a variable so harnesses can
// tighten it to exercise the overflow path.
var MaxSnapshotElems = 4 << 20

// stateSnapshot is one call's copy of the mutable state the caller can
// observe: the instance's global frame, argument arrays, and argument
// cells (*Value args, both pointer-parameter cells and by-value
// copyback targets). Instances keep one as reusable scratch so
// steady-state resilient calls allocate only when shapes grow.
type stateSnapshot struct {
	scalars  []Value
	arrays   [][]float64
	argArrs  []*Array
	argData  [][]float64
	cells    []*Value
	cellVals []Value
}

// snapshotSize totals the elements a snapshot of (s, args) would copy.
func snapshotSize(s *Instance, args []any) int {
	total := 0
	for _, a := range s.g.arrays {
		total += len(a.Data)
	}
	for _, a := range args {
		if arr, ok := a.(*Array); ok && arr != nil {
			total += len(arr.Data)
		}
	}
	return total
}

// grow returns dst resized to n, reusing its backing store when it can.
func grow(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// capture copies the call's mutable state into sn, reusing sn's
// buffers. It reports false — capturing nothing — when the state
// exceeds MaxSnapshotElems.
func (sn *stateSnapshot) capture(s *Instance, args []any) bool {
	if snapshotSize(s, args) > MaxSnapshotElems {
		return false
	}
	sn.scalars = append(sn.scalars[:0], s.g.scalars...)
	if cap(sn.arrays) < len(s.g.arrays) {
		sn.arrays = make([][]float64, len(s.g.arrays))
	}
	sn.arrays = sn.arrays[:len(s.g.arrays)]
	for i, a := range s.g.arrays {
		sn.arrays[i] = grow(sn.arrays[i], len(a.Data))
		copy(sn.arrays[i], a.Data)
	}
	sn.argArrs = sn.argArrs[:0]
	sn.cells = sn.cells[:0]
	sn.cellVals = sn.cellVals[:0]
	n := 0
	for _, a := range args {
		switch v := a.(type) {
		case *Array:
			if v == nil {
				continue
			}
			sn.argArrs = append(sn.argArrs, v)
			if cap(sn.argData) <= n {
				sn.argData = append(sn.argData, nil)
			}
			sn.argData = sn.argData[:n+1]
			sn.argData[n] = grow(sn.argData[n], len(v.Data))
			copy(sn.argData[n], v.Data)
			n++
		case *Value:
			if v == nil {
				continue
			}
			sn.cells = append(sn.cells, v)
			sn.cellVals = append(sn.cellVals, *v)
		}
	}
	sn.argData = sn.argData[:n]
	return true
}

// restore writes the captured state back: globals, argument arrays and
// argument cells return bit-for-bit to their pre-call contents.
func (sn *stateSnapshot) restore(s *Instance) {
	copy(s.g.scalars, sn.scalars)
	for i, a := range s.g.arrays {
		copy(a.Data, sn.arrays[i])
	}
	for i, arr := range sn.argArrs {
		copy(arr.Data, sn.argData[i])
	}
	for i, c := range sn.cells {
		*c = sn.cellVals[i]
	}
}

// equalState reports whether the captured state matches the CURRENT
// state of (s, args) bit-for-bit — the audit comparison between an
// attempt's post-state and the reference re-execution's post-state.
func (sn *stateSnapshot) equalState(s *Instance, args []any) bool {
	for i, v := range sn.scalars {
		if !valueBitsEqual(v, s.g.scalars[i]) {
			return false
		}
	}
	for i, a := range s.g.arrays {
		if !floatBitsEqual(sn.arrays[i], a.Data) {
			return false
		}
	}
	for i, arr := range sn.argArrs {
		if !floatBitsEqual(sn.argData[i], arr.Data) {
			return false
		}
	}
	for i, c := range sn.cells {
		if !valueBitsEqual(sn.cellVals[i], *c) {
			return false
		}
	}
	return true
}

// valueBitsEqual is bit-exact Value equality (NaNs compare by payload,
// like the differential fuzz oracle).
func valueBitsEqual(a, b Value) bool {
	return a.IsInt == b.IsInt && a.I == b.I &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

func floatBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// reference returns (building once) the trusted tier of this program:
// the same resolved source lowered with the generic O0 closures,
// injector-free and fallback-free. Fallback re-execution and audits run
// on it; it shares the front-end side tables with p, so its global slot
// layout is identical and an Instance's global frame can be shared
// between the optimized and the reference tier.
func (p *Program) reference() *Program {
	p.refOnce.Do(func() {
		cfg := p.cfg
		cfg.backend = BackendCompiled
		cfg.opt = O0
		cfg.passes = 0
		cfg.fallback = false
		cfg.inject = nil
		p.ref = lower(p.fname, p.res, p.ti, cfg)
	})
	return p.ref
}

// fallbackInstance returns (building once) the session's trusted-tier
// twin: an Instance of the reference variant that aliases THIS
// session's global frame, so a fallback re-execution reads the
// rolled-back globals and its writes persist in the session.
func (s *Instance) fallbackInstance() *Instance {
	if s.fb == nil {
		s.fb = s.prog.reference().NewInstance()
		s.fb.g = s.g
	}
	return s.fb
}

// runFallback re-executes the call on the trusted tier after rollback,
// keeping the session's step accounting continuous: the faulted
// attempt's steps were rolled back with the state, so the committed
// execution is the only one the session (and LastCallSteps) charges.
func (s *Instance) runFallback(ctx context.Context, name string, args []any) (Value, error) {
	fb := s.fallbackInstance()
	fb.maxSteps = s.maxSteps
	fb.steps = s.steps
	v, err := fb.call(ctx, name, args)
	s.steps = fb.steps
	s.lastSteps = fb.lastSteps
	if fb.lastFault != nil || fb.poisoned {
		// The trusted tier itself faulted internally: the shared global
		// frame is suspect, and there is no tier left to degrade to.
		s.poisoned = true
	}
	return v, err
}

// LastCallDegraded reports whether the most recent Call/CallContext was
// served by trusted-fallback re-execution (or, for CallAudited, whether
// the audit found the attempt faulty or divergent) rather than by the
// variant's own backend. The result the caller received is correct
// either way; the flag is the routing signal selection layers consume.
func (s *Instance) LastCallDegraded() bool { return s.degraded }

// LastCallFault returns the contained InternalFault of the most recent
// call, or nil if it ran clean. It is set both when the fault was
// degraded away (fallback succeeded) and when it surfaced as an error.
func (s *Instance) LastCallFault() *InternalFault { return s.lastFault }

// Poisoned reports whether an internal fault left this session's global
// state unrecovered (no snapshot was available to roll back). Calls on
// a poisoned session still execute, but its file-scope globals may hold
// partial writes from the aborted attempt; InstancePool.Put rebuilds
// poisoned sessions instead of recycling their state.
func (s *Instance) Poisoned() bool { return s.poisoned }

// GlobalScalar returns a copy of the named file-scope scalar's current
// value in this session. It is the introspection tap differential
// harnesses use to assert globals bit-exactly across backends.
func (s *Instance) GlobalScalar(name string) (Value, bool) {
	if s.prog.cfg.backend == BackendWalker {
		if s.wk == nil {
			s.wk = NewWalker(s.prog.res.File)
		}
		return s.wk.GlobalScalar(name)
	}
	for i := range s.prog.res.Scalars {
		if s.prog.res.Scalars[i].Name == name {
			return s.g.scalars[i], true
		}
	}
	return Value{}, false
}

// GlobalArray returns the named file-scope array of this session (the
// live storage, not a copy).
func (s *Instance) GlobalArray(name string) (*Array, bool) {
	if s.prog.cfg.backend == BackendWalker {
		if s.wk == nil {
			s.wk = NewWalker(s.prog.res.File)
		}
		return s.wk.GlobalArray(name)
	}
	for i := range s.prog.res.Arrays {
		if s.prog.res.Arrays[i].Name == name {
			return s.g.arrays[i], true
		}
	}
	return nil, false
}

// CallAudited is Call with a trust audit: the call executes on this
// session's variant, then — from the same pre-call state, restored by
// rollback — once more on the trusted reference tier, and the two
// outcomes are compared bit-exactly (returned value, error, globals,
// argument arrays and cells). The reference outcome is what the caller
// receives, so a silently-miscompiling variant cannot leak a wrong
// result through an audited call; diverged reports the mismatch.
// Selection layers sample audits to catch wrong-result faults that
// containment alone cannot see. States larger than MaxSnapshotElems
// fall back to the ordinary (resilient) call path with diverged=false.
func (s *Instance) CallAudited(ctx context.Context, name string, args ...any) (v Value, diverged bool, err error) {
	s.lastSteps = 0
	s.degraded = false
	s.lastFault = nil
	if s.prog.cfg.backend == BackendWalker {
		// The walker is the reference semantics — nothing to audit against.
		v, err = s.walkerCall(ctx, name, args)
		return v, false, err
	}
	cf, err := s.resolveCall(name, args)
	if err != nil {
		return Value{}, false, err
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Value{}, false, fmt.Errorf("cminor: calling %s: %w", name, cerr)
		}
	}
	var pre stateSnapshot
	if !pre.capture(s, args) {
		v, err = s.call(ctx, name, args)
		return v, false, err
	}
	var inj *Fault
	if fi := s.prog.cfg.inject; fi != nil {
		inj = fi.Decide(s.prog.cfg.backend, s.prog.cfg.opt, name)
	}
	startSteps := s.steps
	v1, err1, fault := s.attempt(ctx, cf, name, args, inj)
	var post stateSnapshot
	post.capture(s, args) // same shapes as pre: cannot exceed the bound
	pre.restore(s)
	s.steps = startSteps
	v, err = s.runFallback(ctx, name, args)
	if fault != nil {
		// A contained fault is quarantine signal enough on its own; it is
		// reported through LastCallFault, not as a divergence.
		s.degraded = true
		s.lastFault = fault
		return v, false, err
	}
	if !outcomeEqual(v1, err1, v, err) || !post.equalState(s, args) {
		s.degraded = true
		return v, true, err
	}
	return v, false, err
}

// outcomeEqual compares two call outcomes bit-exactly: equal values on
// success, equal fault text on failure (the parity contract guarantees
// identical fault text and position across backends).
func outcomeEqual(v1 Value, err1 error, v2 Value, err2 error) bool {
	if (err1 == nil) != (err2 == nil) {
		return false
	}
	if err1 != nil {
		return err1.Error() == err2.Error()
	}
	return valueBitsEqual(v1, v2)
}
