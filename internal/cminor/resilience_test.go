package cminor

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// resilienceSrc is the test kernel of the containment layer: it
// mutates file-scope globals (scalar and array) AND its argument array,
// so a faulted attempt leaves observable damage unless rollback
// restores every bit of it.
const resilienceSrc = `
int gcalls;
double gacc;
double gbuf[4];

double k(int n, double a[n]) {
  gcalls = gcalls + 1;
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    a[i] = a[i] * 1.5 + 0.25;
    s = s + a[i];
  }
  gacc = gacc + s;
  gbuf[0] = gbuf[0] + 1.0;
  gbuf[3] = s;
  return s;
}
`

func resilienceArgs() []any {
	a := NewArray(8)
	for i := range a.Data {
		a.Data[i] = float64(i) * 0.375
	}
	return []any{IntV(8), a}
}

// mustVariant compiles resilienceSrc under opts.
func mustProgram(t *testing.T, src string, opts ...Option) *Program {
	t.Helper()
	prog, err := Compile(MustParse("res.c", src), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func sameBits(a, b Value) bool {
	return a.IsInt == b.IsInt && a.I == b.I && math.Float64bits(a.F) == math.Float64bits(b.F)
}

// checkGlobalsEqual asserts the named globals match bit-for-bit between
// two sessions.
func checkGlobalsEqual(t *testing.T, want, got *Instance, label string) {
	t.Helper()
	for _, name := range []string{"gcalls", "gacc"} {
		wv, ok1 := want.GlobalScalar(name)
		gv, ok2 := got.GlobalScalar(name)
		if !ok1 || !ok2 {
			t.Fatalf("%s: global %s not found (%v, %v)", label, name, ok1, ok2)
		}
		if !sameBits(wv, gv) {
			t.Errorf("%s: global %s = %+v, want %+v", label, name, gv, wv)
		}
	}
	wa, _ := want.GlobalArray("gbuf")
	ga, _ := got.GlobalArray("gbuf")
	for i := range wa.Data {
		if math.Float64bits(wa.Data[i]) != math.Float64bits(ga.Data[i]) {
			t.Errorf("%s: gbuf[%d] = %g, want %g", label, i, ga.Data[i], wa.Data[i])
		}
	}
}

// Without fallback, an injected internal panic must surface as a
// structured *InternalFault carrying the variant's knob coordinates,
// poison the session, and leave the process alive and the session
// callable.
func TestInternalFaultContainedWithoutFallback(t *testing.T) {
	for _, backend := range []Backend{BackendCompiled, BackendBytecode} {
		t.Run(backend.String(), func(t *testing.T) {
			inj := NewScriptedInjector(FaultRule{
				Backend: backend, AnyOpt: true, Fn: "k", Call: 1,
				Kind: FaultPanic, Point: FaultAtExit,
			})
			prog := mustProgram(t, resilienceSrc,
				WithBackend(backend), WithOptLevel(O3), WithFaultInjector(inj))
			inst := prog.NewInstance()
			_, err := inst.Call("k", resilienceArgs()...)
			if err == nil {
				t.Fatal("expected an InternalFault error")
			}
			var fault *InternalFault
			if !errors.As(err, &fault) {
				t.Fatalf("error is %T (%v), want *InternalFault", err, err)
			}
			if fault.Backend != backend || fault.Opt != O3 || fault.Fn != "k" {
				t.Errorf("fault coordinates = %s/%s/%s", fault.Backend, fault.Opt, fault.Fn)
			}
			if fault.Passes != AllPasses {
				t.Errorf("fault passes = %s, want %s", fault.Passes, AllPasses)
			}
			if len(fault.Stack) == 0 {
				t.Error("fault carries no stack")
			}
			if !strings.Contains(err.Error(), "internal fault in k") {
				t.Errorf("unexpected error text: %v", err)
			}
			if !inst.Poisoned() {
				t.Error("session not poisoned after unrecovered fault")
			}
			if inst.LastCallFault() != fault {
				t.Error("LastCallFault does not report the fault")
			}
			if inst.LastCallDegraded() {
				t.Error("degraded flag set without fallback")
			}
			if inj.Fired(0) != 1 {
				t.Errorf("injector fired %d times, want 1", inj.Fired(0))
			}
			// The session remains callable — the exit-point fault committed
			// the body's writes, so gcalls reflects both calls.
			if _, err := inst.Call("k", resilienceArgs()...); err != nil {
				t.Fatalf("post-fault call: %v", err)
			}
			if v, _ := inst.GlobalScalar("gcalls"); v.Int() != 2 {
				t.Errorf("gcalls = %d, want 2 (poisoned attempt committed)", v.Int())
			}
		})
	}
}

// With fallback, an injected panic must be invisible apart from the
// degraded flag: returned value, argument array, globals, and the step
// accounting all bit-exact with a clean session.
func TestFallbackReExecutionBitExact(t *testing.T) {
	for _, point := range []FaultPoint{FaultAtEntry, FaultAtExit} {
		for _, backend := range []Backend{BackendCompiled, BackendBytecode} {
			t.Run(backend.String()+"_"+point.String(), func(t *testing.T) {
				inj := NewScriptedInjector(FaultRule{
					Backend: backend, AnyOpt: true, Fn: "k", Call: 2,
					Kind: FaultPanic, Point: point,
				})
				clean := mustProgram(t, resilienceSrc,
					WithBackend(backend), WithOptLevel(O3)).NewInstance()
				faulty := mustProgram(t, resilienceSrc,
					WithBackend(backend), WithOptLevel(O3),
					WithFaultInjector(inj), WithFallback(true)).NewInstance()
				cleanArgs, faultyArgs := resilienceArgs(), resilienceArgs()
				for call := 1; call <= 3; call++ {
					cv, cerr := clean.Call("k", cleanArgs...)
					fv, ferr := faulty.Call("k", faultyArgs...)
					if cerr != nil || ferr != nil {
						t.Fatalf("call %d: clean=%v faulty=%v", call, cerr, ferr)
					}
					if !sameBits(cv, fv) {
						t.Fatalf("call %d: value %+v, want %+v", call, fv, cv)
					}
					wantDegraded := call == 2
					if faulty.LastCallDegraded() != wantDegraded {
						t.Errorf("call %d: degraded = %v, want %v",
							call, faulty.LastCallDegraded(), wantDegraded)
					}
					if (faulty.LastCallFault() != nil) != wantDegraded {
						t.Errorf("call %d: fault tap = %v", call, faulty.LastCallFault())
					}
					if clean.LastCallSteps() != faulty.LastCallSteps() {
						t.Errorf("call %d: steps %d, want %d (attempt not rolled back?)",
							call, faulty.LastCallSteps(), clean.LastCallSteps())
					}
					ca, fa := cleanArgs[1].(*Array), faultyArgs[1].(*Array)
					for i := range ca.Data {
						if math.Float64bits(ca.Data[i]) != math.Float64bits(fa.Data[i]) {
							t.Fatalf("call %d: a[%d] = %g, want %g", call, i, fa.Data[i], ca.Data[i])
						}
					}
				}
				if clean.Steps() != faulty.Steps() {
					t.Errorf("session steps %d, want %d", faulty.Steps(), clean.Steps())
				}
				if faulty.Poisoned() {
					t.Error("fallback session must not be poisoned")
				}
				checkGlobalsEqual(t, clean, faulty, "after 3 calls")
				if inj.TotalFired() != 1 {
					t.Errorf("injector fired %d, want 1", inj.TotalFired())
				}
			})
		}
	}
}

// A latency-spike injection completes the call correctly — only slower.
func TestLatencyInjectionIsHarmless(t *testing.T) {
	inj := NewScriptedInjector(FaultRule{
		Backend: BackendCompiled, AnyOpt: true, Fn: "k", Call: 1,
		Kind: FaultLatency, Latency: time.Millisecond,
	})
	clean := mustProgram(t, resilienceSrc).NewInstance()
	slow := mustProgram(t, resilienceSrc, WithFaultInjector(inj)).NewInstance()
	cv, _ := clean.Call("k", resilienceArgs()...)
	sv, err := slow.Call("k", resilienceArgs()...)
	if err != nil || !sameBits(cv, sv) {
		t.Fatalf("latency call: v=%+v err=%v, want %+v", sv, err, cv)
	}
	if slow.LastCallDegraded() || slow.LastCallFault() != nil {
		t.Error("latency injection must not trip the fault taps")
	}
}

// CallAudited must catch an injected wrong result (a silent
// miscompile): the caller receives the reference outcome and the
// divergence is reported.
func TestCallAuditedCatchesWrongResult(t *testing.T) {
	inj := NewScriptedInjector(FaultRule{
		Backend: BackendBytecode, AnyOpt: true, Fn: "k", Call: 1,
		Kind: FaultWrongResult,
	})
	clean := mustProgram(t, resilienceSrc,
		WithBackend(BackendBytecode), WithOptLevel(O3)).NewInstance()
	audited := mustProgram(t, resilienceSrc,
		WithBackend(BackendBytecode), WithOptLevel(O3),
		WithFaultInjector(inj), WithFallback(true)).NewInstance()
	cv, _ := clean.Call("k", resilienceArgs()...)
	av, diverged, err := audited.CallAudited(context.Background(), "k", resilienceArgs()...)
	if err != nil {
		t.Fatal(err)
	}
	if !diverged {
		t.Fatal("audit did not catch the injected wrong result")
	}
	if !sameBits(cv, av) {
		t.Fatalf("audited call returned %+v, want reference %+v", av, cv)
	}
	if !audited.LastCallDegraded() {
		t.Error("divergent audit should report degraded")
	}
	// Clean second call: no divergence, same value, state identical to a
	// clean two-call session.
	av2, diverged2, err := audited.CallAudited(context.Background(), "k", resilienceArgs()...)
	cv2, _ := clean.Call("k", resilienceArgs()...)
	if err != nil || diverged2 {
		t.Fatalf("clean audit: err=%v diverged=%v", err, diverged2)
	}
	if !sameBits(cv2, av2) {
		t.Fatalf("clean audit returned %+v, want %+v", av2, cv2)
	}
	checkGlobalsEqual(t, clean, audited, "after audits")
}

// An audited call that hits a contained panic is degraded-and-served,
// not reported as a divergence: the fault tap already carries the
// quarantine signal.
func TestCallAuditedContainedFaultIsNotDivergence(t *testing.T) {
	inj := NewScriptedInjector(FaultRule{
		Backend: BackendCompiled, AnyOpt: true, Fn: "k", Call: 1,
		Kind: FaultPanic, Point: FaultAtExit,
	})
	clean := mustProgram(t, resilienceSrc).NewInstance()
	audited := mustProgram(t, resilienceSrc,
		WithFaultInjector(inj), WithFallback(true)).NewInstance()
	cv, _ := clean.Call("k", resilienceArgs()...)
	av, diverged, err := audited.CallAudited(context.Background(), "k", resilienceArgs()...)
	if err != nil || diverged {
		t.Fatalf("audited faulted call: err=%v diverged=%v", err, diverged)
	}
	if !sameBits(cv, av) {
		t.Fatalf("audited faulted call returned %+v, want %+v", av, cv)
	}
	if audited.LastCallFault() == nil || !audited.LastCallDegraded() {
		t.Error("contained fault must show on the taps")
	}
}

// Satellite pin: InstancePool.Put must rebuild a poisoned session's
// globals, so state half-written by a faulted call never leaks into the
// next checkout.
func TestPoolDiscardsPoisonedState(t *testing.T) {
	inj := NewScriptedInjector(FaultRule{
		Backend: BackendCompiled, AnyOpt: true, Fn: "k", Call: 1,
		Kind: FaultPanic, Point: FaultAtExit,
	})
	// No fallback: the fault leaves the session poisoned with the
	// attempt's global writes (gcalls=1 etc) in place.
	prog := mustProgram(t, resilienceSrc, WithFaultInjector(inj))
	pool := prog.NewPool()
	inst := pool.Get()
	if _, err := inst.Call("k", resilienceArgs()...); err == nil {
		t.Fatal("expected the injected fault")
	}
	if !inst.Poisoned() {
		t.Fatal("session should be poisoned")
	}
	pool.Put(inst)
	re := pool.Get()
	if re != inst {
		t.Fatal("pool did not recycle the instance (test premise broken)")
	}
	if re.Poisoned() {
		t.Error("recycled session still flagged poisoned")
	}
	if v, ok := re.GlobalScalar("gcalls"); !ok || v.Int() != 0 {
		t.Errorf("recycled gcalls = %v, want fresh 0", v)
	}
	if a, _ := re.GlobalArray("gbuf"); a.Data[0] != 0 {
		t.Errorf("recycled gbuf[0] = %g, want fresh 0", a.Data[0])
	}
	// And the recycled session behaves like a brand-new one.
	fresh := mustProgram(t, resilienceSrc).NewInstance()
	fv, _ := fresh.Call("k", resilienceArgs()...)
	rv, err := re.Call("k", resilienceArgs()...)
	if err != nil || !sameBits(fv, rv) {
		t.Fatalf("recycled call: v=%+v err=%v, want %+v", rv, err, fv)
	}
	checkGlobalsEqual(t, fresh, re, "recycled vs fresh")
}

// A non-poisoned session keeps its globals across Put — the documented
// session semantics are unchanged for clean instances.
func TestPoolKeepsCleanState(t *testing.T) {
	prog := mustProgram(t, resilienceSrc)
	pool := prog.NewPool()
	inst := pool.Get()
	if _, err := inst.Call("k", resilienceArgs()...); err != nil {
		t.Fatal(err)
	}
	pool.Put(inst)
	re := pool.Get()
	if v, _ := re.GlobalScalar("gcalls"); v.Int() != 1 {
		t.Errorf("clean recycle reset globals: gcalls = %d, want 1", v.Int())
	}
}

// Satellite pin: an injected panic at the walker's 16k-step
// cancellation poll — mid-kernel, racing the CallContext teardown path
// — must come back as a contained *InternalFault, never an escaped
// panic.
func TestWalkerPollPanicContained(t *testing.T) {
	src := `
int gticks;
int spin(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    s = s + 1;
    gticks = gticks + 1;
  }
  return s;
}
`
	inj := NewScriptedInjector(FaultRule{
		Backend: BackendWalker, AnyOpt: true, Fn: "spin", Call: 1,
		Kind: FaultPanic, Point: FaultAtPoll,
	})
	prog := mustProgram(t, src, WithBackend(BackendWalker), WithFaultInjector(inj))
	inst := prog.NewInstance()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// > 16384 statements, so the poll checkpoint fires mid-kernel.
	_, err := inst.CallContext(ctx, "spin", IntV(100000))
	if err == nil {
		t.Fatal("expected the injected poll-point fault")
	}
	var fault *InternalFault
	if !errors.As(err, &fault) {
		t.Fatalf("error is %T (%v), want *InternalFault", err, err)
	}
	if fault.Backend != BackendWalker {
		t.Errorf("fault backend = %s, want walker", fault.Backend)
	}
	injf, ok := fault.Recovered.(*injectedFault)
	if !ok || injf.point != FaultAtPoll {
		t.Errorf("recovered = %#v, want poll-point injectedFault", fault.Recovered)
	}
	if !inst.Poisoned() {
		t.Error("walker session should be poisoned (mid-kernel global writes)")
	}
	// The session recovers through the pool: the poisoned walker is
	// dropped and the next checkout starts from the initializers.
	pool := prog.NewPool()
	pool.Put(inst)
	re := pool.Get()
	if v, ok := re.GlobalScalar("gticks"); !ok || v.Int() != 0 {
		t.Errorf("recycled walker gticks = %v, want fresh 0", v)
	}
	if v, err := re.CallContext(context.Background(), "spin", IntV(100000)); err != nil || v.Int() != 100000 {
		t.Fatalf("post-fault walker call: v=%v err=%v", v, err)
	}
}

// Calls whose mutable state exceeds the snapshot bound run
// uncontained-state: the fault surfaces and the session poisons rather
// than silently half-protecting.
func TestOversizedSnapshotSkipsFallback(t *testing.T) {
	old := MaxSnapshotElems
	MaxSnapshotElems = 4 // gbuf[4] + a[8] = 12 elems > 4
	defer func() { MaxSnapshotElems = old }()
	inj := NewScriptedInjector(FaultRule{
		Backend: BackendCompiled, AnyOpt: true, Fn: "k", Call: 1,
		Kind: FaultPanic, Point: FaultAtExit,
	})
	inst := mustProgram(t, resilienceSrc,
		WithFaultInjector(inj), WithFallback(true)).NewInstance()
	_, err := inst.Call("k", resilienceArgs()...)
	var fault *InternalFault
	if !errors.As(err, &fault) {
		t.Fatalf("error is %T (%v), want *InternalFault (snapshot skipped)", err, err)
	}
	if !inst.Poisoned() || inst.LastCallDegraded() {
		t.Errorf("poisoned=%v degraded=%v, want true/false", inst.Poisoned(), inst.LastCallDegraded())
	}
}

// ScriptedInjector fires rules at exact per-rule call counts, first
// match wins, and counters are exact.
func TestScriptedInjectorCounting(t *testing.T) {
	si := NewScriptedInjector(
		FaultRule{Backend: BackendCompiled, Opt: O2, Fn: "k", Call: 2, Kind: FaultPanic},
		FaultRule{Backend: BackendCompiled, AnyOpt: true, Kind: FaultLatency, Call: 0, Latency: time.Microsecond},
		FaultRule{Backend: BackendBytecode, AnyOpt: true, Fn: "other", Call: 1, Kind: FaultWrongResult},
	)
	// Call 1 on compiled/O2/k: rule 0 not yet (call 2), rule 1 fires.
	if f := si.Decide(BackendCompiled, O2, "k"); f == nil || f.Kind != FaultLatency {
		t.Fatalf("call 1: %+v, want latency", f)
	}
	// Call 2: rule 0 fires first (rule order wins); rule 1 counts the
	// match but does not also fire.
	if f := si.Decide(BackendCompiled, O2, "k"); f == nil || f.Kind != FaultPanic {
		t.Fatalf("call 2: %+v, want panic", f)
	}
	// Wrong backend/function: no rule.
	if f := si.Decide(BackendBytecode, O3, "k"); f != nil {
		t.Fatalf("bytecode k: %+v, want nil", f)
	}
	if f := si.Decide(BackendBytecode, O3, "other"); f == nil || f.Kind != FaultWrongResult {
		t.Fatalf("bytecode other: %+v, want wrong-result", f)
	}
	if si.Fired(0) != 1 || si.Fired(1) != 1 || si.Fired(2) != 1 {
		t.Errorf("fired = %d/%d/%d, want 1/1/1", si.Fired(0), si.Fired(1), si.Fired(2))
	}
	if si.TotalFired() != 3 {
		t.Errorf("total fired = %d, want 3", si.TotalFired())
	}
}

// The bytecode dispatch loop annotates internal faults with the
// function whose flat code was executing.
func TestBytecodeFaultAnnotation(t *testing.T) {
	inj := NewScriptedInjector(FaultRule{
		Backend: BackendBytecode, AnyOpt: true, Fn: "k", Call: 1,
		Kind: FaultPanic, Point: FaultAtEntry,
	})
	// Entry-point injection fires in attempt(), outside the dispatch
	// loop — so exercise annotation via a genuine runtime fault instead:
	// a VLA allocation overflow inside a bytecode-backed program.
	_ = inj
	src := "void f(int n) {\n  double t[n][n];\n  t[0][0] = 1.0;\n}"
	prog := mustProgram(t, src, WithBackend(BackendBytecode), WithOptLevel(O3))
	inst := prog.NewInstance()
	_, err := inst.Call("f", IntV(1<<31))
	var fault *InternalFault
	if !errors.As(err, &fault) {
		t.Fatalf("error is %T (%v), want *InternalFault", err, err)
	}
	if fault.Backend != BackendBytecode {
		t.Errorf("fault backend = %s, want bytecode", fault.Backend)
	}
}
