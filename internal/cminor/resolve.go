package cminor

// The resolver is the first stage of the compiled execution pipeline
// (resolve → typecheck → compile → execute). It walks the AST exactly
// once, binds every identifier to a numbered frame slot, checks
// arity/rank/lvalue rules, and evaluates constant array dimensions, so
// the later stages never consult names or re-discover structure inside
// loops. The bindings are recorded in NodeID-indexed side tables on the
// ResolvedFile — the AST itself is never written to, so one *File can
// be resolved (and the resulting Program shared) concurrently.

// FuncInfo is the resolver's summary of one function definition: the slot
// counts that size its execution frame, the storage class of each
// parameter, and the body-shape facts later passes piggyback on (the O3
// inliner reads BodyNodes/UserCalls instead of re-walking bodies per
// variant).
type FuncInfo struct {
	Decl   *FuncDecl
	Params []VarRef
	// Slot-space sizes for a frame of this function.
	NumScalars int
	NumCells   int
	NumArrays  int
	// BodyNodes counts AST nodes in the body; UserCalls counts call
	// sites that name a user function (builtins excluded).
	BodyNodes int
	UserCalls int
}

// GlobalScalar describes a resolved file-scope scalar.
type GlobalScalar struct {
	Name string
	Kind BasicKind
	Init Value
}

// GlobalArray describes a resolved file-scope array with constant
// dimensions.
type GlobalArray struct {
	Name string
	Dims []int
}

// ResolvedFile is the output of Resolve: the (unmodified) AST plus the
// per-function and global slot tables the compiler lowers against, and
// the NodeID-indexed annotation tables that replace in-tree writes.
type ResolvedFile struct {
	File    *File
	Funcs   map[string]*FuncInfo
	Scalars []GlobalScalar
	Arrays  []GlobalArray
	// refs is the resolved slot of every Ident/DeclStmt, indexed by
	// NodeID; builtins marks CallExprs that name a math builtin.
	refs     []VarRef
	builtins []bool
}

// RefOf returns the slot binding the resolver assigned to n (an *Ident
// or *DeclStmt). Unannotated nodes report VarUnresolved.
func (res *ResolvedFile) RefOf(n Node) VarRef {
	switch x := n.(type) {
	case *Ident:
		return res.refs[x.ID]
	case *DeclStmt:
		return res.refs[x.ID]
	}
	return VarRef{}
}

// numIDs sizes the annotation tables: the parser's count, defensively
// widened for hand-assembled trees that carry IDs past it. It also
// reports whether any two annotatable nodes share an ID — a
// hand-assembled tree whose nodes were left at the zero ID would
// otherwise alias one table entry and mis-bind silently.
func numIDs(f *File) (n int, dup Node) {
	n = f.NumIDs
	var ids []Node // ids[id] = first node seen with that ID
	Walk(f, func(nd Node) bool {
		var id NodeID
		switch x := nd.(type) {
		case *Ident:
			id = x.ID
		case *DeclStmt:
			id = x.ID
		case *CallExpr:
			id = x.ID
		default:
			return true
		}
		if int(id) >= n {
			n = int(id) + 1
		}
		for int(id) >= len(ids) {
			ids = append(ids, nil)
		}
		if ids[id] != nil && dup == nil {
			dup = nd
		}
		ids[id] = nd
		return true
	})
	return n, dup
}

type symbol struct {
	ref  VarRef
	rank int
	kind BasicKind
}

type resolver struct {
	file   *File
	res    *ResolvedFile
	diags  DiagList
	scopes []map[string]*symbol
	funcs  map[string]*FuncDecl // functions with bodies
	cur    *FuncInfo
}

// setRef records the slot binding for an annotatable node.
func (r *resolver) setRef(id NodeID, ref VarRef) { r.res.refs[id] = ref }

// Resolve semantically analyses f: every Ident/DeclStmt gets a VarRef in
// the side table, and undeclared identifiers, rank mismatches, call-arity
// mismatches and invalid lvalues are reported as positioned diagnostics.
// f itself is not modified.
func Resolve(f *File) (*ResolvedFile, error) {
	n, dup := numIDs(f)
	if dup != nil {
		return nil, DiagList{diagf(f.Name, dup.Pos(),
			"duplicate node ID: the AST must come from Parse or File.Clone")}
	}
	res := &ResolvedFile{File: f, Funcs: map[string]*FuncInfo{},
		refs: make([]VarRef, n), builtins: make([]bool, n)}
	r := &resolver{file: f, res: res, funcs: map[string]*FuncDecl{}}
	r.push() // module scope
	for _, g := range f.Globals {
		r.global(res, g)
	}
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		if _, dup := r.funcs[fn.Name]; dup {
			r.errorf(fn.P, "function %q redefined", fn.Name)
			continue
		}
		r.funcs[fn.Name] = fn
	}
	for _, fn := range f.Funcs {
		if fn.Body == nil || r.funcs[fn.Name] != fn {
			continue
		}
		res.Funcs[fn.Name] = r.function(fn)
	}
	if len(r.diags) > 0 {
		return nil, r.diags
	}
	return res, nil
}

func (r *resolver) errorf(p Pos, format string, args ...any) {
	r.diags = append(r.diags, diagf(r.file.Name, p, format, args...))
}

func (r *resolver) push()                   { r.scopes = append(r.scopes, map[string]*symbol{}) }
func (r *resolver) pop()                    { r.scopes = r.scopes[:len(r.scopes)-1] }
func (r *resolver) top() map[string]*symbol { return r.scopes[len(r.scopes)-1] }
func (r *resolver) lookup(name string) *symbol {
	for i := len(r.scopes) - 1; i >= 0; i-- {
		if s, ok := r.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// global resolves a file-scope declaration; array dimensions and scalar
// initialisers must be constant expressions.
func (r *resolver) global(res *ResolvedFile, g *DeclStmt) {
	if _, exists := r.scopes[0][g.Name]; exists {
		r.errorf(g.P, "global %q redeclared", g.Name)
		return
	}
	if g.Type.IsArray() {
		dims := make([]int, len(g.Type.Dims))
		for i, d := range g.Type.Dims {
			v, ok := constEval(d)
			if !ok {
				r.errorf(d.Pos(), "dimension %d of global array %q is not a constant expression",
					i, g.Name)
				continue
			}
			dims[i] = int(v.Int())
		}
		ref := VarRef{Kind: VarGlobalArray, Slot: len(res.Arrays), Base: g.Type.Kind}
		res.Arrays = append(res.Arrays, GlobalArray{Name: g.Name, Dims: dims})
		r.setRef(g.ID, ref)
		r.scopes[0][g.Name] = &symbol{ref: ref, rank: len(dims), kind: g.Type.Kind}
		return
	}
	var init Value
	if g.Init != nil {
		v, ok := constEval(g.Init)
		if !ok {
			r.errorf(g.Init.Pos(), "initialiser of global %q is not a constant expression", g.Name)
		} else {
			init = v
		}
	}
	ref := VarRef{Kind: VarGlobalScalar, Slot: len(res.Scalars), Base: g.Type.Kind}
	res.Scalars = append(res.Scalars, GlobalScalar{Name: g.Name, Kind: g.Type.Kind,
		Init: convertKind(init, g.Type.Kind)})
	r.setRef(g.ID, ref)
	r.scopes[0][g.Name] = &symbol{ref: ref, kind: g.Type.Kind}
}

// alloc assigns the next free slot in the storage class selected by t.
func (r *resolver) alloc(t *Type) VarRef {
	switch {
	case t.IsArray():
		s := r.cur.NumArrays
		r.cur.NumArrays++
		return VarRef{Kind: VarArray, Slot: s, Base: t.Kind}
	case t.Ptr:
		s := r.cur.NumCells
		r.cur.NumCells++
		return VarRef{Kind: VarCell, Slot: s, Base: t.Kind}
	default:
		s := r.cur.NumScalars
		r.cur.NumScalars++
		return VarRef{Kind: VarScalar, Slot: s, Base: t.Kind}
	}
}

func (r *resolver) function(fn *FuncDecl) *FuncInfo {
	info := &FuncInfo{Decl: fn}
	r.cur = info
	r.push()
	for _, p := range fn.Params {
		if _, dup := r.top()[p.Name]; dup {
			r.errorf(p.P, "parameter %q duplicated in %s", p.Name, fn.Name)
		}
		ref := r.alloc(p.Type)
		info.Params = append(info.Params, ref)
		// Parameter array dimensions (e.g. "double A[n][n]") are
		// documentation: the runtime Array carries its own dims, so the
		// dimension expressions are deliberately not resolved — Polybench
		// sources routinely spell them with preprocessor macros the lexer
		// discards.
		r.top()[p.Name] = &symbol{ref: ref, rank: len(p.Type.Dims), kind: p.Type.Kind}
	}
	r.block(fn.Body)
	// Body-shape summary for later passes; the builtin marks are fresh
	// from the walk above, so user calls are exactly the unmarked ones.
	Walk(fn.Body, func(n Node) bool {
		info.BodyNodes++
		if call, ok := n.(*CallExpr); ok && !r.res.builtins[call.ID] {
			info.UserCalls++
		}
		return true
	})
	r.pop()
	r.cur = nil
	return info
}

func (r *resolver) block(b *Block) {
	r.push()
	for _, s := range b.Stmts {
		r.stmt(s)
	}
	r.pop()
}

func (r *resolver) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		r.block(s)
	case *DeclStmt:
		r.decl(s)
	case *ExprStmt:
		r.expr(s.X)
	case *ForStmt:
		// The for-init declaration scopes over cond/post/body.
		r.push()
		if s.Init != nil {
			r.stmt(s.Init)
		}
		if s.Cond != nil {
			r.expr(s.Cond)
		}
		if s.Post != nil {
			r.expr(s.Post)
		}
		r.block(s.Body)
		r.pop()
	case *WhileStmt:
		r.expr(s.Cond)
		r.block(s.Body)
	case *IfStmt:
		r.expr(s.Cond)
		r.block(s.Then)
		if s.Else != nil {
			r.stmt(s.Else)
		}
	case *ReturnStmt:
		if s.X != nil {
			r.expr(s.X)
		}
	case *PragmaStmt:
		// No names to resolve.
	}
}

func (r *resolver) decl(s *DeclStmt) {
	if s.Type.IsArray() {
		// Local array dimensions are ordinary expressions evaluated at
		// declaration time (VLA-style, e.g. "double tmp[n]").
		for _, d := range s.Type.Dims {
			r.expr(d)
		}
	} else if s.Init != nil {
		r.expr(s.Init)
	}
	ref := r.alloc(s.Type)
	r.setRef(s.ID, ref)
	r.top()[s.Name] = &symbol{ref: ref, rank: len(s.Type.Dims), kind: s.Type.Kind}
}

// expr resolves e in value context.
func (r *resolver) expr(e Expr) {
	switch e := e.(type) {
	case nil:
	case *IntLit, *FloatLit:
	case *Ident:
		sym := r.lookup(e.Name)
		if sym == nil {
			r.errorf(e.P, "undeclared identifier %q", e.Name)
			return
		}
		r.setRef(e.ID, sym.ref)
		if sym.ref.Kind == VarArray || sym.ref.Kind == VarGlobalArray {
			r.errorf(e.P, "array %q used as a scalar value", e.Name)
		}
	case *ParenExpr:
		r.expr(e.X)
	case *CastExpr:
		r.expr(e.X)
	case *UnExpr:
		if e.Op == AMP {
			r.errorf(e.P, "address-of is only supported as a pointer-parameter argument")
			return
		}
		r.expr(e.X)
	case *BinExpr:
		r.expr(e.X)
		r.expr(e.Y)
	case *CondExpr:
		r.expr(e.Cond)
		r.expr(e.Then)
		r.expr(e.Else)
	case *IndexExpr:
		r.index(e)
	case *AssignExpr:
		r.lvalue(e.LHS)
		r.expr(e.RHS)
	case *IncDecExpr:
		r.lvalue(e.X)
	case *CallExpr:
		r.call(e)
	}
}

// lvalue resolves e in assignment-target context.
func (r *resolver) lvalue(e Expr) {
	switch e := e.(type) {
	case *Ident:
		sym := r.lookup(e.Name)
		if sym == nil {
			r.errorf(e.P, "undeclared identifier %q", e.Name)
			return
		}
		r.setRef(e.ID, sym.ref)
		if sym.ref.Kind == VarArray || sym.ref.Kind == VarGlobalArray {
			r.errorf(e.P, "cannot assign to array %q without subscripts", e.Name)
		}
	case *ParenExpr:
		r.lvalue(e.X)
	case *IndexExpr:
		r.index(e)
	default:
		r.errorf(e.Pos(), "expression is not assignable")
	}
}

// splitIndexChain unwinds a chained subscript expression, returning the
// root identifier (nil when the root is not a variable) and the subscript
// expressions outermost-first.
func splitIndexChain(e Expr) (*Ident, []Expr) {
	var subs []Expr
	cur := e
	for {
		switch x := cur.(type) {
		case *IndexExpr:
			subs = append([]Expr{x.Idx}, subs...)
			cur = x.X
		case *ParenExpr:
			cur = x.X
		case *Ident:
			return x, subs
		default:
			return nil, subs
		}
	}
}

func (r *resolver) index(e *IndexExpr) {
	root, subs := splitIndexChain(e)
	for _, sx := range subs {
		r.expr(sx)
	}
	if root == nil {
		r.errorf(e.P, "indexed expression is not a variable")
		return
	}
	sym := r.lookup(root.Name)
	if sym == nil {
		r.errorf(root.P, "undeclared identifier %q", root.Name)
		return
	}
	r.setRef(root.ID, sym.ref)
	if sym.ref.Kind != VarArray && sym.ref.Kind != VarGlobalArray {
		r.errorf(root.P, "%q is not an array", root.Name)
		return
	}
	if len(subs) != sym.rank {
		r.errorf(e.P, "array %q has rank %d but is indexed with %d subscript(s)",
			root.Name, sym.rank, len(subs))
	}
}

func (r *resolver) call(e *CallExpr) {
	if n, ok := builtinArity[e.Fun]; ok {
		r.res.builtins[e.ID] = true
		if len(e.Args) != n {
			r.errorf(e.P, "builtin %s expects %d argument(s), got %d", e.Fun, n, len(e.Args))
		}
		for _, a := range e.Args {
			r.expr(a)
		}
		return
	}
	fn := r.funcs[e.Fun]
	if fn == nil {
		r.errorf(e.P, "call to undefined function %q", e.Fun)
		return
	}
	if len(e.Args) != len(fn.Params) {
		r.errorf(e.P, "%s expects %d argument(s), got %d", e.Fun, len(fn.Params), len(e.Args))
		return
	}
	for i, a := range e.Args {
		p := fn.Params[i]
		switch {
		case p.Type.IsArray():
			r.arrayArg(a, p, e.Fun)
		case p.Type.Ptr:
			r.cellArg(a)
		default:
			r.expr(a)
		}
	}
}

// arrayArg resolves an argument bound to an array parameter: it must be a
// plain array variable whose declared rank matches the parameter's.
func (r *resolver) arrayArg(a Expr, p *Param, fun string) {
	for {
		pe, ok := a.(*ParenExpr)
		if !ok {
			break
		}
		a = pe.X
	}
	id, ok := a.(*Ident)
	if !ok {
		r.errorf(a.Pos(), "argument for array parameter %q of %s must be an array variable",
			p.Name, fun)
		return
	}
	sym := r.lookup(id.Name)
	if sym == nil {
		r.errorf(id.P, "undeclared identifier %q", id.Name)
		return
	}
	r.setRef(id.ID, sym.ref)
	if sym.ref.Kind != VarArray && sym.ref.Kind != VarGlobalArray {
		r.errorf(id.P, "%q is not an array", id.Name)
		return
	}
	if sym.rank != len(p.Type.Dims) {
		r.errorf(id.P, "rank mismatch: %q has rank %d but parameter %q of %s expects rank %d",
			id.Name, sym.rank, p.Name, fun, len(p.Type.Dims))
	}
}

// cellArg resolves an argument bound to a pointer parameter: a scalar
// variable, optionally written &x.
func (r *resolver) cellArg(a Expr) {
	for {
		switch x := a.(type) {
		case *ParenExpr:
			a = x.X
			continue
		case *UnExpr:
			if x.Op == AMP {
				a = x.X
				continue
			}
		}
		break
	}
	id, ok := a.(*Ident)
	if !ok {
		r.errorf(a.Pos(), "argument for pointer parameter must be a scalar variable")
		return
	}
	sym := r.lookup(id.Name)
	if sym == nil {
		r.errorf(id.P, "undeclared identifier %q", id.Name)
		return
	}
	r.setRef(id.ID, sym.ref)
	if sym.ref.Kind == VarArray || sym.ref.Kind == VarGlobalArray {
		r.errorf(id.P, "array %q cannot bind a pointer parameter", id.Name)
	}
}

// constEval evaluates a constant expression at resolve time. It reports
// ok=false for anything that depends on runtime state (or would fault,
// e.g. division by a zero constant).
func constEval(e Expr) (Value, bool) {
	switch e := e.(type) {
	case *IntLit:
		return IntV(e.V), true
	case *FloatLit:
		return FloatV(e.V), true
	case *ParenExpr:
		return constEval(e.X)
	case *CastExpr:
		v, ok := constEval(e.X)
		if !ok {
			return Value{}, false
		}
		return convertKind(v, e.To.Kind), true
	case *UnExpr:
		v, ok := constEval(e.X)
		if !ok {
			return Value{}, false
		}
		switch e.Op {
		case MINUS:
			if v.IsInt {
				return IntV(-v.I), true
			}
			return FloatV(-v.F), true
		case NOT:
			if v.Bool() {
				return IntV(0), true
			}
			return IntV(1), true
		}
		return Value{}, false
	case *BinExpr:
		x, ok := constEval(e.X)
		if !ok {
			return Value{}, false
		}
		y, ok := constEval(e.Y)
		if !ok {
			return Value{}, false
		}
		switch e.Op {
		case PLUS, MINUS, STAR, SLASH, PERCENT:
			if (e.Op == SLASH || e.Op == PERCENT) && x.IsInt && y.IsInt && y.I == 0 {
				return Value{}, false
			}
			return arith(e.Op, x, y, "", Pos{}), true
		case EQ, NEQ, LT, GT, LEQ, GEQ:
			return compare(e.Op, x, y), true
		}
		return Value{}, false
	case *CondExpr:
		c, ok := constEval(e.Cond)
		if !ok {
			return Value{}, false
		}
		if c.Bool() {
			return constEval(e.Then)
		}
		return constEval(e.Else)
	}
	return Value{}, false
}
