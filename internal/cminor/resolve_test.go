package cminor

import (
	"strings"
	"testing"
)

// mustResolveErr parses src, resolves it, and asserts resolution fails
// with a diagnostic containing want and a file:line:col prefix.
func mustResolveErr(t *testing.T, src, want string) {
	t.Helper()
	f := MustParse("t.c", src)
	_, err := Resolve(f)
	if err == nil {
		t.Fatalf("Resolve succeeded, want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error = %q, want substring %q", err, want)
	}
	if !strings.Contains(err.Error(), "t.c:") {
		t.Errorf("error should carry a file:line:col position: %q", err)
	}
}

func TestResolveUndeclaredIdent(t *testing.T) {
	mustResolveErr(t, "void f() { x = 1; }", `undeclared identifier "x"`)
}

func TestResolveUndeclaredInExpr(t *testing.T) {
	mustResolveErr(t, "int f(int a) { return a + b; }", `undeclared identifier "b"`)
}

func TestResolveRankMismatchIndex(t *testing.T) {
	mustResolveErr(t, "void f(int n, double A[n][n]) { A[0] = 1.0; }",
		"rank 2 but is indexed with 1 subscript")
}

func TestResolveRankMismatchArg(t *testing.T) {
	src := `
void g(int n, double B[n][n]) { B[0][0] = 1.0; }
void f(int n, double A[n]) { g(n, A); }
`
	mustResolveErr(t, src, "rank mismatch")
}

func TestResolveArityMismatch(t *testing.T) {
	src := `
double g(double x) { return x; }
double f() { return g(1.0, 2.0); }
`
	mustResolveErr(t, src, "g expects 1 argument(s), got 2")
}

func TestResolveBuiltinArity(t *testing.T) {
	mustResolveErr(t, "double f(double x) { return sqrt(x, x); }",
		"builtin sqrt expects 1 argument(s), got 2")
}

func TestResolveArrayUsedAsScalar(t *testing.T) {
	mustResolveErr(t, "void f(int n, double A[n]) { double s = A; }",
		`array "A" used as a scalar value`)
}

func TestResolveScalarIndexed(t *testing.T) {
	mustResolveErr(t, "void f(double x) { x[0] = 1.0; }", `"x" is not an array`)
}

func TestResolveUndefinedCall(t *testing.T) {
	mustResolveErr(t, "void f() { g(); }", `call to undefined function "g"`)
}

func TestResolvePrototypeOnlyCall(t *testing.T) {
	mustResolveErr(t, "void g(int n);\nvoid f() { g(3); }",
		`call to undefined function "g"`)
}

func TestResolveAssignToArray(t *testing.T) {
	mustResolveErr(t, "void f(int n, double A[n]) { A = 1.0; }",
		"cannot assign to array")
}

func TestResolveAnnotatesSlots(t *testing.T) {
	f := MustParse("t.c", miniKernel)
	res, err := Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	info := res.Funcs["kernel_axpy"]
	if info == nil {
		t.Fatal("kernel_axpy not resolved")
	}
	// Params: n (scalar), alpha (scalar), x (array), y (array); plus local i.
	if info.NumScalars != 3 || info.NumArrays != 2 || info.NumCells != 0 {
		t.Fatalf("slot counts = %d scalars, %d cells, %d arrays; want 3/0/2",
			info.NumScalars, info.NumCells, info.NumArrays)
	}
	// Every identifier in the loop body must carry a resolved slot in
	// the side table (the AST itself stays unannotated).
	unresolved := 0
	Walk(info.Decl.Body, func(n Node) bool {
		if id, ok := n.(*Ident); ok && res.RefOf(id).Kind == VarUnresolved {
			unresolved++
		}
		return true
	})
	if unresolved != 0 {
		t.Errorf("%d identifiers left unresolved", unresolved)
	}
}

// TestResolveRejectsDuplicateNodeIDs: the annotation side tables are
// keyed by NodeID, so a tree with aliased IDs (a cloned subtree spliced
// into its own file) must be rejected loudly, not mis-bound silently.
func TestResolveRejectsDuplicateNodeIDs(t *testing.T) {
	f := MustParse("t.c", "int f(int a) { return a + a; }")
	body := f.Funcs[0].Body
	body.Stmts = append(body.Stmts, CloneStmt(body.Stmts[0]))
	if _, err := Resolve(f); err == nil || !strings.Contains(err.Error(), "duplicate node ID") {
		t.Fatalf("err = %v, want duplicate-node-ID diagnostic", err)
	}
}

func TestResolveGlobalConstDims(t *testing.T) {
	src := `
double table[2 * 4];
int scale = 3;
void f() { table[0] = 1.0; }
`
	res, err := Resolve(MustParse("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arrays) != 1 || res.Arrays[0].Dims[0] != 8 {
		t.Fatalf("global arrays = %+v, want one with dim 8", res.Arrays)
	}
	if len(res.Scalars) != 1 || res.Scalars[0].Init.Int() != 3 {
		t.Fatalf("global scalars = %+v, want scale=3", res.Scalars)
	}
}

func TestResolveGlobalNonConstDim(t *testing.T) {
	mustResolveErr(t, "int n = 4;\ndouble table[n];\nvoid f() { return; }",
		"not a constant expression")
}

func TestResolveScopeShadowing(t *testing.T) {
	src := `
int f(int a) {
  int s = 0;
  if (a > 0) {
    int s = 10;
    s = s + a;
  }
  return s;
}
`
	res, err := Resolve(MustParse("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	// Outer s and inner s must live in distinct slots: a + two s's.
	if got := res.Funcs["f"].NumScalars; got != 3 {
		t.Errorf("NumScalars = %d, want 3 (param + shadowed locals)", got)
	}
}
