package cminor

import (
	"math"
	"testing"
)

func diffCheck(t *testing.T, name, src, fn string, mk func() []any) {
	t.Helper()
	f := MustParse("t.c", src)
	wArgs, cArgs := mk(), mk()
	wv, werr := NewWalker(f).Call(fn, wArgs...)
	cv, cerr := NewInterp(f).Call(fn, cArgs...)
	if (werr == nil) != (cerr == nil) {
		t.Fatalf("%s: error divergence walker=%v compiled=%v", name, werr, cerr)
	}
	if werr == nil && !sameValue(wv, cv) {
		t.Fatalf("%s: return divergence walker=%+v compiled=%+v", name, wv, cv)
	}
	for i := range wArgs {
		wa, ok := wArgs[i].(*Array)
		if !ok {
			continue
		}
		ca := cArgs[i].(*Array)
		for k := range wa.Data {
			if math.Float64bits(wa.Data[k]) != math.Float64bits(ca.Data[k]) {
				t.Fatalf("%s: array %d diverges at %d: walker=%g compiled=%g",
					name, i, k, wa.Data[k], ca.Data[k])
			}
		}
	}
}

// Inner loop's hoisted access fails preflight (A[j+off] out of range when
// off selected), while the outer loop's own hoists stay valid, so the
// outer fast body must drive the inner SAFE body with outer-registered
// hoists still live.
func TestReviewNestedInnerDeopt(t *testing.T) {
	src := `
double f(int n, int off, double a[n], double b[n][n], double out[n]) {
  int i; int j;
  double acc = 0.0;
  for (i = 0; i < n; i++) {
    out[i] = a[i] * 2.0;
    for (j = 0; j < n; j++) {
      b[i][j] = b[i][j] + a[j + off] + out[i];
      acc += b[i][j];
    }
  }
  return acc;
}`
	for _, off := range []int64{0, 1, 3} { // off=1,3 push a[j+off] out of range
		mk := func() []any {
			a, b, out := NewArray(6), NewArray(6, 6), NewArray(6)
			for i := range a.Data {
				a.Data[i] = float64(i) * 0.5
			}
			for i := range b.Data {
				b.Data[i] = float64(i) * 0.25
			}
			return []any{IntV(6), IntV(off), a, b, out}
		}
		diffCheck(t, "nested-deopt", src, "f", mk)
	}
}

// Row-striding (hRowIV) access nested under an outer loop, inner bound
// depends on outer-invariant expr; plus a diagonal access that must stay
// generic.
func TestReviewRowStrideAndDiagonal(t *testing.T) {
	src := `
double f(int n, double b[n][n]) {
  int i; int j;
  double acc = 0.0;
  for (i = 0; i < n; i++) {
    for (j = 1; j <= n - 1; j = j + 1) {
      b[j][i] = b[j - 1][i] * 0.5 + 1.0;
      b[j][j] += 0.125;
      acc += b[j][i];
    }
  }
  return acc;
}`
	mk := func() []any {
		b := NewArray(7, 7)
		for i := range b.Data {
			b.Data[i] = float64(i) * 0.125
		}
		return []any{IntV(7), b}
	}
	diffCheck(t, "rowstride", src, "f", mk)
}

// The loop bound is a double-kinded variable that demotes to dynamic
// (int store later); counted loop must not fire, parity must hold.
func TestReviewDynamicBoundAndDemotedIV(t *testing.T) {
	src := `
double f(int n, double a[n]) {
  int i;
  double m = 4.0;
  m = n - 1;
  for (i = 0; i < m; i++) {
    a[i] += 1.0;
  }
  for (i = 0; i <= m; i++) {
    a[0] += 0.5;
  }
  return a[0];
}`
	mk := func() []any {
		a := NewArray(8)
		for i := range a.Data {
			a.Data[i] = float64(i)
		}
		return []any{IntV(8), a}
	}
	diffCheck(t, "dynbound", src, "f", mk)
}

// Rank mismatch at loop entry (array param rebound with wrong rank):
// setup must bail to the safe body and fault exactly like the walker.
func TestReviewRankMismatchDeopt(t *testing.T) {
	src := `
double f(int n, double a[n]) {
  int i;
  for (i = 0; i < n; i++) {
    a[i] += 1.0;
  }
  return a[0];
}`
	mk := func() []any { return []any{IntV(4), NewArray(4, 4)} }
	diffCheck(t, "rankmismatch", src, "f", mk)
}

// Negative affine offset out of range on iteration 0 plus partial-state
// parity: the fault happens mid-loop in the walker.
func TestReviewNegOffsetFault(t *testing.T) {
	src := `
double f(int n, double a[n]) {
  int i;
  for (i = 0; i < n; i++) {
    a[i - 2] = 1.0 * i;
  }
  return 0.0;
}`
	mk := func() []any { return []any{IntV(5), NewArray(5)} }
	diffCheck(t, "negoff", src, "f", mk)
}

// Bound read from a global that the body mutates through an element/
// global store; counted loop must refuse to hoist the bound.
func TestReviewGlobalBoundMutation(t *testing.T) {
	src := `
int g = 5;
double f(double a[m]) {
  int i;
  double acc = 0.0;
  for (i = 0; i < g; i++) {
    g = g - 1;
    acc += i;
  }
  return acc;
}`
	mk := func() []any { return []any{NewArray(3)} }
	diffCheck(t, "globalbound", src, "f", mk)
}

// Induction variable read after a zero-trip inner loop; also "c + i"
// affine form and invariant float subscript truncation.
func TestReviewMiscShapes(t *testing.T) {
	src := `
double f(int n, double a[n], double b[n][n]) {
  int i; int j;
  double x = 1.9;
  double acc = 0.0;
  for (i = 0; i < n; i++) {
    for (j = n; j < n; j++) { acc += 100.0; }
    a[x] = a[x] + 1.0;
    b[i][1 + i] = 2.0;
    acc += b[i][1 + i] + a[x] + j;
  }
  return acc;
}`
	mk := func() []any {
		a, b := NewArray(9), NewArray(9, 9)
		return []any{IntV(8), a, b}
	}
	diffCheck(t, "misc", src, "f", mk)
}
