package serve

import (
	"testing"
	"time"
)

// TestStatusLineGolden pins the operator surface byte-for-byte: a fixed
// fake-clock scenario must render exactly this status line, and the
// backing Snapshot must carry exactly these numbers. Any formatting or
// accounting drift is a deliberate, test-visible change.
func TestStatusLineGolden(t *testing.T) {
	clk := &fakeClock{t: simStart()}
	s := newSimServer(t, clk, WithQueueDepth(8), WithMaxBatch(1))
	defer s.Close()

	// Empty server: zeroed gauges render their fixed forms.
	if got, want := s.StatusLine(),
		"[q 0/8 r 0] ok 0 err 0 rej 0 shed 0 deg 0 | 0.0 req/s | p50 0ns p99 0ns"; got != want {
		t.Fatalf("empty status line:\n got %q\nwant %q", got, want)
	}

	// Request A: queued 2ms, then served.
	pa, err := s.Submit(nil, Request{Tenant: "acme", Function: "probe", Args: simArgs(16)})
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Millisecond)
	if !s.Tick() {
		t.Fatal("A did not dispatch")
	}
	// Request B from another tenant: queued 3ms, completing 4ms after A.
	clk.advance(time.Millisecond)
	pb, err := s.Submit(nil, Request{Tenant: "bob", Function: "probe", Args: simArgs(16)})
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(3 * time.Millisecond)
	if !s.Tick() {
		t.Fatal("B did not dispatch")
	}
	// Request C: dead on arrival.
	if _, err := s.Submit(nil, Request{Tenant: "acme", Function: "probe",
		Args: simArgs(16), Deadline: clk.Now().Add(-time.Second)}); err == nil {
		t.Fatal("expired deadline admitted")
	}
	if ra, rb := pa.Wait(), pb.Wait(); ra.Err != nil || rb.Err != nil {
		t.Fatalf("completions: %v, %v", ra.Err, rb.Err)
	}

	// Latencies 2ms and 3ms; one inter-completion gap of 4ms = 250/s.
	if got, want := s.StatusLine(),
		"[q 0/8 r 0] ok 2 err 0 rej 1 shed 0 deg 0 | 250 req/s | p50 3.0ms p99 3.0ms"; got != want {
		t.Fatalf("status line:\n got %q\nwant %q", got, want)
	}

	snap := s.Snapshot()
	if snap.Submitted != 3 || snap.Admitted != 2 || snap.Completed != 2 ||
		snap.RejectedExpired != 1 || snap.Rejected() != 1 ||
		snap.Batches != 2 || snap.BatchedCalls != 2 ||
		snap.Queued != 0 || snap.Running != 0 {
		t.Fatalf("snapshot counters: %+v", snap)
	}
	if snap.Uptime != 6*time.Millisecond {
		t.Fatalf("uptime %v, want 6ms", snap.Uptime)
	}
	// latEWMA: seeded 2ms, then 0.2*3ms + 0.8*2ms = 2.2ms.
	if snap.LatencyEWMA != 2200*time.Microsecond {
		t.Fatalf("latency EWMA %v, want 2.2ms", snap.LatencyEWMA)
	}
	if snap.Throughput != 250 {
		t.Fatalf("throughput %v, want 250", snap.Throughput)
	}
	if snap.P50 != 3*time.Millisecond || snap.P99 != 3*time.Millisecond {
		t.Fatalf("percentiles p50=%v p99=%v, want 3ms/3ms", snap.P50, snap.P99)
	}
	if len(snap.Tenants) != 2 ||
		snap.Tenants[0].Tenant != "acme" || snap.Tenants[1].Tenant != "bob" {
		t.Fatalf("tenant ordering: %+v", snap.Tenants)
	}
	acme, bob := snap.Tenants[0], snap.Tenants[1]
	if acme.Submitted != 2 || acme.Admitted != 1 || acme.Rejected != 1 || acme.Completed != 1 {
		t.Fatalf("acme ledger: %+v", acme)
	}
	if bob.Submitted != 1 || bob.Completed != 1 || bob.Rejected != 0 {
		t.Fatalf("bob ledger: %+v", bob)
	}

	// The snapshot renders the same line as the server: one code path.
	if snap.StatusLine() != s.StatusLine() {
		t.Fatal("Snapshot.StatusLine diverges from Server.StatusLine")
	}
}

// TestFormatHelpers pins the deterministic unit formatting the status
// line depends on.
func TestFormatHelpers(t *testing.T) {
	rates := map[float64]string{
		0:       "0.0",
		3.14:    "3.1",
		99.94:   "99.9",
		100:     "100",
		831:     "831",
		1500:    "1.5k",
		2340000: "2.3M",
		// Rounding boundaries: each value sits where the next-lower
		// format's rounding overflows its width, so it must already be
		// promoted (thresholds at 1e3/1e6/100 printed 999.96 as "1000",
		// 99.96 as "100.0", 999960 as "1000.0k").
		99.96:  "100",
		999.4:  "999",
		999.96: "1.0k",
		999940: "999.9k",
		999960: "1.0M",
	}
	for in, want := range rates {
		if got := fmtRate(in); got != want {
			t.Errorf("fmtRate(%v) = %q, want %q", in, got, want)
		}
	}
	durs := map[time.Duration]string{
		0:                        "0ns",
		740 * time.Nanosecond:    "740ns",
		12500 * time.Nanosecond:  "12.5µs",
		1200 * time.Microsecond:  "1.2ms",
		8940 * time.Microsecond:  "8.9ms",
		2340 * time.Millisecond:  "2.34s",
		15600 * time.Millisecond: "15.60s",
	}
	for in, want := range durs {
		if got := fmtDur(in); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", in, got, want)
		}
	}
}
