package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Live metrics. Counters are atomics so the scrape path (Snapshot,
// StatusLine) never contends with dispatch for anything but the short
// gauge mutex; gauges (EWMAs, the latency ring) are updated at
// completion under a dedicated small mutex, not the scheduler lock.

// metricsAlpha is the weight a new observation carries in the EWMA
// gauges (queue depth, latency, inter-completion interval).
const metricsAlpha = 0.2

// latRingSize is the window of recent completion latencies the
// percentile gauges are computed over.
const latRingSize = 512

type metrics struct {
	submitted        atomic.Int64
	admitted         atomic.Int64
	rejectedClosed   atomic.Int64
	rejectedExpired  atomic.Int64
	rejectedFull     atomic.Int64
	rejectedInFlight atomic.Int64
	rejectedRate     atomic.Int64
	rejectedSteps    atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	shedQueued       atomic.Int64
	shedRunning      atomic.Int64
	degraded         atomic.Int64
	faults           atomic.Int64
	batches          atomic.Int64
	batchedCalls     atomic.Int64

	gmu       sync.Mutex
	queueEWMA float64 // entries, sampled at every submit and dispatch
	latEWMA   float64 // ns, completed calls only
	gapEWMA   float64 // ns between consecutive completions
	// The seeded flags mark a gauge's EWMA as holding at least one real
	// observation. The first observation seeds the gauge directly
	// (smoothing a new sample against an arbitrary zero start would just
	// slow convergence) — and "first" must be tracked explicitly: zero
	// is a legitimate first observation (an empty queue, a zero-duration
	// call under a fake clock, back-to-back completions at one instant),
	// so a `== 0` sentinel would leave the gauge unseeded and let the
	// NEXT sample jump in unsmoothed.
	queueSeeded bool
	latSeeded   bool
	gapSeeded   bool
	lastDone    time.Time
	ring        [latRingSize]int64 // ns, most recent completions
	ringN       int64              // total latencies ever recorded
}

// observeQueue folds the current queue depth into its EWMA gauge.
func (m *metrics) observeQueue(depth int) {
	m.gmu.Lock()
	if !m.queueSeeded {
		m.queueEWMA, m.queueSeeded = float64(depth), true
	} else {
		m.queueEWMA = metricsAlpha*float64(depth) + (1-metricsAlpha)*m.queueEWMA
	}
	m.gmu.Unlock()
}

// observeDone records one successful completion: latency into the ring
// and EWMA, and the inter-completion gap into the throughput EWMA.
func (m *metrics) observeDone(now time.Time, latency time.Duration) {
	ns := float64(latency)
	m.gmu.Lock()
	m.ring[m.ringN%latRingSize] = int64(latency)
	m.ringN++
	if !m.latSeeded {
		m.latEWMA, m.latSeeded = ns, true
	} else {
		m.latEWMA = metricsAlpha*ns + (1-metricsAlpha)*m.latEWMA
	}
	if !m.lastDone.IsZero() {
		// A zero gap (two completions at the same clock instant) is a
		// real observation of maximal burst throughput; it folds in like
		// any other. The Throughput derivation guards the division.
		if gap := now.Sub(m.lastDone); gap >= 0 {
			g := float64(gap)
			if !m.gapSeeded {
				m.gapEWMA, m.gapSeeded = g, true
			} else {
				m.gapEWMA = metricsAlpha*g + (1-metricsAlpha)*m.gapEWMA
			}
		}
	}
	m.lastDone = now
	m.gmu.Unlock()
}

// percentiles computes (p50, p99) over the latency window.
func (m *metrics) percentiles() (p50, p99 time.Duration) {
	m.gmu.Lock()
	n := m.ringN
	if n > latRingSize {
		n = latRingSize
	}
	buf := make([]int64, n)
	copy(buf, m.ring[:n])
	m.gmu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	pick := func(p float64) time.Duration {
		idx := int(p*float64(n-1) + 0.5)
		return time.Duration(buf[idx])
	}
	return pick(0.50), pick(0.99)
}

// Snapshot is the server's full observable state at one instant: the
// operator surface the status line renders and scrapers export.
type Snapshot struct {
	Time   time.Time
	Uptime time.Duration

	// Scheduler occupancy.
	Queued     int     // entries waiting in the admission queue
	QueueDepth int     // the configured bound
	Running    int     // entries dispatched and executing
	QueueEWMA  float64 // smoothed queue depth

	// Admission counters.
	Submitted        int64
	Admitted         int64
	RejectedClosed   int64
	RejectedExpired  int64
	RejectedFull     int64
	RejectedInFlight int64
	RejectedRate     int64
	RejectedSteps    int64

	// Outcome counters.
	Completed   int64 // calls that returned a value (degraded included)
	Failed      int64 // program faults and surfaced internal faults
	ShedQueued  int64 // dropped in the queue on an expired deadline
	ShedRunning int64 // aborted mid-call via context cancellation
	Degraded    int64 // served by trusted-fallback re-execution
	Faults      int64 // contained internal faults observed

	// Batching.
	Batches      int64 // dispatched batches
	BatchedCalls int64 // entries those batches carried

	// Gauges.
	Throughput  float64 // req/s, from the inter-completion gap EWMA
	LatencyEWMA time.Duration
	P50         time.Duration // over the last latRingSize completions
	P99         time.Duration

	Tenants []TenantSnapshot // sorted by tenant name
}

// Rejected totals the admission rejections across every reason.
func (s *Snapshot) Rejected() int64 {
	return s.RejectedClosed + s.RejectedExpired + s.RejectedFull +
		s.RejectedInFlight + s.RejectedRate + s.RejectedSteps
}

// Shed totals queued and running sheds.
func (s *Snapshot) Shed() int64 { return s.ShedQueued + s.ShedRunning }

// TenantSnapshot is one tenant's usage accounting.
type TenantSnapshot struct {
	Tenant    string
	InFlight  int
	Submitted int64
	Admitted  int64
	Rejected  int64
	Completed int64
	Failed    int64
	Shed      int64
	Degraded  int64
	Faults    int64
	Steps     int64 // total interpreter steps executed for this tenant
	// Remaining quota balances (meaningful only for limited tenants).
	RateTokens float64
	StepTokens float64
}
