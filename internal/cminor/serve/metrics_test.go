package serve

import (
	"testing"
	"time"
)

// TestGaugesSeedOnZeroFirstObservation is the regression pin for the
// seeded-flag fix: zero is a legitimate first observation for every
// EWMA gauge (an empty queue, a zero-latency call under a fake clock,
// two completions at one instant). A gauge seeded with zero must SMOOTH
// the next sample, not treat it as the first — the old `== 0` sentinel
// let the second observation jump in at full weight.
func TestGaugesSeedOnZeroFirstObservation(t *testing.T) {
	t.Run("queue depth", func(t *testing.T) {
		m := &metrics{}
		m.observeQueue(0)
		if !m.queueSeeded || m.queueEWMA != 0 {
			t.Fatalf("after observing depth 0: seeded=%v ewma=%v", m.queueSeeded, m.queueEWMA)
		}
		m.observeQueue(10)
		if want := metricsAlpha * 10; m.queueEWMA != want {
			t.Fatalf("queue EWMA %v, want %v (the zero seed must smooth the next sample)",
				m.queueEWMA, want)
		}
	})
	t.Run("latency", func(t *testing.T) {
		m := &metrics{}
		now := simStart()
		m.observeDone(now, 0)
		if !m.latSeeded || m.latEWMA != 0 {
			t.Fatalf("after a zero-latency completion: seeded=%v ewma=%v", m.latSeeded, m.latEWMA)
		}
		m.observeDone(now.Add(time.Millisecond), 10*time.Millisecond)
		if want := metricsAlpha * float64(10*time.Millisecond); m.latEWMA != want {
			t.Fatalf("latency EWMA %v, want %v", m.latEWMA, want)
		}
	})
	t.Run("completion gap", func(t *testing.T) {
		m := &metrics{}
		now := simStart()
		m.observeDone(now, time.Millisecond) // seeds lastDone, no gap yet
		m.observeDone(now, time.Millisecond) // zero gap: a real observation
		if !m.gapSeeded || m.gapEWMA != 0 {
			t.Fatalf("after a zero gap: seeded=%v ewma=%v", m.gapSeeded, m.gapEWMA)
		}
		m.observeDone(now.Add(10*time.Millisecond), time.Millisecond)
		if want := metricsAlpha * float64(10*time.Millisecond); m.gapEWMA != want {
			t.Fatalf("gap EWMA %v, want %v", m.gapEWMA, want)
		}
	})
}

// TestPercentilesRingWrap pins the latency window once more completions
// than latRingSize have been recorded: the percentiles must cover
// exactly the last latRingSize completions — newest overwrite oldest —
// not a stale mix.
func TestPercentilesRingWrap(t *testing.T) {
	now := simStart()

	// 512 fast completions, then 100 slow ones: the window holds
	// 412 x 1ms + 100 x 100ms. Sorted, index 256 (p50) is still fast,
	// index 506 (p99) is slow.
	m := &metrics{}
	for i := 0; i < latRingSize; i++ {
		m.observeDone(now, time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		m.observeDone(now, 100*time.Millisecond)
	}
	p50, p99 := m.percentiles()
	if p50 != time.Millisecond {
		t.Fatalf("p50 = %v, want 1ms (412 of the last 512 are fast)", p50)
	}
	if p99 != 100*time.Millisecond {
		t.Fatalf("p99 = %v, want 100ms (the slow burst is inside the window)", p99)
	}

	// The mirror image: 100 slow completions first, then 512 fast ones.
	// The slow batch has aged out of the window entirely — if p99 still
	// sees it, the window is not the LAST latRingSize completions.
	m = &metrics{}
	for i := 0; i < 100; i++ {
		m.observeDone(now, 100*time.Millisecond)
	}
	for i := 0; i < latRingSize; i++ {
		m.observeDone(now, time.Millisecond)
	}
	p50, p99 = m.percentiles()
	if p50 != time.Millisecond || p99 != time.Millisecond {
		t.Fatalf("p50=%v p99=%v, want 1ms/1ms: the pre-wrap slow batch must have aged out", p50, p99)
	}
}
