package serve

import "time"

// Per-tenant admission quotas. The server multiplexes many untrusted
// callers onto one engine; a tenant must not be able to starve the
// others by flooding the queue (request rate), parking work in it
// (in-flight cap), or burning the interpreter on huge kernels (step
// budget). All three are enforced at admission time with token buckets
// on the server's injected Clock, so quota exhaustion and refill are
// exactly reproducible under a fake clock.

// TenantQuota bounds one tenant's use of the server. The zero value is
// fully unlimited — quotas are opt-in per dimension.
type TenantQuota struct {
	// MaxInFlight caps the tenant's queued+running requests
	// (0 = unlimited). Admission past the cap is rejected with
	// ErrTenantInFlight.
	MaxInFlight int
	// Rate is the sustained admission rate in requests per second,
	// enforced by a token bucket of capacity Burst (0 = unlimited).
	// An empty bucket rejects with ErrTenantRate.
	Rate float64
	// Burst is the request bucket capacity; 0 defaults to max(Rate, 1).
	Burst float64
	// StepRate is the sustained interpreter-step budget in steps per
	// second (0 = unlimited). Steps are post-paid: a request is admitted
	// while the step bucket holds any credit, and each completed call
	// debits its actual deterministic step count
	// (Instance.LastCallSteps) — so one oversized call can drive the
	// balance negative, and the tenant then waits out the refill.
	// An exhausted bucket rejects with ErrTenantSteps.
	StepRate float64
	// StepBurst is the step bucket capacity; 0 defaults to StepRate.
	StepBurst float64
}

// normalize applies the documented defaulting.
func (q TenantQuota) normalize() TenantQuota {
	if q.Rate > 0 && q.Burst == 0 {
		q.Burst = q.Rate
		if q.Burst < 1 {
			q.Burst = 1
		}
	}
	if q.StepRate > 0 && q.StepBurst == 0 {
		q.StepBurst = q.StepRate
	}
	return q
}

// bucket is a token bucket on the server clock. rate == 0 means
// unlimited: every take succeeds and spends are ignored.
type bucket struct {
	tokens float64
	rate   float64 // tokens per second
	burst  float64
	last   time.Time
}

func newBucket(rate, burst float64, now time.Time) bucket {
	return bucket{tokens: burst, rate: rate, burst: burst, last: now}
}

// refill credits tokens for the time elapsed since the last refill,
// capped at the burst size. The watermark only advances when credit is
// actually granted: if the clock reads earlier than the last refill (a
// backwards wall-clock step — NTP correction, VM migration), moving
// `last` back would let the tenant re-earn tokens for an interval it
// already banked once the clock catches up. The regression instead
// freezes refills until real time passes the old watermark.
func (b *bucket) refill(now time.Time) {
	if b.rate == 0 {
		return
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += b.rate * dt.Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// take withdraws n tokens if the full amount is available (pre-paid
// admission: one token per request).
func (b *bucket) take(now time.Time, n float64) bool {
	if b.rate == 0 {
		return true
	}
	b.refill(now)
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// hasCredit reports a positive balance (post-paid admission: any credit
// admits, the actual cost is spent at completion).
func (b *bucket) hasCredit(now time.Time) bool {
	if b.rate == 0 {
		return true
	}
	b.refill(now)
	return b.tokens > 0
}

// spend debits n tokens unconditionally — the post-paid settlement; the
// balance may go negative, blocking admissions until the refill catches
// up.
func (b *bucket) spend(now time.Time, n float64) {
	if b.rate == 0 {
		return
	}
	b.refill(now)
	b.tokens -= n
}
