package serve

import (
	"testing"
	"time"
)

// TestBucketClockRegression is the refill-watermark regression pin: a
// clock that steps BACKWARDS (NTP correction, VM migration) must not
// move the bucket's refill watermark back with it. The old refill
// advanced `last = now` unconditionally, so after a regression the
// tenant re-earned the whole already-banked interval once the clock
// caught up — free quota minted out of a clock adjustment.
func TestBucketClockRegression(t *testing.T) {
	t0 := simStart()
	b := newBucket(10, 100, t0)
	if !b.take(t0, 100) {
		t.Fatal("full bucket refused its burst")
	}
	if b.take(t0, 1) {
		t.Fatal("empty bucket granted a token")
	}
	// The wall clock steps back five seconds. No credit — and, the point
	// of the fix, no watermark movement.
	if b.take(t0.Add(-5*time.Second), 1) {
		t.Fatal("a backwards clock granted a token")
	}
	// One real second after the drain: exactly rate x 1s = 10 tokens
	// exist. The buggy watermark (moved back 5s) would mint 60.
	t1 := t0.Add(time.Second)
	if b.take(t1, 20) {
		t.Fatal("clock regression re-earned already-banked time")
	}
	if !b.take(t1, 10) {
		t.Fatal("the genuine second of refill credit is missing")
	}
	if b.take(t1, 1) {
		t.Fatal("bucket should be empty again")
	}
}

// TestStepBucketClockRegression covers the post-paid path: a step
// bucket in debt must repay it on the original timeline even when the
// clock regresses between the overdraft and the next admission check.
func TestStepBucketClockRegression(t *testing.T) {
	t0 := simStart()
	b := newBucket(100, 10, t0)
	b.spend(t0, 60) // balance -50: one oversized call, post-paid
	if b.hasCredit(t0) {
		t.Fatal("overdrawn bucket reported credit")
	}
	if b.hasCredit(t0.Add(-time.Hour)) {
		t.Fatal("a backwards clock reported credit")
	}
	// Debt is repaid at 100 steps/s from t0, not from t0 minus an hour:
	// just before the half-second mark the tenant is still locked out,
	// just after it admits.
	if b.hasCredit(t0.Add(499 * time.Millisecond)) {
		t.Fatal("credit appeared before the debt was repaid")
	}
	if !b.hasCredit(t0.Add(501 * time.Millisecond)) {
		t.Fatal("credit missing after the debt was repaid")
	}
}
