package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	cm "socrates/internal/cminor"
	"socrates/internal/cminor/autotune"
)

// The scheduler core: everything below runs under Server.mu, as a
// synchronous state machine. Workers (or Tick) pop ready batches out
// of it and run them outside the lock; completion re-enters it to
// settle accounts. Keeping the policy surface lock-synchronous is what
// makes the fake-clock simulations exact.

// entry is one admitted request in flight through the scheduler.
type entry struct {
	req    Request
	ctx    context.Context
	tenant *tenantState
	route  *route
	class  int
	enq    time.Time
	done   chan struct{}
	resp   Response
}

// groupKey is the coalescing key: batches form per (function,
// input-size class) — exactly the autotuner's site key, so a batch
// shares one variant decision.
type groupKey struct {
	fn    string
	class int
}

// group is a forming (or dispatched) batch.
type group struct {
	route   *route
	class   int
	born    time.Time
	entries []*entry
}

// tenantState is one tenant's quota buckets and usage ledger.
type tenantState struct {
	name       string
	quota      TenantQuota
	inflight   int
	reqBucket  bucket
	stepBucket bucket

	submitted int64
	admitted  int64
	rejected  int64
	completed int64
	failed    int64
	shed      int64
	degraded  int64
	faults    int64
	steps     int64
}

func (ts *tenantState) snapshot(now time.Time) TenantSnapshot {
	ts.reqBucket.refill(now)
	ts.stepBucket.refill(now)
	return TenantSnapshot{
		Tenant:     ts.name,
		InFlight:   ts.inflight,
		Submitted:  ts.submitted,
		Admitted:   ts.admitted,
		Rejected:   ts.rejected,
		Completed:  ts.completed,
		Failed:     ts.failed,
		Shed:       ts.shed,
		Degraded:   ts.degraded,
		Faults:     ts.faults,
		Steps:      ts.steps,
		RateTokens: ts.reqBucket.tokens,
		StepTokens: ts.stepBucket.tokens,
	}
}

// tenant returns (lazily creating) the named tenant's state.
func (s *Server) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		q := s.cfg.defaultQuota
		if tq, has := s.cfg.quotas[name]; has {
			q = tq
		}
		now := s.cfg.clock.Now()
		ts = &tenantState{
			name:       name,
			quota:      q,
			reqBucket:  newBucket(q.Rate, q.Burst, now),
			stepBucket: newBucket(q.StepRate, q.StepBurst, now),
		}
		s.tenants[name] = ts
	}
	return ts
}

// admit runs the admission gauntlet under s.mu. The check order is part
// of the contract (pinned by simulation): closed, expired deadline,
// queue full, tenant in-flight cap, tenant request rate, tenant step
// credit. A rejection charges nothing but the tenant's rejected count.
func (s *Server) admit(rt *route, req Request, ctx context.Context, class int, now time.Time) (*entry, error) {
	ts := s.tenant(req.Tenant)
	ts.submitted++
	if s.closed {
		s.met.rejectedClosed.Add(1)
		ts.rejected++
		return nil, ErrClosed
	}
	if !req.Deadline.IsZero() && !req.Deadline.After(now) {
		s.met.rejectedExpired.Add(1)
		ts.rejected++
		return nil, fmt.Errorf("%w (deadline %v, now %v)", ErrDeadlineExpired, req.Deadline, now)
	}
	if s.queued >= s.cfg.queueDepth {
		s.met.rejectedFull.Add(1)
		ts.rejected++
		return nil, fmt.Errorf("%w (%d queued)", ErrQueueFull, s.queued)
	}
	if ts.quota.MaxInFlight > 0 && ts.inflight >= ts.quota.MaxInFlight {
		s.met.rejectedInFlight.Add(1)
		ts.rejected++
		return nil, fmt.Errorf("%w (tenant %q, %d in flight)", ErrTenantInFlight, req.Tenant, ts.inflight)
	}
	if !ts.reqBucket.take(now, 1) {
		s.met.rejectedRate.Add(1)
		ts.rejected++
		return nil, fmt.Errorf("%w (tenant %q)", ErrTenantRate, req.Tenant)
	}
	if !ts.stepBucket.hasCredit(now) {
		s.met.rejectedSteps.Add(1)
		ts.rejected++
		return nil, fmt.Errorf("%w (tenant %q, balance %.0f)", ErrTenantSteps, req.Tenant, ts.stepBucket.tokens)
	}
	ts.admitted++
	ts.inflight++
	s.met.admitted.Add(1)
	return &entry{
		req:    req,
		ctx:    ctx,
		tenant: ts,
		route:  rt,
		class:  class,
		enq:    now,
		done:   make(chan struct{}),
	}, nil
}

// enqueue places an admitted entry into a batch group: an open
// same-(function, class) group if one is still forming, else a fresh
// group at the queue tail. Runs under s.mu.
func (s *Server) enqueue(e *entry, now time.Time) {
	s.queued++
	key := groupKey{fn: e.route.fn, class: e.class}
	if g, ok := s.open[key]; ok {
		g.entries = append(g.entries, e)
		if len(g.entries) >= s.cfg.maxBatch {
			delete(s.open, key) // full: no more joiners
		}
		return
	}
	g := &group{route: e.route, class: e.class, born: now, entries: []*entry{e}}
	s.queue = append(s.queue, g)
	if s.cfg.maxBatch > 1 {
		s.open[key] = g
	}
}

// ready reports whether a group should dispatch now rather than keep
// waiting for company.
func (s *Server) ready(g *group, now time.Time) bool {
	if len(g.entries) >= s.cfg.maxBatch || s.cfg.maxBatchDelay <= 0 || s.closed {
		return true
	}
	return !g.born.Add(s.cfg.maxBatchDelay).After(now)
}

// popReady scans the queue in FIFO order under s.mu: sheds entries
// whose deadline expired while queued, drops emptied groups, and
// removes and returns the first ready group. When nothing is ready but
// unripe groups remain, the zero group is returned along with the
// soonest ripen time so a worker can sleep exactly until then.
func (s *Server) popReady(now time.Time) (*group, time.Time) {
	var ripen time.Time
	i := 0
	for i < len(s.queue) {
		g := s.queue[i]
		// Shed queued entries that can no longer make their deadline.
		kept := g.entries[:0]
		for _, e := range g.entries {
			if !e.req.Deadline.IsZero() && !e.req.Deadline.After(now) {
				s.shedQueuedLocked(e, now)
				continue
			}
			kept = append(kept, e)
		}
		g.entries = kept
		if len(g.entries) == 0 {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			delete(s.open, groupKey{fn: g.route.fn, class: g.class})
			continue
		}
		if s.ready(g, now) {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			delete(s.open, groupKey{fn: g.route.fn, class: g.class})
			n := len(g.entries)
			s.queued -= n
			s.running += n
			s.met.batches.Add(1)
			s.met.batchedCalls.Add(int64(n))
			return g, time.Time{}
		}
		if r := g.born.Add(s.cfg.maxBatchDelay); ripen.IsZero() || r.Before(ripen) {
			ripen = r
		}
		i++
	}
	return nil, ripen
}

// shedQueuedLocked completes a queued entry as shed without running it.
func (s *Server) shedQueuedLocked(e *entry, now time.Time) {
	s.queued--
	e.tenant.inflight--
	e.tenant.shed++
	s.met.shedQueued.Add(1)
	e.resp = Response{
		Err:   fmt.Errorf("%w (queued %v)", ErrShed, now.Sub(e.enq)),
		Wait:  now.Sub(e.enq),
		Total: now.Sub(e.enq),
	}
	close(e.done)
}

// runGroup executes one dispatched batch outside s.mu and settles each
// entry. The batch rides one warm pooled instance and one autotuner
// variant decision (autotune.CallBatch); per-entry contexts carry
// cancellation into the engine's zero-cost call checkpoint.
func (s *Server) runGroup(g *group) {
	dispatched := s.cfg.clock.Now()
	calls := make([]autotune.BatchCall, len(g.entries))
	var cancels []context.CancelFunc
	for i, e := range g.entries {
		ctx := e.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		// Under the production clock, arm the request deadline as a real
		// context deadline so running kernels abort mid-flight. (An
		// injected clock cannot fire wall timers; there the scheduler's
		// own checkpoints — admission and queue scan — enforce it.)
		if s.wallDeadlines && !e.req.Deadline.IsZero() {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, e.req.Deadline)
			cancels = append(cancels, cancel)
		}
		calls[i] = autotune.BatchCall{Ctx: ctx, Args: e.req.Args}
	}
	batchErr := g.route.tuner.CallBatch(g.route.fn, calls)
	for _, cancel := range cancels {
		cancel()
	}
	now := s.cfg.clock.Now()

	s.mu.Lock()
	for i, e := range g.entries {
		s.finishLocked(e, &calls[i], batchErr, dispatched, now, len(g.entries))
	}
	s.mu.Unlock()
	for _, e := range g.entries {
		close(e.done)
	}
	s.cond.Signal()
}

// finishLocked settles one completed entry under s.mu: outcome
// classification, tenant accounting, post-paid step debit, metrics.
func (s *Server) finishLocked(e *entry, c *autotune.BatchCall, batchErr error, dispatched, now time.Time, batched int) {
	s.running--
	e.tenant.inflight--
	e.tenant.steps += int64(c.Steps)
	e.tenant.stepBucket.spend(now, float64(c.Steps))

	e.resp = Response{
		Value:    c.Ret,
		Degraded: c.Degraded,
		Fault:    c.Fault,
		Steps:    c.Steps,
		Wait:     dispatched.Sub(e.enq),
		Total:    now.Sub(e.enq),
		Batched:  batched,
	}
	err := batchErr
	if err == nil {
		err = c.Err
	}
	switch {
	case err == nil:
		e.tenant.completed++
		s.met.completed.Add(1)
		if c.Degraded {
			e.tenant.degraded++
			s.met.degraded.Add(1)
		}
		if c.Fault != nil {
			e.tenant.faults++
			s.met.faults.Add(1)
		}
		s.met.observeDone(now, e.resp.Total)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The running call was aborted through its context: a shed, not
		// a failure — the tenant asked for (or timed out of) the abort.
		e.tenant.shed++
		s.met.shedRunning.Add(1)
		err = fmt.Errorf("%w: %v", ErrShed, err)
	default:
		// Program fault or surfaced internal fault. Contained either
		// way: the worker survives, the tenant is told.
		e.tenant.failed++
		s.met.failed.Add(1)
		var ifault *cm.InternalFault
		if errors.As(err, &ifault) || c.Fault != nil {
			e.tenant.faults++
			s.met.faults.Add(1)
		}
	}
	e.resp.Err = err
}
