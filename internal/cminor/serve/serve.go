// Package serve is the multi-tenant front end of the SOCRATES engine:
// an admission-controlled request scheduler that multiplexes many
// concurrent callers onto shared Programs through pooled Instances,
// with one AutoTuner per hosted program picking the variant every
// dispatch runs on.
//
// The request lifecycle is
//
//	admit → queue → batch → dispatch → contain/shed → account
//
// Admission is a bounded queue plus per-tenant token-bucket quotas
// (request rate, in-flight cap, post-paid interpreter-step budget) on
// an injected Clock. Admitted requests coalesce into batches keyed by
// (function, input-size class) — the autotuner's site key — so a batch
// shares one variant decision and one warm checked-out Instance
// (autotune.CallBatch), bounded by a max batch size and a max batch
// delay. Worker goroutines dispatch ready batches; expired deadlines
// shed queued work before it ever runs, and cancelled contexts abort
// running kernels through the engine's zero-cost CallContext
// checkpoint. Contained faults and degraded (trusted-fallback) calls
// feed per-tenant error accounting instead of killing workers — the
// quarantine layer underneath keeps routing around the bad variant.
//
// The scheduler core is a synchronous state machine under one mutex;
// the worker pool is a thin loop over it. That makes the whole policy
// surface — admission order, quota refill, batch ripening, shed
// ordering — drivable call-by-call with a fake clock (WithWorkers(0) +
// Tick), the same simulation discipline the autotuner's tests use,
// while the production configuration runs the identical code under
// real goroutines.
package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	cm "socrates/internal/cminor"
	"socrates/internal/cminor/autotune"
)

// Clock abstracts the scheduler's time source: admission buckets,
// batch ripening and deadline shedding all read it, so a fake clock
// drives every policy decision deterministically.
type Clock interface {
	Now() time.Time
}

// wallClock is the production Clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Admission and scheduling errors. Submit wraps them with request
// context; match with errors.Is.
var (
	ErrClosed          = errors.New("serve: server closed")
	ErrUnknownFunction = errors.New("serve: unknown function")
	ErrDeadlineExpired = errors.New("serve: deadline already expired")
	ErrQueueFull       = errors.New("serve: queue full")
	ErrTenantInFlight  = errors.New("serve: tenant in-flight limit reached")
	ErrTenantRate      = errors.New("serve: tenant request rate exhausted")
	ErrTenantSteps     = errors.New("serve: tenant step budget exhausted")
	// ErrShed is the outcome of a queued request whose deadline expired
	// before a worker could dispatch it.
	ErrShed = errors.New("serve: request shed: deadline expired in queue")
)

// Request is one unit of work: a tenant asking for one function call.
type Request struct {
	Tenant   string
	Function string
	Args     []any
	// Deadline, when non-zero, is an absolute time on the SERVER's
	// clock: work still queued past it is shed unrun, and — under the
	// production wall clock — running work is aborted through context
	// cancellation. Zero means no deadline.
	Deadline time.Time
}

// Response is the outcome of one request.
type Response struct {
	Value cm.Value
	Err   error
	// Degraded reports the call was served by trusted-fallback
	// re-execution after a contained internal fault; the value is
	// correct either way.
	Degraded bool
	// Fault is the contained internal fault, if the call hit one.
	Fault *cm.InternalFault
	// Steps is the call's deterministic statement count — what the
	// tenant's step budget was debited.
	Steps int
	// Wait is time spent queued; Total is queue + execution + batch
	// company, submit to completion.
	Wait  time.Duration
	Total time.Duration
	// Batched is the size of the batch this request rode in.
	Batched int
}

// serverConfig is the resolved option set.
type serverConfig struct {
	queueDepth    int
	workers       int
	maxBatch      int
	maxBatchDelay time.Duration
	clock         Clock
	defaultQuota  TenantQuota
	quotas        map[string]TenantQuota
	tuneCacheDir  string
}

// Option configures New.
type Option func(*serverConfig)

// WithQueueDepth bounds the admission queue in entries (default 256).
// A full queue rejects with ErrQueueFull — backpressure at the front
// door, never unbounded memory.
func WithQueueDepth(n int) Option { return func(c *serverConfig) { c.queueDepth = n } }

// WithWorkers sets the dispatch worker count (default 4). 0 disables
// the worker pool: nothing dispatches until Tick is called — the
// deterministic harness mode simulations drive with a fake clock.
func WithWorkers(n int) Option { return func(c *serverConfig) { c.workers = n } }

// WithMaxBatch caps how many same-(function, class) requests one
// dispatch coalesces onto a warm Instance (default 8; 1 disables
// batching).
func WithMaxBatch(n int) Option { return func(c *serverConfig) { c.maxBatch = n } }

// WithMaxBatchDelay sets how long an unfilled batch may wait for
// same-class company before dispatching anyway (default 0: dispatch
// immediately, batching is purely opportunistic on queue contents).
func WithMaxBatchDelay(d time.Duration) Option {
	return func(c *serverConfig) { c.maxBatchDelay = d }
}

// WithClock injects the scheduler's time source (default: wall clock).
func WithClock(clk Clock) Option { return func(c *serverConfig) { c.clock = clk } }

// WithDefaultQuota sets the quota applied to tenants without an
// explicit one (default: unlimited).
func WithDefaultQuota(q TenantQuota) Option {
	return func(c *serverConfig) { c.defaultQuota = q }
}

// WithTenantQuota sets one tenant's quota.
func WithTenantQuota(tenant string, q TenantQuota) Option {
	return func(c *serverConfig) {
		if c.quotas == nil {
			c.quotas = map[string]TenantQuota{}
		}
		c.quotas[tenant] = q
	}
}

// WithTuneCache enables the persistent tuning cache under dir (default:
// disabled). Each hosted program's tuner gets its own log file, named
// by the tuner's content key (autotune.CacheKey: program source ×
// variant grid × host fingerprint), so an edited kernel or a changed
// grid can never warm-start from stale tables. Host seeds the tuner
// from its log — converged sites serve their first post-restart call
// straight from the learned winner, zero re-exploration — and Close
// flushes the learned state back; FlushTuneCache checkpoints it on
// demand without closing. A missing, corrupt, truncated, or
// wrong-keyed log degrades to an ordinary cold start: persistence is
// strictly best-effort and can never poison routing.
func WithTuneCache(dir string) Option {
	return func(c *serverConfig) { c.tuneCacheDir = dir }
}

// route is one hosted function: the program it lives in and the tuner
// that routes its calls.
type route struct {
	fn    string
	prog  *cm.Program
	tuner *autotune.AutoTuner
}

// tunerCache is one hosted tuner's persistent-cache binding.
type tunerCache struct {
	tuner *autotune.AutoTuner
	path  string
}

// Server is the multi-tenant serving front end. Create with New, host
// programs with Host, start the worker pool with Start, submit with
// Do/Submit. All methods are safe for concurrent use.
type Server struct {
	cfg serverConfig

	mu      sync.Mutex
	cond    *sync.Cond
	routes  map[string]*route
	tenants map[string]*tenantState
	queue   []*group
	open    map[groupKey]*group
	queued  int
	running int
	started bool
	closed  bool
	start   time.Time
	// caches pairs each hosted tuner with its tune-cache log path
	// (WithTuneCache): loaded by Host, flushed by Close/FlushTuneCache.
	caches []tunerCache

	wg  sync.WaitGroup
	met metrics

	// wallDeadlines: under the production clock, Request.Deadline is
	// also armed as a context deadline so running kernels abort
	// mid-flight; under an injected clock only the scheduler's
	// checkpoints enforce it (a fake clock cannot fire real timers).
	wallDeadlines bool
}

// New builds a Server. It serves nothing until programs are hosted
// (Host) and, unless driven manually with Tick, workers are started
// (Start).
func New(opts ...Option) (*Server, error) {
	cfg := serverConfig{
		queueDepth: 256,
		workers:    4,
		maxBatch:   8,
		clock:      wallClock{},
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.queueDepth < 1 {
		return nil, fmt.Errorf("serve: queue depth must be >= 1, got %d", cfg.queueDepth)
	}
	if cfg.workers < 0 {
		return nil, fmt.Errorf("serve: worker count must be >= 0, got %d", cfg.workers)
	}
	if cfg.maxBatch < 1 {
		return nil, fmt.Errorf("serve: max batch must be >= 1, got %d", cfg.maxBatch)
	}
	if cfg.maxBatchDelay < 0 {
		return nil, fmt.Errorf("serve: max batch delay must be >= 0, got %v", cfg.maxBatchDelay)
	}
	cfg.defaultQuota = cfg.defaultQuota.normalize()
	for k, q := range cfg.quotas {
		cfg.quotas[k] = q.normalize()
	}
	s := &Server{
		cfg:     cfg,
		routes:  map[string]*route{},
		tenants: map[string]*tenantState{},
		open:    map[groupKey]*group{},
		start:   cfg.clock.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	_, s.wallDeadlines = cfg.clock.(wallClock)
	return s, nil
}

// Host registers every function of prog with the server, wrapping the
// program in its own AutoTuner (one tuner per program — the paper's
// continuous-selection engine) built with the given options. Function
// names are a flat namespace across hosted programs; a duplicate is an
// error. The returned tuner is the introspection handle (Snapshot,
// Counters, Best).
func (s *Server) Host(prog *cm.Program, opts ...autotune.Option) (*autotune.AutoTuner, error) {
	tn, err := autotune.New(prog, opts...)
	if err != nil {
		return nil, err
	}
	// Warm-start before the tuner is routable: with a tune cache
	// configured, converged sites from the previous process seed the
	// tuner here, so the very first dispatched request already exploits
	// the learned winner. Load failures (missing, corrupt, wrong-keyed
	// logs) fall back to an ordinary cold start — never an error.
	cachePath := ""
	if s.cfg.tuneCacheDir != "" {
		cachePath = filepath.Join(s.cfg.tuneCacheDir,
			fmt.Sprintf("tune-%016x.log", tn.CacheKey()))
		tn.LoadFrom(cachePath)
	}
	fns := prog.Funcs()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	for _, fn := range fns {
		if _, dup := s.routes[fn]; dup {
			return nil, fmt.Errorf("serve: function %q already hosted", fn)
		}
	}
	for _, fn := range fns {
		s.routes[fn] = &route{fn: fn, prog: prog, tuner: tn}
	}
	if cachePath != "" {
		s.caches = append(s.caches, tunerCache{tuner: tn, path: cachePath})
	}
	return tn, nil
}

// FlushTuneCache checkpoints every hosted tuner's learned tables into
// its tune-cache log (WithTuneCache). Close flushes automatically; this
// is the on-demand hook for long-lived servers that want periodic
// checkpoints so a crash loses minutes of learning, not days. A no-op
// without a configured cache.
func (s *Server) FlushTuneCache() error {
	s.mu.Lock()
	caches := append([]tunerCache{}, s.caches...)
	s.mu.Unlock()
	var errs []error
	for _, c := range caches {
		if err := c.tuner.SaveTo(c.path); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Tuner returns the AutoTuner routing the named function, for metrics
// scraping and introspection.
func (s *Server) Tuner(fn string) (*autotune.AutoTuner, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, ok := s.routes[fn]
	if !ok {
		return nil, false
	}
	return rt.tuner, true
}

// Start launches the worker pool. Idempotent; a no-op with
// WithWorkers(0) (drive with Tick instead).
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close stops admission immediately (submissions return ErrClosed),
// lets the workers drain everything already queued — batch-delay holds
// are flushed — and waits for them to exit. With WithWorkers(0) the
// queue is drained synchronously by Close itself. With a tune cache
// configured (WithTuneCache), the drained tuners' learned tables are
// flushed to disk last, so the next process warm-starts from
// everything this one learned.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	// No workers to drain for us: serve what is left here.
	for s.Tick() {
	}
	// Best-effort flush: a full disk must not turn shutdown into a
	// failure — the worst case is the next start pays cold exploration.
	s.FlushTuneCache()
}

// Submit enqueues one request, returning immediately with a Pending
// handle or an admission error. ctx governs the request's execution: a
// cancellation aborts the running kernel at the engine's next budget
// checkpoint (and is accounted a shed), and a nil ctx means Background.
func (s *Server) Submit(ctx context.Context, req Request) (*Pending, error) {
	s.met.submitted.Add(1)
	s.mu.Lock()
	rt, ok := s.routes[req.Function]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, req.Function)
	}
	class := rt.tuner.Classify(req.Args)
	if ctx == nil {
		ctx = context.Background()
	}
	now := s.cfg.clock.Now()

	s.mu.Lock()
	e, err := s.admit(rt, req, ctx, class, now)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.enqueue(e, now)
	depth := s.queued
	s.mu.Unlock()
	s.met.observeQueue(depth)
	s.cond.Signal()
	return &Pending{e: e}, nil
}

// Do is Submit + Wait: it blocks until the request completes (or is
// rejected) and returns its Response. The returned error equals
// Response.Err for admitted requests.
func (s *Server) Do(ctx context.Context, req Request) (Response, error) {
	p, err := s.Submit(ctx, req)
	if err != nil {
		return Response{Err: err}, err
	}
	resp := p.Wait()
	return resp, resp.Err
}

// Pending is the handle of a submitted request.
type Pending struct {
	e *entry
}

// Done is closed when the request has completed (successfully, shed,
// or failed).
func (p *Pending) Done() <-chan struct{} { return p.e.done }

// Wait blocks until completion and returns the Response.
func (p *Pending) Wait() Response {
	<-p.e.done
	return p.e.resp
}

// Tick synchronously dispatches at most one ready batch on the calling
// goroutine, returning whether one ran. It is the manual pump for
// WithWorkers(0) harnesses: fake-clock simulations advance the clock
// and Tick until the queue drains, observing every policy decision
// deterministically. (Expired queued work is shed during the scan even
// when no batch is ready.)
func (s *Server) Tick() bool {
	s.mu.Lock()
	g, _ := s.popReady(s.cfg.clock.Now())
	s.mu.Unlock()
	if g == nil {
		return false
	}
	s.runGroup(g)
	return true
}

// worker is the dispatch loop: wait for a ready batch, run it, repeat
// until the server is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		g := s.nextGroup()
		if g == nil {
			return
		}
		s.runGroup(g)
	}
}

// nextGroup blocks until a batch is ready (or the server is closed and
// empty). When every queued batch is merely unripe — still inside its
// batch-delay window — a real-time timer re-checks at the soonest
// ripen point.
func (s *Server) nextGroup() *group {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		g, ripen := s.popReady(s.cfg.clock.Now())
		if g != nil {
			return g
		}
		if s.closed && s.queued == 0 {
			return nil
		}
		if !ripen.IsZero() {
			d := ripen.Sub(s.cfg.clock.Now())
			if d <= 0 {
				d = time.Millisecond
			}
			tm := time.AfterFunc(d, s.cond.Broadcast)
			s.cond.Wait()
			tm.Stop()
			continue
		}
		s.cond.Wait()
	}
}

// Snapshot assembles the server's full observable state.
func (s *Server) Snapshot() Snapshot {
	now := s.cfg.clock.Now()
	s.mu.Lock()
	queued, running := s.queued, s.running
	tenants := make([]TenantSnapshot, 0, len(s.tenants))
	for _, ts := range s.tenants {
		tenants = append(tenants, ts.snapshot(now))
	}
	s.mu.Unlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Tenant < tenants[j].Tenant })

	m := &s.met
	m.gmu.Lock()
	queueEWMA, latEWMA, gapEWMA := m.queueEWMA, m.latEWMA, m.gapEWMA
	m.gmu.Unlock()
	p50, p99 := m.percentiles()
	snap := Snapshot{
		Time:             now,
		Uptime:           now.Sub(s.start),
		Queued:           queued,
		QueueDepth:       s.cfg.queueDepth,
		Running:          running,
		QueueEWMA:        queueEWMA,
		Submitted:        m.submitted.Load(),
		Admitted:         m.admitted.Load(),
		RejectedClosed:   m.rejectedClosed.Load(),
		RejectedExpired:  m.rejectedExpired.Load(),
		RejectedFull:     m.rejectedFull.Load(),
		RejectedInFlight: m.rejectedInFlight.Load(),
		RejectedRate:     m.rejectedRate.Load(),
		RejectedSteps:    m.rejectedSteps.Load(),
		Completed:        m.completed.Load(),
		Failed:           m.failed.Load(),
		ShedQueued:       m.shedQueued.Load(),
		ShedRunning:      m.shedRunning.Load(),
		Degraded:         m.degraded.Load(),
		Faults:           m.faults.Load(),
		Batches:          m.batches.Load(),
		BatchedCalls:     m.batchedCalls.Load(),
		LatencyEWMA:      time.Duration(latEWMA),
		P50:              p50,
		P99:              p99,
		Tenants:          tenants,
	}
	if gapEWMA > 0 {
		snap.Throughput = float64(time.Second) / gapEWMA
	}
	return snap
}
