package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	cm "socrates/internal/cminor"
	"socrates/internal/cminor/autotune"
)

// Deterministic scheduler simulations: the server runs with
// WithWorkers(0) and an injected fake clock, so every policy decision —
// admission order, quota refill, batch ripening, shed points — is
// driven call-by-call with Tick and asserted exactly. The routed
// program is a real kernel, so each simulated dispatch still exercises
// the full engine path (pool checkout, variant selection, execution,
// step accounting).

// simSrc mirrors the autotuner simulations' probe kernel: cheap,
// stateless, deterministic step count.
const simSrc = `
double sq(double x) { return x * x; }
double probe(int n, double a[n]) {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < n; i++) {
    s = s + sq(a[i]);
  }
  return s;
}
`

func simProgram(t testing.TB) *cm.Program {
	t.Helper()
	prog, err := cm.Compile(cm.MustParse("sim.c", simSrc))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func simArgs(n int) []any {
	a := cm.NewArray(n)
	for i := range a.Data {
		a.Data[i] = float64(i%5) * 0.5
	}
	return []any{cm.IntV(int64(n)), a}
}

// fakeClock satisfies both serve.Clock and autotune.Clock. Simulations
// are single-goroutine (WithWorkers(0)), so no locking is needed.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func simStart() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
}

// newSimServer builds a manual-pump server over the probe program.
func newSimServer(t *testing.T, clk *fakeClock, opts ...Option) *Server {
	t.Helper()
	opts = append([]Option{WithWorkers(0), WithClock(clk)}, opts...)
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Host(simProgram(t),
		autotune.WithGrid(autotune.VariantSpec{Opt: cm.O1}, autotune.VariantSpec{Opt: cm.O2}),
		autotune.WithMinSamples(1),
		autotune.WithClock(clk),
	); err != nil {
		t.Fatal(err)
	}
	return s
}

func drain(s *Server) int {
	n := 0
	for s.Tick() {
		n++
	}
	return n
}

// TestQueueFullRejection pins the bounded-queue contract: the
// queueDepth-plus-first submission is rejected with ErrQueueFull, and
// draining the queue restores admission.
func TestQueueFullRejection(t *testing.T) {
	clk := &fakeClock{t: simStart()}
	s := newSimServer(t, clk, WithQueueDepth(2), WithMaxBatch(1))
	defer s.Close()

	req := Request{Tenant: "acme", Function: "probe", Args: simArgs(16)}
	p1, err := s.Submit(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(nil, req); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(nil, req); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: want ErrQueueFull, got %v", err)
	}
	snap := s.Snapshot()
	if snap.Queued != 2 || snap.RejectedFull != 1 || snap.Admitted != 2 || snap.Submitted != 3 {
		t.Fatalf("snapshot after overflow: %+v", snap)
	}
	if n := drain(s); n != 2 {
		t.Fatalf("drained %d batches, want 2", n)
	}
	if resp := p1.Wait(); resp.Err != nil {
		t.Fatalf("queued request failed: %v", resp.Err)
	}
	// Space again: admission recovers.
	if _, err := s.Submit(nil, req); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	drain(s)
	snap = s.Snapshot()
	if snap.Completed != 3 || snap.Queued != 0 || snap.Running != 0 {
		t.Fatalf("final snapshot: %+v", snap)
	}
}

// TestTenantRateQuota pins request-rate token buckets: Burst admissions
// pass, the next is rejected with ErrTenantRate, and advancing the
// clock refills exactly rate*dt tokens.
func TestTenantRateQuota(t *testing.T) {
	clk := &fakeClock{t: simStart()}
	s := newSimServer(t, clk, WithMaxBatch(1),
		WithTenantQuota("metered", TenantQuota{Rate: 2, Burst: 2}))
	defer s.Close()

	req := Request{Tenant: "metered", Function: "probe", Args: simArgs(16)}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(nil, req); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(nil, req); !errors.Is(err, ErrTenantRate) {
		t.Fatalf("want ErrTenantRate, got %v", err)
	}
	// Other tenants are unaffected.
	if _, err := s.Submit(nil, Request{Tenant: "other", Function: "probe", Args: simArgs(16)}); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
	// 250ms at 2 tokens/s = half a token: still rejected.
	clk.advance(250 * time.Millisecond)
	if _, err := s.Submit(nil, req); !errors.Is(err, ErrTenantRate) {
		t.Fatalf("after 250ms: want ErrTenantRate, got %v", err)
	}
	// Another 250ms completes one token: admitted, and the bucket is
	// empty again.
	clk.advance(250 * time.Millisecond)
	if _, err := s.Submit(nil, req); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if _, err := s.Submit(nil, req); !errors.Is(err, ErrTenantRate) {
		t.Fatalf("bucket should be empty again, got %v", err)
	}
	drain(s)
	snap := s.Snapshot()
	if snap.RejectedRate != 3 {
		t.Fatalf("RejectedRate = %d, want 3", snap.RejectedRate)
	}
	for _, ts := range snap.Tenants {
		if ts.Tenant == "metered" && (ts.Admitted != 3 || ts.Rejected != 3) {
			t.Fatalf("metered tenant ledger: %+v", ts)
		}
	}
}

// TestTenantInFlightQuota pins the in-flight cap: queued-plus-running
// requests above MaxInFlight are rejected until completions free slots.
func TestTenantInFlightQuota(t *testing.T) {
	clk := &fakeClock{t: simStart()}
	s := newSimServer(t, clk, WithMaxBatch(1),
		WithTenantQuota("capped", TenantQuota{MaxInFlight: 2}))
	defer s.Close()

	req := Request{Tenant: "capped", Function: "probe", Args: simArgs(16)}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(nil, req); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(nil, req); !errors.Is(err, ErrTenantInFlight) {
		t.Fatalf("want ErrTenantInFlight, got %v", err)
	}
	if !s.Tick() {
		t.Fatal("no batch ready")
	}
	// One completion freed one slot.
	if _, err := s.Submit(nil, req); err != nil {
		t.Fatalf("after completion: %v", err)
	}
	drain(s)
	if snap := s.Snapshot(); snap.RejectedInFlight != 1 || snap.Completed != 3 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestTenantStepBudget pins the post-paid step budget: any positive
// credit admits, the completed call's deterministic step count is
// debited (driving the balance negative), and the tenant is locked out
// until the refill catches back up above zero.
func TestTenantStepBudget(t *testing.T) {
	clk := &fakeClock{t: simStart()}
	s := newSimServer(t, clk, WithMaxBatch(1),
		WithTenantQuota("steppy", TenantQuota{StepRate: 100, StepBurst: 10}))
	defer s.Close()

	req := Request{Tenant: "steppy", Function: "probe", Args: simArgs(16)}
	p, err := s.Submit(nil, req)
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	drain(s)
	resp := p.Wait()
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Steps <= 10 {
		t.Fatalf("probe(16) ran %d steps; the scenario needs it to overdraw the 10-step burst", resp.Steps)
	}
	// The balance is now 10 - Steps < 0: post-paid overdraft.
	if _, err := s.Submit(nil, req); !errors.Is(err, ErrTenantSteps) {
		t.Fatalf("want ErrTenantSteps after overdraft, got %v", err)
	}
	// Refill at 100 steps/s. Just before the balance crosses zero the
	// tenant stays locked out; just after, it admits again.
	debt := float64(resp.Steps) - 10
	notYet := time.Duration(debt/100*float64(time.Second)) - time.Millisecond
	clk.advance(notYet)
	if _, err := s.Submit(nil, req); !errors.Is(err, ErrTenantSteps) {
		t.Fatalf("still in debt: want ErrTenantSteps, got %v", err)
	}
	clk.advance(2 * time.Millisecond)
	p2, err := s.Submit(nil, req)
	if err != nil {
		t.Fatalf("after refill: %v", err)
	}
	drain(s)
	if resp := p2.Wait(); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	snap := s.Snapshot()
	if snap.RejectedSteps != 2 || snap.Completed != 2 {
		t.Fatalf("snapshot: %+v", snap)
	}
	var ts TenantSnapshot
	for _, cand := range snap.Tenants {
		if cand.Tenant == "steppy" {
			ts = cand
		}
	}
	if ts.Steps != int64(2*resp.Steps) {
		t.Fatalf("tenant step ledger %d, want %d", ts.Steps, 2*resp.Steps)
	}
}

// TestBatchCoalescing pins the batching contract: same-(function,
// class) requests ride one dispatch (sharing a warm instance and one
// variant decision), an unfilled batch waits out maxBatchDelay before
// dispatching, and a full batch goes immediately.
func TestBatchCoalescing(t *testing.T) {
	clk := &fakeClock{t: simStart()}
	s := newSimServer(t, clk, WithMaxBatch(4), WithMaxBatchDelay(10*time.Millisecond))
	defer s.Close()

	req := Request{Tenant: "acme", Function: "probe", Args: simArgs(16)}
	var pend []*Pending
	for i := 0; i < 3; i++ {
		p, err := s.Submit(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, p)
	}
	// Three of four: the batch is unripe — Tick must hold it.
	if s.Tick() {
		t.Fatal("dispatched an unripe batch")
	}
	clk.advance(10 * time.Millisecond)
	if !s.Tick() {
		t.Fatal("ripe batch did not dispatch")
	}
	for i, p := range pend {
		resp := p.Wait()
		if resp.Err != nil {
			t.Fatalf("entry %d: %v", i, resp.Err)
		}
		if resp.Batched != 3 {
			t.Fatalf("entry %d: Batched = %d, want 3", i, resp.Batched)
		}
		// All three were submitted at the same instant and rode the
		// delay out in full.
		if resp.Wait != 10*time.Millisecond {
			t.Fatalf("entry %d: Wait = %v, want 10ms", i, resp.Wait)
		}
	}
	// A full batch dispatches with no delay.
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(nil, req); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Tick() {
		t.Fatal("full batch did not dispatch immediately")
	}
	// Different input classes never share a batch.
	if _, err := s.Submit(nil, req); err != nil {
		t.Fatal(err)
	}
	big := Request{Tenant: "acme", Function: "probe", Args: simArgs(4096)}
	if _, err := s.Submit(nil, big); err != nil {
		t.Fatal(err)
	}
	clk.advance(10 * time.Millisecond)
	n := drain(s)
	if n != 2 {
		t.Fatalf("mixed classes drained in %d batches, want 2", n)
	}
	snap := s.Snapshot()
	if snap.Batches != 4 || snap.BatchedCalls != 9 || snap.Completed != 9 {
		t.Fatalf("batch accounting: %+v", snap)
	}
}

// TestDeadlineShedQueued pins queued-work shedding: a request whose
// deadline expires while still queued is dropped unrun with ErrShed,
// and an already-expired deadline is rejected outright at admission.
func TestDeadlineShedQueued(t *testing.T) {
	clk := &fakeClock{t: simStart()}
	s := newSimServer(t, clk, WithMaxBatch(1))
	defer s.Close()

	// Already expired at admission: rejected, not queued.
	past := Request{Tenant: "acme", Function: "probe", Args: simArgs(16),
		Deadline: clk.Now().Add(-time.Millisecond)}
	if _, err := s.Submit(nil, past); !errors.Is(err, ErrDeadlineExpired) {
		t.Fatalf("want ErrDeadlineExpired, got %v", err)
	}

	// Expires while queued: shed at the next queue scan, never run.
	doomed := Request{Tenant: "acme", Function: "probe", Args: simArgs(16),
		Deadline: clk.Now().Add(5 * time.Millisecond)}
	p, err := s.Submit(nil, doomed)
	if err != nil {
		t.Fatal(err)
	}
	fine := Request{Tenant: "acme", Function: "probe", Args: simArgs(16)}
	p2, err := s.Submit(nil, fine)
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(10 * time.Millisecond)
	if n := drain(s); n != 1 {
		t.Fatalf("drained %d batches, want 1 (the shed entry must not run)", n)
	}
	resp := p.Wait()
	if !errors.Is(resp.Err, ErrShed) {
		t.Fatalf("doomed request: want ErrShed, got %v", resp.Err)
	}
	if resp2 := p2.Wait(); resp2.Err != nil {
		t.Fatalf("undoomed neighbour: %v", resp2.Err)
	}
	snap := s.Snapshot()
	if snap.ShedQueued != 1 || snap.RejectedExpired != 1 || snap.Completed != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
	for _, ts := range snap.Tenants {
		if ts.Tenant == "acme" && ts.Shed != 1 {
			t.Fatalf("tenant shed ledger: %+v", ts)
		}
	}
}

// TestCancelShedsRunning pins running-work shedding: a request whose
// context is cancelled after admission aborts through the engine's
// zero-cost call checkpoint and is accounted a running shed, not a
// failure.
func TestCancelShedsRunning(t *testing.T) {
	clk := &fakeClock{t: simStart()}
	s := newSimServer(t, clk, WithMaxBatch(1))
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	p, err := s.Submit(ctx, Request{Tenant: "acme", Function: "probe", Args: simArgs(16)})
	if err != nil {
		t.Fatal(err)
	}
	cancel() // cancelled between admission and dispatch
	if !s.Tick() {
		t.Fatal("batch did not dispatch")
	}
	resp := p.Wait()
	if !errors.Is(resp.Err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", resp.Err)
	}
	snap := s.Snapshot()
	if snap.ShedRunning != 1 || snap.Failed != 0 || snap.Completed != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestDegradedAccounting pins degradation-aware routing: an injected
// internal fault is contained by trusted-fallback re-execution, the
// tenant still gets the correct value, and both the fault and the
// degradation land in the tenant's ledger — no worker dies, no error
// surfaces.
func TestDegradedAccounting(t *testing.T) {
	clk := &fakeClock{t: simStart()}
	want, err := simProgram(t).NewInstance().Call("probe", simArgs(16)...)
	if err != nil {
		t.Fatal(err)
	}
	inj := cm.NewScriptedInjector(cm.FaultRule{
		Backend: cm.BackendCompiled, Opt: cm.O2, Fn: "probe",
		Call: 1, Kind: cm.FaultPanic, Point: cm.FaultAtExit,
	})
	s, err := New(WithWorkers(0), WithClock(clk), WithMaxBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Host(simProgram(t),
		autotune.WithGrid(autotune.VariantSpec{Opt: cm.O2}),
		autotune.WithMinSamples(1),
		autotune.WithClock(clk),
		autotune.WithFaultInjector(inj),
		autotune.WithQuarantineBackoff(time.Hour, time.Hour),
	); err != nil {
		t.Fatal(err)
	}

	req := Request{Tenant: "acme", Function: "probe", Args: simArgs(16)}
	p, err := s.Submit(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Tick() {
		t.Fatal("no dispatch")
	}
	resp := p.Wait()
	if resp.Err != nil {
		t.Fatalf("degraded call must still succeed: %v", resp.Err)
	}
	if !resp.Degraded || resp.Fault == nil {
		t.Fatalf("degradation taps not set: %+v", resp)
	}
	if resp.Value != want {
		t.Fatalf("degraded value %v, want %v", resp.Value, want)
	}
	// A clean follow-up call keeps the ledger apart.
	p2, err := s.Submit(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	drain(s)
	if resp2 := p2.Wait(); resp2.Err != nil || resp2.Degraded {
		t.Fatalf("clean call: %+v", resp2)
	}
	snap := s.Snapshot()
	if snap.Completed != 2 || snap.Degraded != 1 || snap.Faults != 1 || snap.Failed != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	for _, ts := range snap.Tenants {
		if ts.Tenant == "acme" && (ts.Degraded != 1 || ts.Faults != 1 || ts.Completed != 2) {
			t.Fatalf("tenant ledger: %+v", ts)
		}
	}
}
