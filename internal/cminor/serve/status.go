package serve

import (
	"fmt"
	"time"
)

// StatusLine renders the server's vitals as one fixed-format line, in
// the spirit of a build system's live status row — cheap enough to
// print every refresh tick:
//
//	[q 3/256 r 4] ok 1204 err 2 rej 17 shed 5 deg 1 | 831.0 req/s | p50 1.2ms p99 8.9ms
func (s *Server) StatusLine() string {
	return s.Snapshot().StatusLine()
}

// StatusLine renders the snapshot as the server's one-line status row.
func (sn Snapshot) StatusLine() string {
	return fmt.Sprintf("[q %d/%d r %d] ok %d err %d rej %d shed %d deg %d | %s req/s | p50 %s p99 %s",
		sn.Queued, sn.QueueDepth, sn.Running,
		sn.Completed, sn.Failed, sn.Rejected(), sn.Shed(), sn.Degraded,
		fmtRate(sn.Throughput), fmtDur(sn.P50), fmtDur(sn.P99))
}

// fmtRate formats a per-second rate compactly and deterministically.
// Branch thresholds sit where the NEXT-lower format's rounding first
// overflows its width, not at round powers of ten: %.1f prints 99.95 as
// "100.0" (five chars, and a duplicate of the %.0f spelling), %.0f
// prints 999.5 as "1000", and %.1fk prints 999950/1e3 as "1000.0k" —
// so each such value must already have been promoted to the wider
// unit. Thresholds at 1e3/1e6 misformat exactly that rounding band
// (e.g. 999.96 → "1000" instead of "1.0k").
func fmtRate(r float64) string {
	switch {
	case r >= 999950:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 999.5:
		return fmt.Sprintf("%.1fk", r/1e3)
	case r >= 99.95:
		return fmt.Sprintf("%.0f", r)
	default:
		return fmt.Sprintf("%.1f", r)
	}
}

// fmtDur formats a latency with unit-appropriate precision, avoiding
// time.Duration.String's variable digit count.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
