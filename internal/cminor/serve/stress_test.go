package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	cm "socrates/internal/cminor"
	"socrates/internal/cminor/autotune"
)

// TestServerLiveStress runs the production configuration — real wall
// clock, real workers, batching on — under 12 client goroutines mixing
// tenants and input classes, and holds the server to the engine's
// bit-exactness bar: every response must equal the value a direct
// Instance.Call produces for the same input. CI runs this under -race;
// it doubles as the scheduler's lock-discipline test.
func TestServerLiveStress(t *testing.T) {
	prog := simProgram(t)
	sizes := []int{16, 64, 256}
	want := map[int]cm.Value{}
	ref := prog.NewInstance()
	for _, n := range sizes {
		v, err := ref.Call("probe", simArgs(n)...)
		if err != nil {
			t.Fatal(err)
		}
		want[n] = v
	}

	s, err := New(
		WithWorkers(4),
		WithQueueDepth(64),
		WithMaxBatch(4),
		WithMaxBatchDelay(200*time.Microsecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Host(prog,
		autotune.WithGrid(
			autotune.VariantSpec{Opt: cm.O0},
			autotune.VariantSpec{Opt: cm.O2},
			autotune.VariantSpec{Opt: cm.O3},
		),
		autotune.WithMinSamples(2),
	); err != nil {
		t.Fatal(err)
	}
	s.Start()

	const (
		clients = 12
		perEach = 40
	)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("g%d", g%5) // tenants shared across goroutines
			for i := 0; i < perEach; i++ {
				n := sizes[(g+i)%len(sizes)]
				resp, err := s.Do(context.Background(), Request{
					Tenant: tenant, Function: "probe", Args: simArgs(n),
				})
				if err != nil {
					t.Errorf("g%d call %d: %v", g, i, err)
					return
				}
				if resp.Value != want[n] {
					t.Errorf("g%d call %d: n=%d got %v, want %v (batched %d)",
						g, i, n, resp.Value, want[n], resp.Batched)
					return
				}
				if resp.Steps == 0 || resp.Batched < 1 {
					t.Errorf("g%d call %d: bad accounting %+v", g, i, resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	if t.Failed() {
		return
	}

	const total = clients * perEach
	snap := s.Snapshot()
	if snap.Completed != total || snap.Failed != 0 || snap.Shed() != 0 || snap.Rejected() != 0 {
		t.Fatalf("outcome accounting: %s", snap.StatusLine())
	}
	if snap.Queued != 0 || snap.Running != 0 {
		t.Fatalf("work left behind: queued %d running %d", snap.Queued, snap.Running)
	}
	if snap.BatchedCalls != total || snap.Batches > total {
		t.Fatalf("batch accounting: calls %d in %d batches", snap.BatchedCalls, snap.Batches)
	}
	var tenantDone, tenantSteps int64
	for _, ts := range snap.Tenants {
		tenantDone += ts.Completed
		tenantSteps += ts.Steps
	}
	if tenantDone != total || tenantSteps == 0 {
		t.Fatalf("tenant ledgers: completed %d steps %d", tenantDone, tenantSteps)
	}

	// The server is drained and closed: admission refuses.
	if _, err := s.Submit(nil, Request{Tenant: "late", Function: "probe", Args: simArgs(16)}); err == nil {
		t.Fatal("closed server admitted a request")
	}
}

// TestDeadlineAbortsRunning pins the wall-clock leg of shedding:
// under the production clock, Request.Deadline is armed as a context
// deadline, so a kernel still running when it expires is aborted
// through the engine's zero-cost cancellation checkpoint and accounted
// a running shed — the request does not run to completion.
func TestDeadlineAbortsRunning(t *testing.T) {
	const spinSrc = `
double spin(int reps, int n, double a[n]) {
  int r;
  int i;
  double s;
  s = 0.0;
  for (r = 0; r < reps; r++) {
    for (i = 0; i < n; i++) {
      s = s + a[i] * a[i];
    }
  }
  return s;
}
`
	prog, err := cm.Compile(cm.MustParse("spin.c", spinSrc))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(WithWorkers(0), WithMaxBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Host(prog,
		autotune.WithGrid(autotune.VariantSpec{Opt: cm.O2}),
		autotune.WithMinSamples(1),
	); err != nil {
		t.Fatal(err)
	}
	// ~80M inner iterations: hundreds of ms uninterrupted, aborted
	// after 30ms by the armed deadline.
	a := cm.NewArray(4096)
	p, err := s.Submit(nil, Request{
		Tenant: "acme", Function: "spin",
		Args:     []any{cm.IntV(20000), cm.IntV(4096), a},
		Deadline: time.Now().Add(30 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if !s.Tick() {
		t.Fatal("no dispatch")
	}
	resp := p.Wait()
	if !errors.Is(resp.Err, ErrShed) {
		t.Fatalf("want ErrShed from mid-kernel deadline, got %v", resp.Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v; the deadline did not cut the kernel short", elapsed)
	}
	snap := s.Snapshot()
	if snap.ShedRunning != 1 || snap.Completed != 0 || snap.Failed != 0 {
		t.Fatalf("accounting: %s", snap.StatusLine())
	}
}

// BenchmarkServer measures end-to-end serving throughput per kernel:
// parallel clients submitting through admission, batching and the
// autotuner onto pooled instances.
func BenchmarkServer(b *testing.B) {
	for _, k := range cm.BenchKernels {
		b.Run(k.Name, func(b *testing.B) {
			prog, err := cm.Compile(cm.MustParse(k.File, k.Src))
			if err != nil {
				b.Fatal(err)
			}
			s, err := New(
				WithWorkers(4),
				WithQueueDepth(1024),
				WithMaxBatch(8),
				WithMaxBatchDelay(100*time.Microsecond),
			)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Host(prog); err != nil {
				b.Fatal(err)
			}
			s.Start()
			defer s.Close()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := s.Do(context.Background(), Request{
						Tenant: "bench", Function: k.Fn, Args: k.Args(),
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
