package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	cm "socrates/internal/cminor"
	"socrates/internal/cminor/autotune"
	"socrates/internal/cminor/autotune/persist"
)

// Server-level warm-start simulations: the tune cache is exercised
// through the real lifecycle — Host loads, Close flushes — under the
// fake clock, pinning that a restarted server's first dispatched
// request already exploits the previous process's learned winner.

// newWarmSimServer is newSimServer plus a tune cache and zero residual
// exploration, so any post-restart measure-phase pull is test-visible.
func newWarmSimServer(t *testing.T, clk *fakeClock, dir string) (*Server, *autotune.AutoTuner) {
	t.Helper()
	s, err := New(WithWorkers(0), WithClock(clk), WithMaxBatch(1), WithTuneCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s.Host(simProgram(t),
		autotune.WithGrid(autotune.VariantSpec{Opt: cm.O1}, autotune.VariantSpec{Opt: cm.O2}),
		autotune.WithMinSamples(1),
		autotune.WithEpsilon(0),
		autotune.WithClock(clk),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s, tn
}

func serveCalls(t *testing.T, s *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p, err := s.Submit(nil, Request{Tenant: "acme", Function: "probe", Args: simArgs(16)})
		if err != nil {
			t.Fatal(err)
		}
		if !s.Tick() {
			t.Fatal("no dispatch")
		}
		if resp := p.Wait(); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
}

func warmSite(t *testing.T, tn *autotune.AutoTuner) autotune.SiteReport {
	t.Helper()
	class := autotune.SizeClass(simArgs(16))
	for _, r := range tn.Snapshot() {
		if r.Fn == "probe" && r.Class == class {
			return r
		}
	}
	t.Fatalf("no probe site at class %d", class)
	return autotune.SiteReport{}
}

// TestServerWarmStartAcrossRestart is the serving-layer tentpole pin:
// process one learns, Close flushes, process two's Host loads — and the
// restarted server's site is converged before its first Submit, with
// zero additional measure-phase pulls afterwards.
func TestServerWarmStartAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: simStart()}

	s1, tn1 := newWarmSimServer(t, clk, dir)
	serveCalls(t, s1, 6) // 2-arm grid, 1 sample each: converged, then exploiting
	if !warmSite(t, tn1).Converged {
		t.Fatal("setup: site did not converge")
	}
	cachePath := filepath.Join(dir, fmt.Sprintf("tune-%016x.log", tn1.CacheKey()))
	if _, err := os.Stat(cachePath); !os.IsNotExist(err) {
		t.Fatalf("log exists before any flush: %v", err)
	}
	s1.Close()
	if _, err := os.Stat(cachePath); err != nil {
		t.Fatalf("Close did not flush the tune cache: %v", err)
	}

	// "Restart": a fresh server over the same program, grid, and dir.
	s2, tn2 := newWarmSimServer(t, clk, dir)
	defer s2.Close()
	loaded := warmSite(t, tn2)
	if !loaded.Converged {
		t.Fatal("restarted site is not converged before the first request")
	}
	serveCalls(t, s2, 10)
	after := warmSite(t, tn2)
	for i, arm := range after.Arms {
		if i == 0 { // O1: the trivial fake-clock winner (all costs zero, ties to lower index)
			continue
		}
		if arm.Pulls != loaded.Arms[i].Pulls {
			t.Fatalf("arm %v re-measured after restart: %d -> %d pulls",
				arm.Spec, loaded.Arms[i].Pulls, arm.Pulls)
		}
	}
	if best := after.Arms[0]; best.Pulls != loaded.Arms[0].Pulls+10 {
		t.Fatalf("winner took %d of 10 post-restart calls", best.Pulls-loaded.Arms[0].Pulls)
	}
}

// TestServerWarmStartCorruptLogColdStart: a damaged log must cost
// nothing but the warm start — Host succeeds, the site learns cold, and
// the next Close heals the log by flushing a valid one over it.
func TestServerWarmStartCorruptLogColdStart(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: simStart()}

	s1, tn1 := newWarmSimServer(t, clk, dir)
	serveCalls(t, s1, 4)
	s1.Close()
	cachePath := filepath.Join(dir, fmt.Sprintf("tune-%016x.log", tn1.CacheKey()))
	// Damage a record byte (past the 24-byte header).
	if err := persist.Corrupt(cachePath, 30); err != nil {
		t.Fatal(err)
	}

	s2, tn2 := newWarmSimServer(t, clk, dir)
	if _, ok := tn2.Best("probe", autotune.SizeClass(simArgs(16))); ok {
		t.Fatal("a corrupt log warm-started the site")
	}
	serveCalls(t, s2, 4) // cold exploration works as usual
	if !warmSite(t, tn2).Converged {
		t.Fatal("cold fallback did not converge")
	}
	s2.Close()
	// The flush healed the log: a third process warm-starts again.
	if _, _, err := persist.Load(cachePath, tn2.CacheKey()); err != nil {
		t.Fatalf("log not healed by the post-cold-start flush: %v", err)
	}
	s3, tn3 := newWarmSimServer(t, clk, dir)
	defer s3.Close()
	if !warmSite(t, tn3).Converged {
		t.Fatal("healed log did not warm-start the third process")
	}
}

// TestFlushTuneCacheOnDemand: the periodic-checkpoint hook writes the
// log without closing the server, and keeps serving afterwards.
func TestFlushTuneCacheOnDemand(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: simStart()}
	s, tn := newWarmSimServer(t, clk, dir)
	defer s.Close()
	serveCalls(t, s, 4)
	if err := s.FlushTuneCache(); err != nil {
		t.Fatal(err)
	}
	cachePath := filepath.Join(dir, fmt.Sprintf("tune-%016x.log", tn.CacheKey()))
	live, _, err := persist.Load(cachePath, tn.CacheKey())
	if err != nil || len(live) != 1 {
		t.Fatalf("on-demand flush wrote %d live records (%v), want 1", len(live), err)
	}
	serveCalls(t, s, 2) // the server is still serving
}
