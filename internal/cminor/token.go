// Package cminor implements a front end for a C subset ("C-minor") rich
// enough to express the Polybench/C kernels SOCRATES targets: functions,
// multi-dimensional array parameters, for/while/if statements, the usual
// arithmetic and assignment operators, calls, and #pragma lines (OpenMP,
// GCC optimize, Polybench scop markers).
//
// The package is organised as a staged pipeline:
//
//	lexer → parser → resolver → compiler → executor
//
// The lexer and recursive-descent parser produce a typed AST with
// positioned diagnostics (Diag). The resolver (resolve.go) walks the AST
// once, binding every identifier to a numbered frame slot and checking
// arity/rank rules. The compiler (compile.go) lowers resolved functions
// into closure-compiled evaluators over slot-indexed frames, which the
// executor (Interp, interp.go) runs. The original tree-walking
// interpreter survives as Walker (walker.go) and serves as the semantics
// oracle for differential tests and benchmarks. A pretty-printer counts
// logical lines of code (the unit used by the paper's Table I) and a
// deep-clone facility supports the weaver.
package cminor

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	EOF TokenKind = iota
	IDENT
	INTLIT
	FLOATLIT
	STRINGLIT
	PRAGMA // whole "#pragma ..." line, text in Token.Text

	// Keywords.
	KwInt
	KwDouble
	KwFloat
	KwVoid
	KwFor
	KwWhile
	KwIf
	KwElse
	KwReturn
	KwConst
	KwStatic

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	COMMA    // ,
	SEMI     // ;
	QUESTION // ?
	COLON    // :

	ASSIGN    // =
	ADDASSIGN // +=
	SUBASSIGN // -=
	MULASSIGN // *=
	DIVASSIGN // /=
	MODASSIGN // %=
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	PERCENT   // %
	INC       // ++
	DEC       // --
	EQ        // ==
	NEQ       // !=
	LT        // <
	GT        // >
	LEQ       // <=
	GEQ       // >=
	ANDAND    // &&
	OROR      // ||
	NOT       // !
	AMP       // &
)

var kindNames = map[TokenKind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "int literal",
	FLOATLIT: "float literal", STRINGLIT: "string literal", PRAGMA: "#pragma",
	KwInt: "int", KwDouble: "double", KwFloat: "float", KwVoid: "void",
	KwFor: "for", KwWhile: "while", KwIf: "if", KwElse: "else",
	KwReturn: "return", KwConst: "const", KwStatic: "static",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACK: "[", RBRACK: "]", COMMA: ",", SEMI: ";",
	QUESTION: "?", COLON: ":",
	ASSIGN: "=", ADDASSIGN: "+=", SUBASSIGN: "-=", MULASSIGN: "*=",
	DIVASSIGN: "/=", MODASSIGN: "%=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	INC: "++", DEC: "--",
	EQ: "==", NEQ: "!=", LT: "<", GT: ">", LEQ: "<=", GEQ: ">=",
	ANDAND: "&&", OROR: "||", NOT: "!", AMP: "&",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"int": KwInt, "double": KwDouble, "float": KwFloat, "void": KwVoid,
	"for": KwFor, "while": KwWhile, "if": KwIf, "else": KwElse,
	"return": KwReturn, "const": KwConst, "static": KwStatic,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, PRAGMA, STRINGLIT:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
