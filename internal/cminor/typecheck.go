package cminor

// The typechecker is the pass between resolve and compile: it assigns
// every expression a static kind (int, double, or dynamic) so the
// compiler can emit monomorphic, unboxed evaluators — func(*frame) int64
// and func(*frame) float64 — instead of the generic Value closures.
//
// The inference is driven by the runtime's (walker-pinned) assignment
// rule: a store into a scalar cell coerces the new value only when the
// cell currently holds an int ("if cl.IsInt { nv = IntV(nv.Int()) }").
// Two invariants fall out:
//
//   - An int-declared scalar slot holds an int Value forever: its
//     declaration normalizes, and every later store re-coerces. Int vars
//     are therefore statically int, unconditionally.
//   - A double-declared slot stays float only while every value stored
//     into it is statically float; assigning an int-kinded expression
//     flips the slot to int at runtime (and then it sticks). Double vars
//     are therefore float only until a non-float store site is found, at
//     which point they demote to dynamic — which can invalidate other
//     expressions' kinds, so inference iterates to a fixpoint.
//
// A double variable whose address escapes to a pointer parameter (cell
// argument) can be stored through by the callee with arbitrary kinds, so
// it demotes too. Function results start at the declared return kind
// (void and fall-off-the-end both produce the zero Value, which reads as
// float) and demote sticky to dynamic on any disagreement with the join
// of the function's return statements.
//
// Entry-point bindings that break the declared kinds (a *Value or raw
// Go int/float64 argument whose kind mismatches the parameter) are
// handled in Interp.Call by falling back to a generically-compiled body;
// internal call sites always normalize arguments, so typed bodies are
// safe for every call that enters through a matching frame.

// kind is the static kind lattice: int and double are precise, kDyn
// means "must use the generic tagged-Value path".
type kind uint8

const (
	kDyn kind = iota
	kInt
	kFloat
)

func (k kind) String() string {
	switch k {
	case kInt:
		return "int"
	case kFloat:
		return "double"
	}
	return "dyn"
}

func kindOfBasic(b BasicKind) kind {
	if b == Int {
		return kInt
	}
	return kFloat
}

// joinKind is the lattice join: equal kinds keep their precision, mixed
// kinds fall to dynamic.
func joinKind(a, b kind) kind {
	if a == b {
		return a
	}
	return kDyn
}

// fnTypes is the typechecker's result for one function.
type fnTypes struct {
	// scalars is the static kind of each VarScalar slot.
	scalars []kind
	// expr caches the static kind of every typed expression node.
	expr map[Expr]kind
}

// fork returns a mutable copy of ft for variant-local extension — the
// O3 inliner appends relocated callee slots and merges callee
// expression kinds. The shared typecheck results are never written
// after the fixpoint, which is what keeps concurrent lowerings of one
// front end race-free.
func (ft *fnTypes) fork() *fnTypes {
	c := &fnTypes{
		scalars: append([]kind(nil), ft.scalars...),
		expr:    make(map[Expr]kind, len(ft.expr)),
	}
	for e, k := range ft.expr {
		c.expr[e] = k
	}
	return c
}

// typeInfo is the typechecker's result for a whole file.
type typeInfo struct {
	res     *ResolvedFile
	funcs   map[string]*fnTypes
	globals []kind
	// results is the static kind of each function's returned Value.
	results map[string]kind
}

// typecheck infers static kinds for res. It cannot fail: anything it
// cannot prove simply stays dynamic and compiles down the generic path.
func typecheck(res *ResolvedFile) *typeInfo {
	ti := &typeInfo{
		res:     res,
		funcs:   map[string]*fnTypes{},
		results: map[string]kind{},
	}
	for _, gs := range res.Scalars {
		ti.globals = append(ti.globals, kindOfBasic(gs.Kind))
	}
	for name, fi := range res.Funcs {
		ft := &fnTypes{scalars: make([]kind, fi.NumScalars), expr: map[Expr]kind{}}
		for i, p := range fi.Decl.Params {
			if ref := fi.Params[i]; ref.Kind == VarScalar {
				ft.scalars[ref.Slot] = kindOfBasic(p.Type.Kind)
			}
		}
		Walk(fi.Decl.Body, func(n Node) bool {
			if d, ok := n.(*DeclStmt); ok {
				if ref := res.refs[d.ID]; ref.Kind == VarScalar {
					ft.scalars[ref.Slot] = kindOfBasic(d.Type.Kind)
				}
			}
			return true
		})
		ti.funcs[name] = ft
		if fi.Decl.Ret != nil && fi.Decl.Ret.Kind != Void {
			ti.results[name] = kindOfBasic(fi.Decl.Ret.Kind)
		} else {
			ti.results[name] = kFloat // void calls yield the zero Value
		}
	}
	// Iterate to a fixpoint: every pass can only demote (precise → kDyn),
	// so the loop terminates after at most one pass per variable.
	for changed := true; changed; {
		changed = false
		for name, fi := range res.Funcs {
			tc := &checker{ti: ti, ft: ti.funcs[name]}
			tc.block(fi.Decl.Body)
			r := tc.retJoin
			if !tc.sawReturn || !alwaysReturns(fi.Decl.Body) {
				r = joinKind(r, kFloat)
			}
			if r != ti.results[name] && ti.results[name] != kDyn {
				ti.results[name] = kDyn
				tc.changed = true
			}
			changed = changed || tc.changed
		}
	}
	return ti
}

// alwaysReturns reports whether every execution path through s ends in a
// return statement (conservatively: loops are assumed skippable).
func alwaysReturns(s Stmt) bool {
	switch s := s.(type) {
	case *ReturnStmt:
		return true
	case *Block:
		for _, st := range s.Stmts {
			if alwaysReturns(st) {
				return true
			}
		}
	case *IfStmt:
		return s.Else != nil && alwaysReturns(s.Then) && alwaysReturns(s.Else)
	}
	return false
}

// checker runs one inference pass over one function.
type checker struct {
	ti        *typeInfo
	ft        *fnTypes
	changed   bool
	sawReturn bool
	retJoin   kind
}

// refOf reads an identifier's resolved slot from the side table.
func (tc *checker) refOf(e *Ident) VarRef { return tc.ti.res.refs[e.ID] }

func (tc *checker) varKind(ref VarRef) kind {
	switch ref.Kind {
	case VarScalar:
		return tc.ft.scalars[ref.Slot]
	case VarGlobalScalar:
		return tc.ti.globals[ref.Slot]
	}
	// Cells alias caller storage of unknown runtime kind.
	return kDyn
}

// demoteFloat drops a float-typed variable to dynamic (int variables
// never demote: stores into them coerce).
func (tc *checker) demoteFloat(ref VarRef) {
	switch ref.Kind {
	case VarScalar:
		if tc.ft.scalars[ref.Slot] == kFloat {
			tc.ft.scalars[ref.Slot] = kDyn
			tc.changed = true
		}
	case VarGlobalScalar:
		if tc.ti.globals[ref.Slot] == kFloat {
			tc.ti.globals[ref.Slot] = kDyn
			tc.changed = true
		}
	}
}

func (tc *checker) block(b *Block) {
	for _, s := range b.Stmts {
		tc.stmt(s)
	}
}

func (tc *checker) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		tc.block(s)
	case *DeclStmt:
		if s.Type.IsArray() {
			for _, d := range s.Type.Dims {
				tc.expr(d)
			}
		} else if s.Init != nil {
			tc.expr(s.Init)
		}
	case *ExprStmt:
		tc.expr(s.X)
	case *ForStmt:
		if s.Init != nil {
			tc.stmt(s.Init)
		}
		if s.Cond != nil {
			tc.expr(s.Cond)
		}
		if s.Post != nil {
			tc.expr(s.Post)
		}
		tc.block(s.Body)
	case *WhileStmt:
		tc.expr(s.Cond)
		tc.block(s.Body)
	case *IfStmt:
		tc.expr(s.Cond)
		tc.block(s.Then)
		if s.Else != nil {
			tc.stmt(s.Else)
		}
	case *ReturnStmt:
		k := kFloat // bare "return;" yields the zero Value (float 0)
		if s.X != nil {
			k = tc.expr(s.X)
		}
		if !tc.sawReturn {
			tc.sawReturn = true
			tc.retJoin = k
		} else {
			tc.retJoin = joinKind(tc.retJoin, k)
		}
	case *PragmaStmt:
	}
}

// expr infers and records the static kind of e.
func (tc *checker) expr(e Expr) kind {
	k := tc.exprKind(e)
	tc.ft.expr[e] = k
	return k
}

func (tc *checker) exprKind(e Expr) kind {
	switch e := e.(type) {
	case *IntLit:
		return kInt
	case *FloatLit:
		return kFloat
	case *Ident:
		return tc.varKind(tc.refOf(e))
	case *ParenExpr:
		return tc.expr(e.X)
	case *CastExpr:
		tc.expr(e.X)
		return kindOfBasic(e.To.Kind)
	case *UnExpr:
		k := tc.expr(e.X)
		if e.Op == NOT {
			return kInt
		}
		return k // unary minus preserves the operand kind
	case *BinExpr:
		switch e.Op {
		case ANDAND, OROR, EQ, NEQ, LT, GT, LEQ, GEQ:
			tc.expr(e.X)
			tc.expr(e.Y)
			return kInt
		}
		x, y := tc.expr(e.X), tc.expr(e.Y)
		// Arithmetic is float whenever either side is statically float
		// (the "both int" runtime branch is then unreachable), int when
		// both are int, and dynamic otherwise.
		if x == kFloat || y == kFloat {
			return kFloat
		}
		if x == kInt && y == kInt {
			return kInt
		}
		return kDyn
	case *CondExpr:
		tc.expr(e.Cond)
		return joinKind(tc.expr(e.Then), tc.expr(e.Else))
	case *IndexExpr:
		tc.index(e)
		return kFloat
	case *AssignExpr:
		return tc.assign(e)
	case *IncDecExpr:
		if ix, ok := stripParens(e.X).(*IndexExpr); ok {
			tc.index(ix)
			return kFloat
		}
		if id, ok := stripParens(e.X).(*Ident); ok {
			return tc.varKind(tc.refOf(id)) // ++/-- preserves the slot kind
		}
		return kDyn
	case *CallExpr:
		return tc.call(e)
	}
	return kDyn
}

func (tc *checker) index(e *IndexExpr) {
	_, subs := splitIndexChain(e)
	for _, sx := range subs {
		tc.expr(sx)
	}
}

func (tc *checker) assign(e *AssignExpr) kind {
	rhs := tc.expr(e.RHS)
	if ix, ok := stripParens(e.LHS).(*IndexExpr); ok {
		tc.index(ix)
		if e.Op == ASSIGN {
			return rhs // plain array store yields the unconverted RHS
		}
		return kFloat // compound reads the (float) element first
	}
	id, ok := stripParens(e.LHS).(*Ident)
	if !ok {
		return kDyn
	}
	switch tc.varKind(tc.refOf(id)) {
	case kInt:
		return kInt // stores coerce to int
	case kFloat:
		if e.Op == ASSIGN && rhs != kFloat {
			// A non-float store flips the slot's runtime kind: the
			// variable is no longer statically double.
			tc.demoteFloat(tc.refOf(id))
			return kDyn
		}
		// Compound assigns read the float old value first, so the
		// arithmetic (and the stored result) stays float.
		return kFloat
	}
	return kDyn
}

func (tc *checker) call(e *CallExpr) kind {
	if tc.ti.res.builtins[e.ID] {
		for _, a := range e.Args {
			tc.expr(a)
		}
		return kFloat // every math builtin returns a double
	}
	fi := tc.ti.res.Funcs[e.Fun]
	if fi == nil {
		return kDyn
	}
	for i, a := range e.Args {
		if i >= len(fi.Decl.Params) {
			break
		}
		p := fi.Decl.Params[i]
		switch {
		case p.Type.IsArray():
			// Array arguments rebind a slot; elements are always float64.
		case p.Type.Ptr:
			// The callee can store values of any kind through the cell, so
			// a float variable whose address escapes loses its static kind.
			if id, _ := stripArg(a); id != nil {
				tc.demoteFloat(tc.refOf(id))
			}
		default:
			tc.expr(a)
		}
	}
	return tc.ti.results[e.Fun]
}
