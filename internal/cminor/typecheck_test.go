package cminor

import "testing"

func resolveForTest(t *testing.T, src string) *ResolvedFile {
	t.Helper()
	res, err := Resolve(MustParse("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// scalarKindOf finds the inferred kind of a named local/param scalar by
// re-walking the function body for its declaration slot.
func scalarKindOf(t *testing.T, res *ResolvedFile, ti *typeInfo, fn, name string) kind {
	t.Helper()
	fi := res.Funcs[fn]
	var ref *VarRef
	for i, p := range fi.Decl.Params {
		if p.Name == name {
			r := fi.Params[i]
			ref = &r
		}
	}
	Walk(fi.Decl.Body, func(n Node) bool {
		if d, ok := n.(*DeclStmt); ok && d.Name == name {
			r := res.RefOf(d)
			ref = &r
		}
		return true
	})
	if ref == nil || ref.Kind != VarScalar {
		t.Fatalf("no scalar %q in %s", name, fn)
	}
	return ti.funcs[fn].scalars[ref.Slot]
}

func TestTypecheckStableKinds(t *testing.T) {
	res := resolveForTest(t, `
double f(int n, double x) {
  int i = 0;
  double s = 0.0;
  for (i = 0; i < n; i++) {
    s += x * 2.0;
    s = s * 0.5;
  }
  return s;
}`)
	ti := typecheck(res)
	if k := scalarKindOf(t, res, ti, "f", "i"); k != kInt {
		t.Errorf("i inferred as %s, want int", k)
	}
	if k := scalarKindOf(t, res, ti, "f", "s"); k != kFloat {
		t.Errorf("s inferred as %s, want double", k)
	}
	if k := ti.results["f"]; k != kFloat {
		t.Errorf("result of f inferred as %s, want double", k)
	}
}

func TestTypecheckDoubleDemotesOnIntStore(t *testing.T) {
	// "s = 1" stores an int Value into the double slot at runtime (the
	// walker-pinned assignment rule), so s cannot stay statically float.
	res := resolveForTest(t, `
double f() {
  double s = 0.0;
  s = 1;
  s += 0.5;
  return s;
}`)
	ti := typecheck(res)
	if k := scalarKindOf(t, res, ti, "f", "s"); k != kDyn {
		t.Errorf("s inferred as %s, want dyn after int store", k)
	}
	// Int variables never demote: stores into int slots coerce.
	res2 := resolveForTest(t, "int g() {\n  int s = 0;\n  s = 2.5;\n  return s;\n}")
	ti2 := typecheck(res2)
	if k := scalarKindOf(t, res2, ti2, "g", "s"); k != kInt {
		t.Errorf("int s inferred as %s, want int despite float store", k)
	}
}

func TestTypecheckCellEscapeDemotes(t *testing.T) {
	// A double whose address is passed to a pointer parameter can be
	// stored through with any kind by the callee.
	res := resolveForTest(t, `
void set(double *p) { p = 1; }
double f() {
  double x = 0.0;
  double y = 0.0;
  set(&x);
  return x + y;
}`)
	ti := typecheck(res)
	if k := scalarKindOf(t, res, ti, "f", "x"); k != kDyn {
		t.Errorf("escaped x inferred as %s, want dyn", k)
	}
	if k := scalarKindOf(t, res, ti, "f", "y"); k != kFloat {
		t.Errorf("non-escaped y inferred as %s, want double", k)
	}
}

func TestTypecheckResultKinds(t *testing.T) {
	res := resolveForTest(t, `
int always(int a) {
  if (a > 0) { return 1; }
  return 0;
}
int mayFallOff(int a) {
  if (a > 0) { return 1; }
}
double callsInt(int a) { return always(a) + 0.5; }
`)
	ti := typecheck(res)
	if k := ti.results["always"]; k != kInt {
		t.Errorf("always: result %s, want int", k)
	}
	// Falling off the end returns the zero Value (float 0), so the
	// result cannot be statically int.
	if k := ti.results["mayFallOff"]; k != kDyn {
		t.Errorf("mayFallOff: result %s, want dyn", k)
	}
	if k := ti.results["callsInt"]; k != kFloat {
		t.Errorf("callsInt: result %s, want double", k)
	}
}
