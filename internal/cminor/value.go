package cminor

import (
	"fmt"
	"math"
)

// Value is a scalar runtime value with C-style int/double typing.
type Value struct {
	IsInt bool
	I     int64
	F     float64
}

// IntV makes an int Value.
func IntV(i int64) Value { return Value{IsInt: true, I: i} }

// FloatV makes a double Value.
func FloatV(f float64) Value { return Value{F: f} }

// Float returns the value as float64 regardless of its static type.
func (v Value) Float() float64 {
	if v.IsInt {
		return float64(v.I)
	}
	return v.F
}

// Int returns the value as int64, truncating doubles (C cast semantics).
func (v Value) Int() int64 {
	if v.IsInt {
		return v.I
	}
	return int64(v.F)
}

// Bool applies C truthiness.
func (v Value) Bool() bool {
	if v.IsInt {
		return v.I != 0
	}
	return v.F != 0
}

// convertKind coerces v to the given scalar base kind, mirroring C
// initialisation/parameter-passing conversions.
func convertKind(v Value, k BasicKind) Value {
	if k == Int {
		return IntV(v.Int())
	}
	return FloatV(v.Float())
}

// Array is a dense row-major multi-dimensional array of doubles (ints are
// stored as doubles; Polybench kernels only index with int scalars).
type Array struct {
	Dims []int
	Data []float64
}

// NewArray allocates a zeroed array with the given dimensions.
func NewArray(dims ...int) *Array {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			n = 0
			break
		}
		n *= d
	}
	return &Array{Dims: append([]int(nil), dims...), Data: make([]float64, n)}
}

// Offset returns the flat row-major offset of the given index vector, or
// an error when the rank does not match or an index is out of range.
func (a *Array) Offset(idx ...int) (int, error) {
	if len(idx) != len(a.Dims) {
		return 0, fmt.Errorf("cminor: array rank %d indexed with %d subscripts",
			len(a.Dims), len(idx))
	}
	off := 0
	for k, i := range idx {
		if i < 0 || i >= a.Dims[k] {
			return 0, fmt.Errorf("cminor: index %d out of range [0,%d) in dim %d",
				i, a.Dims[k], k)
		}
		off = off*a.Dims[k] + i
	}
	return off, nil
}

// At reads the element at the given index vector. It is a convenience for
// Go-side test code and panics on a bad index; interpreted code goes
// through the compiled accessors, which report positioned diagnostics.
func (a *Array) At(idx ...int) float64 {
	off, err := a.Offset(idx...)
	if err != nil {
		panic(err)
	}
	return a.Data[off]
}

// Set writes the element at the given index vector (see At for the
// panicking contract).
func (a *Array) Set(v float64, idx ...int) {
	off, err := a.Offset(idx...)
	if err != nil {
		panic(err)
	}
	a.Data[off] = v
}

// applyCompound applies a possibly-compound assignment operator.
// Division faults surface as positioned *Diag panics (recovered into
// errors by the interpreter entry points), honouring the file:line:col
// contract of every other runtime fault.
func applyCompound(op TokenKind, old, rhs Value, file string, p Pos) Value {
	switch op {
	case ASSIGN:
		return rhs
	case ADDASSIGN:
		return arith(PLUS, old, rhs, file, p)
	case SUBASSIGN:
		return arith(MINUS, old, rhs, file, p)
	case MULASSIGN:
		return arith(STAR, old, rhs, file, p)
	case DIVASSIGN:
		return arith(SLASH, old, rhs, file, p)
	case MODASSIGN:
		return arith(PERCENT, old, rhs, file, p)
	}
	panic(fmt.Sprintf("unsupported assignment op %s", op))
}

func arith(op TokenKind, x, y Value, file string, p Pos) Value {
	if x.IsInt && y.IsInt {
		switch op {
		case PLUS:
			return IntV(x.I + y.I)
		case MINUS:
			return IntV(x.I - y.I)
		case STAR:
			return IntV(x.I * y.I)
		case SLASH:
			if y.I == 0 {
				panic(diagf(file, p, "integer division by zero"))
			}
			return IntV(x.I / y.I)
		case PERCENT:
			if y.I == 0 {
				panic(diagf(file, p, "integer modulo by zero"))
			}
			return IntV(x.I % y.I)
		}
	}
	a, b := x.Float(), y.Float()
	switch op {
	case PLUS:
		return FloatV(a + b)
	case MINUS:
		return FloatV(a - b)
	case STAR:
		return FloatV(a * b)
	case SLASH:
		return FloatV(a / b)
	case PERCENT:
		return FloatV(math.Mod(a, b))
	}
	panic(fmt.Sprintf("unsupported arithmetic op %s", op))
}

func compare(op TokenKind, x, y Value) Value {
	var r bool
	if x.IsInt && y.IsInt {
		switch op {
		case EQ:
			r = x.I == y.I
		case NEQ:
			r = x.I != y.I
		case LT:
			r = x.I < y.I
		case GT:
			r = x.I > y.I
		case LEQ:
			r = x.I <= y.I
		case GEQ:
			r = x.I >= y.I
		}
	} else {
		a, b := x.Float(), y.Float()
		switch op {
		case EQ:
			r = a == b
		case NEQ:
			r = a != b
		case LT:
			r = a < b
		case GT:
			r = a > b
		case LEQ:
			r = a <= b
		case GEQ:
			r = a >= b
		}
	}
	if r {
		return IntV(1)
	}
	return IntV(0)
}

// builtins are the math functions available to kernels. Contract: a
// builtin receives the evaluated arguments as raw (unconverted) Values
// and must return a float Value — the typechecker statically kinds
// every builtin call as double, and both backends rely on that.
var builtins = map[string]func(args []Value) Value{
	"sqrt":  func(a []Value) Value { return FloatV(math.Sqrt(a[0].Float())) },
	"fabs":  func(a []Value) Value { return FloatV(math.Abs(a[0].Float())) },
	"pow":   func(a []Value) Value { return FloatV(math.Pow(a[0].Float(), a[1].Float())) },
	"exp":   func(a []Value) Value { return FloatV(math.Exp(a[0].Float())) },
	"log":   func(a []Value) Value { return FloatV(math.Log(a[0].Float())) },
	"floor": func(a []Value) Value { return FloatV(math.Floor(a[0].Float())) },
	"ceil":  func(a []Value) Value { return FloatV(math.Ceil(a[0].Float())) },
}

// builtinArity maps each builtin to its required argument count; the
// resolver rejects calls with the wrong arity.
var builtinArity = map[string]int{
	"sqrt": 1, "fabs": 1, "pow": 2, "exp": 1, "log": 1, "floor": 1, "ceil": 1,
}

// IsBuiltin reports whether name is a known math builtin.
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}
