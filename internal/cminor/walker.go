package cminor

import (
	"context"
	"fmt"
	"runtime"
)

// Walker is the original single-pass tree-walking interpreter. Every
// identifier is looked up in a per-call map and every node re-dispatches
// on its dynamic type, so it is slow — the compiled pipeline (see
// resolve.go / compile.go / interp.go) replaces it on the hot path. It is
// kept as a semantics oracle: parity tests assert the compiled pipeline
// produces bit-identical results, and benchmarks measure the speedup.
//
// Caveat: the walker keeps one flat variable map per call, so a
// declaration in a nested block overwrites (and outlives) an outer
// variable of the same name. The compiled pipeline is lexically scoped.
// Parity therefore holds only for programs without shadowed
// declarations — which covers every Polybench kernel this repo targets.
type Walker struct {
	file  *File
	funcs map[string]*FuncDecl
	// globals holds file-scope bindings, shared by every call (and
	// persisting across calls, like the compiled engine's per-Instance
	// global store). Array dims and initialisers must be constant.
	globals map[string]*wbinding
	// Steps counts executed statements, as a cheap runaway guard.
	Steps    int
	MaxSteps int
	// ctx, when set by a walker-backend Instance, is polled at step
	// checkpoints so CallContext cancellation works on this backend too.
	ctx context.Context
	// pollPanic, when armed by the fault injector (engine.walkerCall), is
	// raised at the next cancellation-poll checkpoint — the mid-kernel
	// point that races CallContext teardown.
	pollPanic any
}

type wbinding struct {
	scalar *Value
	arr    *Array
}

type wframe struct {
	vars map[string]*wbinding
}

// lookup resolves a name in the call frame, falling back to the
// file-scope globals.
func (w *Walker) lookup(fr *wframe, name string) (*wbinding, bool) {
	if b, ok := fr.vars[name]; ok {
		return b, true
	}
	b, ok := w.globals[name]
	return b, ok
}

// NewWalker builds a tree-walking interpreter over f.
func NewWalker(f *File) *Walker {
	w := &Walker{file: f, funcs: map[string]*FuncDecl{},
		globals: map[string]*wbinding{}, MaxSteps: DefaultMaxSteps}
	for _, fn := range f.Funcs {
		if fn.Body != nil {
			w.funcs[fn.Name] = fn
		}
	}
	for _, g := range f.Globals {
		if g.Type.IsArray() {
			dims := make([]int, len(g.Type.Dims))
			for i, d := range g.Type.Dims {
				if v, ok := constEval(d); ok {
					dims[i] = int(v.Int())
				}
			}
			w.globals[g.Name] = &wbinding{arr: NewArray(dims...)}
			continue
		}
		var init Value
		if g.Init != nil {
			if v, ok := constEval(g.Init); ok {
				init = v
			}
		}
		v := convertKind(init, g.Type.Kind)
		w.globals[g.Name] = &wbinding{scalar: &v}
	}
	return w
}

type returnSignal struct{ v Value }

// GlobalScalar returns a copy of the named file-scope scalar's current
// value — the walker half of the Instance.GlobalScalar introspection
// tap differential harnesses compare across backends.
func (w *Walker) GlobalScalar(name string) (Value, bool) {
	b, ok := w.globals[name]
	if !ok || b.scalar == nil {
		return Value{}, false
	}
	return *b.scalar, true
}

// GlobalArray returns the named file-scope array (the live storage, not
// a copy).
func (w *Walker) GlobalArray(name string) (*Array, bool) {
	b, ok := w.globals[name]
	if !ok || b.arr == nil {
		return nil, false
	}
	return b.arr, true
}

// Call invokes the named function. Args must be *Array for array
// parameters, Value for scalar parameters, and *Value for pointer
// parameters (shared cell).
func (w *Walker) Call(name string, args ...any) (v Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch rr := r.(type) {
			case returnSignal:
				v = rr.v
			case ctxDone:
				err = fmt.Errorf("cminor: interpreting %s: %w", name, rr.err)
			case *Diag, string:
				// The walker's program-level faults: positioned diagnostics
				// from the shared runtime (arith, subscripts) and the
				// historical string panics (step budget, undefined names).
				err = fmt.Errorf("cminor: interpreting %s: %v", name, r)
			default:
				// Anything else is an internal fault — an engine bug or an
				// injected panic (possibly at the cancellation-poll
				// checkpoint, racing CallContext teardown). Contain it as a
				// structured error; it must never escape as a panic.
				buf := make([]byte, 16<<10)
				buf = buf[:runtime.Stack(buf, false)]
				err = &InternalFault{Backend: BackendWalker, Fn: name,
					Recovered: r, Stack: buf}
			}
		}
	}()
	fn, ok := w.funcs[name]
	if !ok {
		return Value{}, fmt.Errorf("cminor: no function %q", name)
	}
	if len(args) != len(fn.Params) {
		return Value{}, fmt.Errorf("cminor: %s expects %d args, got %d",
			name, len(fn.Params), len(args))
	}
	fr := &wframe{vars: map[string]*wbinding{}}
	for i, p := range fn.Params {
		switch a := args[i].(type) {
		case *Array:
			fr.vars[p.Name] = &wbinding{arr: a}
		case Value:
			val := convertKind(a, p.Type.Kind)
			fr.vars[p.Name] = &wbinding{scalar: &val}
		case *Value:
			fr.vars[p.Name] = &wbinding{scalar: a}
		case int:
			val := IntV(int64(a))
			fr.vars[p.Name] = &wbinding{scalar: &val}
		case float64:
			val := FloatV(a)
			fr.vars[p.Name] = &wbinding{scalar: &val}
		default:
			return Value{}, fmt.Errorf("cminor: unsupported argument type %T for %s", a, p.Name)
		}
	}
	w.execBlock(fn.Body, fr)
	return Value{}, nil
}

func (w *Walker) step() {
	w.Steps++
	if w.Steps > w.MaxSteps {
		panic("interpreter step budget exceeded")
	}
	if (w.ctx != nil || w.pollPanic != nil) && w.Steps&(ctxPollStride-1) == 0 {
		if p := w.pollPanic; p != nil {
			w.pollPanic = nil
			panic(p)
		}
		if err := w.ctx.Err(); err != nil {
			panic(ctxDone{err})
		}
	}
}

func (w *Walker) execBlock(b *Block, fr *wframe) {
	for _, s := range b.Stmts {
		w.exec(s, fr)
	}
}

func (w *Walker) exec(s Stmt, fr *wframe) {
	w.step()
	switch s := s.(type) {
	case *Block:
		w.execBlock(s, fr)
	case *DeclStmt:
		if s.Type.IsArray() {
			dims := make([]int, len(s.Type.Dims))
			for i, d := range s.Type.Dims {
				dims[i] = int(w.eval(d, fr).Int())
			}
			fr.vars[s.Name] = &wbinding{arr: NewArray(dims...)}
			return
		}
		var v Value
		if s.Init != nil {
			v = w.eval(s.Init, fr)
		}
		v = convertKind(v, s.Type.Kind)
		fr.vars[s.Name] = &wbinding{scalar: &v}
	case *ExprStmt:
		w.eval(s.X, fr)
	case *ForStmt:
		if s.Init != nil {
			w.exec(s.Init, fr)
		}
		for s.Cond == nil || w.eval(s.Cond, fr).Bool() {
			w.execBlock(s.Body, fr)
			if s.Post != nil {
				w.eval(s.Post, fr)
			}
			w.step()
		}
	case *WhileStmt:
		for w.eval(s.Cond, fr).Bool() {
			w.execBlock(s.Body, fr)
			w.step()
		}
	case *IfStmt:
		if w.eval(s.Cond, fr).Bool() {
			w.execBlock(s.Then, fr)
		} else if s.Else != nil {
			w.exec(s.Else, fr)
		}
	case *ReturnStmt:
		var v Value
		if s.X != nil {
			v = w.eval(s.X, fr)
		}
		panic(returnSignal{v: v})
	case *PragmaStmt:
		// Pragmas have no interpretation-time effect.
	}
}

// lvalue resolution: returns either a scalar cell or an array+index.
func (w *Walker) lvalue(e Expr, fr *wframe) (cell *Value, arr *Array, idx []int) {
	switch e := e.(type) {
	case *Ident:
		b, ok := w.lookup(fr, e.Name)
		if !ok {
			panic(fmt.Sprintf("undefined variable %q", e.Name))
		}
		if b.arr != nil {
			return nil, b.arr, nil
		}
		return b.scalar, nil, nil
	case *ParenExpr:
		return w.lvalue(e.X, fr)
	case *IndexExpr:
		// Collect the subscript chain.
		var subs []Expr
		cur := Expr(e)
		for {
			ix, ok := cur.(*IndexExpr)
			if !ok {
				break
			}
			subs = append([]Expr{ix.Idx}, subs...)
			cur = ix.X
		}
		id, ok := cur.(*Ident)
		if !ok {
			panic("indexed expression is not a variable")
		}
		b, ok := w.lookup(fr, id.Name)
		if !ok || b.arr == nil {
			panic(fmt.Sprintf("%q is not an array", id.Name))
		}
		idx = make([]int, len(subs))
		for i, sx := range subs {
			idx[i] = int(w.eval(sx, fr).Int())
		}
		return nil, b.arr, idx
	case *UnExpr:
		if e.Op == AMP {
			return w.lvalue(e.X, fr)
		}
	}
	panic(fmt.Sprintf("invalid lvalue %T", e))
}

func (w *Walker) eval(e Expr, fr *wframe) Value {
	switch e := e.(type) {
	case *Ident:
		b, ok := w.lookup(fr, e.Name)
		if !ok {
			panic(fmt.Sprintf("undefined variable %q", e.Name))
		}
		if b.scalar == nil {
			panic(fmt.Sprintf("array %q used as scalar", e.Name))
		}
		return *b.scalar
	case *IntLit:
		return IntV(e.V)
	case *FloatLit:
		return FloatV(e.V)
	case *ParenExpr:
		return w.eval(e.X, fr)
	case *CastExpr:
		return convertKind(w.eval(e.X, fr), e.To.Kind)
	case *UnExpr:
		v := w.eval(e.X, fr)
		switch e.Op {
		case MINUS:
			if v.IsInt {
				return IntV(-v.I)
			}
			return FloatV(-v.F)
		case NOT:
			if v.Bool() {
				return IntV(0)
			}
			return IntV(1)
		}
		panic(fmt.Sprintf("unsupported unary op %s", e.Op))
	case *BinExpr:
		return w.evalBin(e, fr)
	case *CondExpr:
		if w.eval(e.Cond, fr).Bool() {
			return w.eval(e.Then, fr)
		}
		return w.eval(e.Else, fr)
	case *IndexExpr:
		_, arr, idx := w.lvalue(e, fr)
		if idx == nil {
			panic("array value used without full subscripts")
		}
		return FloatV(arr.At(idx...))
	case *AssignExpr:
		rhs := w.eval(e.RHS, fr)
		cell, arr, idx := w.lvalue(e.LHS, fr)
		if arr != nil {
			old := FloatV(arr.At(idx...))
			nv := applyCompound(e.Op, old, rhs, w.file.Name, e.P)
			arr.Set(nv.Float(), idx...)
			return nv
		}
		nv := applyCompound(e.Op, *cell, rhs, w.file.Name, e.P)
		if cell.IsInt {
			nv = IntV(nv.Int())
		}
		*cell = nv
		return nv
	case *IncDecExpr:
		cell, arr, idx := w.lvalue(e.X, fr)
		if arr != nil {
			old := arr.At(idx...)
			if e.Op == INC {
				arr.Set(old+1, idx...)
			} else {
				arr.Set(old-1, idx...)
			}
			return FloatV(old)
		}
		old := *cell
		if cell.IsInt {
			if e.Op == INC {
				cell.I++
			} else {
				cell.I--
			}
		} else {
			if e.Op == INC {
				cell.F++
			} else {
				cell.F--
			}
		}
		return old
	case *CallExpr:
		return w.call(e, fr)
	}
	panic(fmt.Sprintf("unsupported expression %T", e))
}

func (w *Walker) evalBin(e *BinExpr, fr *wframe) Value {
	switch e.Op {
	case ANDAND:
		if !w.eval(e.X, fr).Bool() {
			return IntV(0)
		}
		if w.eval(e.Y, fr).Bool() {
			return IntV(1)
		}
		return IntV(0)
	case OROR:
		if w.eval(e.X, fr).Bool() {
			return IntV(1)
		}
		if w.eval(e.Y, fr).Bool() {
			return IntV(1)
		}
		return IntV(0)
	}
	x := w.eval(e.X, fr)
	y := w.eval(e.Y, fr)
	switch e.Op {
	case PLUS, MINUS, STAR, SLASH, PERCENT:
		return arith(e.Op, x, y, w.file.Name, e.P)
	case EQ, NEQ, LT, GT, LEQ, GEQ:
		return compare(e.Op, x, y)
	}
	panic(fmt.Sprintf("unsupported binary op %s", e.Op))
}

func (w *Walker) call(e *CallExpr, fr *wframe) Value {
	if bf, ok := builtins[e.Fun]; ok {
		args := make([]Value, len(e.Args))
		for i, a := range e.Args {
			args[i] = w.eval(a, fr)
		}
		return bf(args)
	}
	fn, ok := w.funcs[e.Fun]
	if !ok {
		panic(fmt.Sprintf("call to undefined function %q", e.Fun))
	}
	if len(e.Args) != len(fn.Params) {
		panic(fmt.Sprintf("%s expects %d args, got %d", e.Fun, len(fn.Params), len(e.Args)))
	}
	callee := &wframe{vars: map[string]*wbinding{}}
	for i, p := range fn.Params {
		if p.Type.IsArray() {
			_, arr, _ := w.lvalue(e.Args[i], fr)
			if arr == nil {
				panic(fmt.Sprintf("argument %d of %s must be an array", i, e.Fun))
			}
			callee.vars[p.Name] = &wbinding{arr: arr}
			continue
		}
		if p.Type.Ptr {
			cell, _, _ := w.lvalue(e.Args[i], fr)
			callee.vars[p.Name] = &wbinding{scalar: cell}
			continue
		}
		v := convertKind(w.eval(e.Args[i], fr), p.Type.Kind)
		callee.vars[p.Name] = &wbinding{scalar: &v}
	}
	ret := Value{}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if rs, ok := r.(returnSignal); ok {
					ret = rs.v
					return
				}
				panic(r)
			}
		}()
		w.execBlock(fn.Body, callee)
	}()
	return ret
}
