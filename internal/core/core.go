package core
